"""Tests for the metadata address layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    BLOCK_SIZE,
    MIB,
    PAGE_SIZE,
    SecureProcessorConfig,
)
from repro.secmem.layout import MetadataLayout


@pytest.fixture(scope="module")
def sct_layout():
    return MetadataLayout(SecureProcessorConfig.sct_default(protected_size=256 * MIB))


@pytest.fixture(scope="module")
def sgx_layout():
    return MetadataLayout(SecureProcessorConfig.sgx_default())


class TestRegions:
    def test_counter_region_above_data(self, sct_layout):
        assert sct_layout.counter_base >= sct_layout.data_size

    def test_counter_count_split_mode(self, sct_layout):
        # SC: one counter block per page.
        assert sct_layout.num_counter_blocks == 256 * MIB // PAGE_SIZE

    def test_counter_count_sgx_mode(self, sgx_layout):
        # MoC 56-bit: eight counters per block -> one per 8 data blocks.
        assert sgx_layout.num_counter_blocks == sgx_layout.num_data_blocks // 8

    def test_sct_levels_match_table1(self, sct_layout):
        arities = [g.arity for g in sct_layout.levels]
        assert arities == [32, 16, 16, 16, 16, 16]
        assert sct_layout.levels[0].node_count == sct_layout.num_counter_blocks // 32

    def test_sgx_levels_match_sit(self, sgx_layout):
        arities = [g.arity for g in sgx_layout.levels]
        assert arities == [8, 8, 8]
        # One SIT L0 node block covers 8 counter blocks = one EPC page.
        pages = sgx_layout.data_size // PAGE_SIZE
        assert sgx_layout.levels[0].node_count == pages

    def test_regions_disjoint(self, sct_layout):
        spans = [(sct_layout.counter_base, sct_layout.counter_base + sct_layout.num_counter_blocks * BLOCK_SIZE)]
        spans.append((sct_layout.mac_base, sct_layout.levels[0].base))
        spans += [(g.base, g.base + g.size) for g in sct_layout.levels]
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError):
            MetadataLayout(
                SecureProcessorConfig.sct_default(protected_size=PAGE_SIZE + 1)
            )

    def test_describe_mentions_all_levels(self, sct_layout):
        text = sct_layout.describe()
        assert "tree L0" in text and "tree L5" in text


class TestPredicates:
    def test_protected_data(self, sct_layout):
        assert sct_layout.is_protected_data(0)
        assert sct_layout.is_protected_data(sct_layout.data_size - 1)
        assert not sct_layout.is_protected_data(sct_layout.data_size)

    def test_counter_addr(self, sct_layout):
        assert sct_layout.is_counter_addr(sct_layout.counter_base)
        assert not sct_layout.is_counter_addr(0)

    def test_tree_addr(self, sct_layout):
        assert sct_layout.is_tree_addr(sct_layout.levels[0].base)
        assert sct_layout.is_tree_addr(sct_layout.levels[-1].base)
        assert not sct_layout.is_tree_addr(0)

    def test_metadata_covers_counters_and_tree(self, sct_layout):
        assert sct_layout.is_metadata(sct_layout.counter_base)
        assert sct_layout.is_metadata(sct_layout.levels[2].base)
        assert not sct_layout.is_metadata(100)


class TestCounterMapping:
    def test_same_page_same_counter_block(self, sct_layout):
        assert sct_layout.counter_block_index(0x1000) == sct_layout.counter_block_index(0x1FC0)

    def test_adjacent_pages_adjacent_counter_blocks(self, sct_layout):
        assert (
            sct_layout.counter_block_index(0x2000)
            == sct_layout.counter_block_index(0x1000) + 1
        )

    def test_counter_slot(self, sct_layout):
        assert sct_layout.counter_slot(0x1000) == 0
        assert sct_layout.counter_slot(0x1040) == 1
        assert sct_layout.counter_slot(0x1FC0) == 63

    def test_counter_addr_roundtrip(self, sct_layout):
        addr = sct_layout.counter_block_addr(0x5000)
        assert sct_layout.counter_block_index_of_addr(addr) == sct_layout.counter_block_index(0x5000)

    def test_outside_region_rejected(self, sct_layout):
        with pytest.raises(ValueError):
            sct_layout.counter_block_index(sct_layout.data_size)

    def test_data_blocks_of_counter_block(self, sct_layout):
        blocks = sct_layout.data_blocks_of_counter_block(2)
        assert len(blocks) == 64
        assert blocks.start == 128

    def test_mac_addrs_unique(self, sct_layout):
        assert sct_layout.mac_addr(0) != sct_layout.mac_addr(64)


class TestTreeMapping:
    def test_node_index_level0(self, sct_layout):
        assert sct_layout.node_index(0, 0) == 0
        assert sct_layout.node_index(0, 31) == 0
        assert sct_layout.node_index(0, 32) == 1

    def test_node_index_level1(self, sct_layout):
        # 32 cb per L0 node, 16 L0 nodes per L1 node -> 512 cb per L1 node.
        assert sct_layout.node_index(1, 511) == 0
        assert sct_layout.node_index(1, 512) == 1

    def test_parent_child_consistency(self, sct_layout):
        for level in range(len(sct_layout.levels) - 1):
            index = min(17, sct_layout.levels[level].node_count - 1)
            parent = sct_layout.parent_of(level, index)
            assert parent is not None
            parent_level, parent_index = parent
            assert parent_level == level + 1
            assert index in sct_layout.children_of(parent_level, parent_index)

    def test_root_has_no_parent(self, sct_layout):
        top = len(sct_layout.levels) - 1
        assert sct_layout.parent_of(top, 0) is None

    def test_node_addr_reverse_mapping(self, sct_layout):
        for level in (0, 1, 2):
            addr = sct_layout.node_addr(level, 3)
            assert sct_layout.node_of_addr(addr) == (level, 3)

    def test_node_addr_out_of_range(self, sct_layout):
        with pytest.raises(ValueError):
            sct_layout.node_addr(0, sct_layout.levels[0].node_count)

    def test_node_of_addr_rejects_non_tree(self, sct_layout):
        with pytest.raises(ValueError):
            sct_layout.node_of_addr(0x1000)

    def test_counter_blocks_under_node(self, sct_layout):
        assert len(sct_layout.counter_blocks_under_node(0, 0)) == 32
        assert len(sct_layout.counter_blocks_under_node(1, 0)) == 512

    def test_node_addr_for_data(self, sct_layout):
        addr = sct_layout.node_addr_for_data(0x1000, 0)
        assert sct_layout.node_of_addr(addr) == (0, 0)

    @given(st.integers(min_value=0, max_value=256 * MIB - 1))
    @settings(max_examples=50, deadline=None)
    def test_path_is_consistent_chain(self, data_addr):
        layout = MetadataLayout(SecureProcessorConfig.sct_default(protected_size=256 * MIB))
        cb = layout.counter_block_index(data_addr)
        prev = None
        for level in range(len(layout.levels)):
            index = layout.node_index(level, cb)
            if prev is not None:
                assert layout.parent_of(level - 1, prev) == (level, index)
            prev = index


class TestSharingSets:
    def test_sgx_sharing_formula(self, sgx_layout):
        # Section VIII-B: groups of 1, 8, 64 consecutive EPC pages share a
        # tree node block at L0, L1, L2 respectively.
        assert len(sgx_layout.pages_sharing_node(10, 0)) == 1
        assert len(sgx_layout.pages_sharing_node(10, 1)) == 8
        assert len(sgx_layout.pages_sharing_node(10, 2)) == 64

    def test_sgx_sharing_group_alignment(self, sgx_layout):
        group = sgx_layout.pages_sharing_node(10, 1)
        assert group.start == 8  # aligned 8-page group containing page 10
        assert 10 in group

    def test_sct_leaf_covers_32_pages(self, sct_layout):
        # SC counter block covers one page; 32-ary leaf -> 32 pages (128KB).
        assert len(sct_layout.pages_sharing_node(5, 0)) == 32

    def test_sharing_grows_with_level(self, sct_layout):
        sizes = [len(sct_layout.pages_sharing_node(0, level)) for level in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[1] == sizes[0] * 16
