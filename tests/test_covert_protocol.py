"""Edge-case tests for the covert-channel protocols."""

import pytest

from repro.attacks import CovertChannelC, CovertChannelT
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def make_env():
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        )
    )
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    return proc, alloc


class TestChannelTEdgeCases:
    def test_all_ones(self):
        proc, alloc = make_env()
        report = CovertChannelT(proc, alloc).transmit([1] * 12)
        assert report.received == [1] * 12

    def test_all_zeros(self):
        proc, alloc = make_env()
        report = CovertChannelT(proc, alloc).transmit([0] * 12)
        assert report.received == [0] * 12

    def test_empty_transmission(self):
        proc, alloc = make_env()
        report = CovertChannelT(proc, alloc).transmit([])
        assert report.received == []
        with pytest.raises(ValueError):
            report.accuracy  # accuracy over an empty message is undefined

    def test_trojan_spy_share_no_pages(self):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        trojan_pages = {channel._trojan_tx, channel._trojan_bd}
        spy_pages = {
            channel.tx_monitor.probe_block // PAGE_SIZE,
            channel.bd_monitor.probe_block // PAGE_SIZE,
        }
        assert not trojan_pages & spy_pages

    def test_distinct_metadata_sets_for_tx_and_bd(self):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        tree_cache = proc.tree_metadata_cache
        assert tree_cache.set_index_of(
            channel.tx_monitor.node_addr
        ) != tree_cache.set_index_of(channel.bd_monitor.node_addr)

    def test_latencies_recorded_per_bit(self):
        proc, alloc = make_env()
        report = CovertChannelT(proc, alloc).transmit([1, 0, 1])
        assert len(report.latencies) == 3


class TestChannelCEdgeCases:
    def test_zero_symbol(self):
        proc, alloc = make_env()
        report = CovertChannelC(proc, alloc).transmit([0, 0])
        assert report.received == [0, 0]

    def test_max_symbol(self):
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        report = channel.transmit([channel.max_symbol])
        assert report.received == [channel.max_symbol]

    def test_back_to_back_symbols_no_represet(self):
        """The overflow leaves the counter in its known post-reset state,
        so consecutive symbols need no mPreset (Section VI-B)."""
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        presets_before = channel.spy_handle.stats.presets
        channel.transmit([5, 9, 1])
        assert channel.spy_handle.stats.presets == presets_before

    def test_symbol_alphabet_is_7_bits(self):
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        assert channel.symbol_bits == 7
        assert channel.max_symbol == 126
