"""Integration tests for the memory encryption engine + processor.

Covers the Figure-5 access paths, lazy tree propagation, VUL-1/VUL-2
timing behaviour, and tamper detection (spoof / splice / replay).
"""

import pytest

from repro.config import (
    MIB,
    SecureProcessorConfig,
    TreeUpdatePolicy,
)
from repro.proc import AccessPath, SecureProcessor
from repro.secmem.engine import IntegrityViolation


def make_proc(**overrides):
    overrides.setdefault("protected_size", 64 * MIB)
    return SecureProcessor(SecureProcessorConfig.sct_default(**overrides))


@pytest.fixture()
def proc():
    return make_proc()


class TestAccessPaths:
    def test_cold_read_is_path4(self, proc):
        result = proc.read(0x40000)
        assert result.path is AccessPath.MEM_TREE_MISS
        assert result.tree_levels_missed == len(proc.layout.levels)

    def test_cached_read_is_l1(self, proc):
        proc.read(0x40000)
        assert proc.read(0x40000).path is AccessPath.L1_HIT

    def test_flushed_read_counter_still_cached(self, proc):
        proc.read(0x40000)
        proc.flush(0x40000)
        result = proc.read(0x40000)
        assert result.path is AccessPath.MEM_COUNTER_HIT

    def test_path3_when_leaf_cached_counter_evicted(self, proc):
        proc.read(0x40000)
        proc.flush(0x40000)
        # Evict just the counter block from the metadata cache.
        cb_addr = proc.layout.counter_block_addr(0x40000)
        proc.metadata_cache.invalidate(cb_addr)
        result = proc.read(0x40000)
        assert result.path is AccessPath.MEM_TREE_HIT
        assert result.tree_levels_missed == 0

    def test_latency_ordering_across_paths(self, proc):
        """Figure 6: each deeper path costs strictly more."""
        lat = {}
        result = proc.read(0x40000)
        lat["path4"] = result.latency
        lat["l1"] = proc.read(0x40000).latency
        proc.flush(0x40000)
        lat["path2"] = proc.read(0x40000).latency
        proc.flush(0x40000)
        proc.metadata_cache.invalidate(proc.layout.counter_block_addr(0x40000))
        lat["path3"] = proc.read(0x40000).latency
        assert lat["l1"] < lat["path2"] < lat["path3"] < lat["path4"]

    def test_partial_tree_miss_between_path3_and_path4(self, proc):
        proc.read(0x40000)
        proc.flush(0x40000)
        proc.metadata_cache.invalidate(proc.layout.counter_block_addr(0x40000))
        proc.metadata_cache.invalidate(proc.layout.node_addr_for_data(0x40000, 0))
        result = proc.read(0x40000)
        assert result.path is AccessPath.MEM_TREE_MISS
        assert result.tree_levels_missed == 1

    def test_unprotected_address_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.read(proc.layout.data_size + 0x1000)


class TestDataRoundtrip:
    def test_write_read_roundtrip_through_memory(self, proc):
        proc.write_through(0x40000, b"secret payload")
        proc.drain_writes()
        proc.flush(0x40000)
        result = proc.read(0x40000)
        assert result.data[:14] == b"secret payload"

    def test_cached_write_visible_immediately(self, proc):
        proc.write(0x40000, b"cached value")
        assert proc.read(0x40000).data[:12] == b"cached value"

    def test_dirty_eviction_writes_back(self, proc):
        proc.write(0x40000, b"dirty")
        proc.flush(0x40000)  # forces write-back
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.caches.flush(0x40000)
        assert proc.read(0x40000).data[:5] == b"dirty"

    def test_unwritten_reads_zero(self, proc):
        assert proc.read(0x7F000).data == bytes(64)

    def test_multiple_blocks_independent(self, proc):
        proc.write_through(0x40000, b"AA")
        proc.write_through(0x40040, b"BB")
        proc.drain_writes()
        proc.flush(0x40000)
        proc.flush(0x40040)
        assert proc.read(0x40000).data[:2] == b"AA"
        assert proc.read(0x40040).data[:2] == b"BB"

    def test_write_merging_single_counter_bump(self, proc):
        for value in (b"v1", b"v2", b"v3"):
            proc.write_through(0x40000, value)
        proc.drain_writes()
        block = proc.mee.layout_block_index(0x40000)
        # Three posted writes merged into one serviced write -> counter 1.
        assert proc.mee.counters.current(block) == 1
        proc.flush(0x40000)
        assert proc.read(0x40000).data[:2] == b"v3"

    def test_architectural_value_helper(self, proc):
        proc.write(0x40000, b"xyz")
        assert proc.architectural_value(0x40000)[:3] == b"xyz"


class TestLazyTreePropagation:
    def test_leaf_minor_counts_counter_writebacks(self, proc):
        cb = proc.layout.counter_block_index(0x100000)
        for i in range(5):
            proc.write_through(0x100000 + i * 64, b"w")
            proc.drain_writes()
            proc.mee.flush_metadata_cache(proc.cycle)
        assert proc.mee.tree.leaf_parent_value(cb) == 5

    def test_no_bump_while_counter_block_stays_cached(self, proc):
        cb = proc.layout.counter_block_index(0x100000)
        for i in range(5):
            proc.write_through(0x100000 + i * 64, b"w")
            proc.drain_writes()
        assert proc.mee.tree.leaf_parent_value(cb) == 0

    def test_leaf_overflow_after_128_writebacks(self, proc):
        for i in range(127):
            proc.write_through(0x100000 + (i % 64) * 64, b"w")
            proc.drain_writes()
            proc.mee.flush_metadata_cache(proc.cycle)
        assert proc.mee.stats.tree_counter_overflows == 0
        proc.write_through(0x100000, b"w")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        assert proc.mee.stats.tree_counter_overflows >= 1

    def test_tree_stays_verifiable_after_overflow(self, proc):
        for i in range(130):
            proc.write_through(0x100000 + (i % 64) * 64, b"w")
            proc.drain_writes()
            proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x100000)
        assert proc.read(0x100000).data[:1]  # verifies whole path

    def test_overflow_burst_delays_timed_read(self, proc):
        """Figure 8: reads concurrent with overflow land in a higher band."""
        base, probe = 0x100000, 0x700000
        for i in range(127):
            proc.write_through(base + (i % 64) * 64, b"w")
            proc.drain_writes()
            proc.mee.flush_metadata_cache(proc.cycle)
        proc.read(probe)
        proc.flush(probe)
        baseline = proc.timed_read(probe)
        proc.flush(probe)
        proc.write_through(base, b"w")  # the overflowing write
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        delayed = proc.timed_read(probe)
        assert delayed > baseline + 500


class TestEncryptionCounterOverflow:
    def test_vul1_group_reencryption(self, proc):
        addr = 0x200000
        proc.write_through(addr + 64, b"neighbor")
        proc.drain_writes()
        for _ in range(128):
            proc.write_through(addr, b"spin")
            proc.drain_writes()
        assert proc.mee.stats.enc_counter_overflows == 1
        assert proc.mee.stats.reencrypted_blocks >= 1
        # Data in the re-encrypted group must still decrypt correctly.
        proc.flush(addr + 64)
        proc.mee.flush_metadata_cache(proc.cycle)
        assert proc.read(addr + 64).data[:8] == b"neighbor"

    def test_monolithic_mode_no_page_overflow(self):
        proc = SecureProcessor(
            SecureProcessorConfig.sgx_default(epc_size=16 * MIB)
        )
        for _ in range(200):
            proc.write_through(0x1000, b"x")
            proc.drain_writes()
        assert proc.mee.stats.enc_counter_overflows == 0


class TestTamperDetection:
    def test_spoofed_data_detected(self, proc):
        proc.write_through(0x40000, b"valuable")
        proc.drain_writes()
        proc.flush(0x40000)
        proc.mee.tamper_spoof(0x40000, bytes(64))
        with pytest.raises(IntegrityViolation):
            proc.read(0x40000)

    def test_spliced_data_detected(self, proc):
        proc.write_through(0x40000, b"A")
        proc.write_through(0x90000, b"B")
        proc.drain_writes()
        proc.flush(0x40000)
        proc.flush(0x90000)
        proc.mee.tamper_splice(0x40000, 0x90000)
        with pytest.raises(IntegrityViolation):
            proc.read(0x40000)

    def test_replayed_data_detected(self, proc):
        proc.write_through(0x40000, b"old")
        proc.drain_writes()
        snapshot = proc.mee.snapshot_block(0x40000)
        proc.write_through(0x40000, b"new")
        proc.drain_writes()
        proc.flush(0x40000)
        proc.mee.tamper_replay(0x40000, snapshot)
        with pytest.raises(IntegrityViolation):
            proc.read(0x40000)

    def test_tampered_counter_detected(self, proc):
        proc.write_through(0x40000, b"data")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        cb = proc.layout.counter_block_index(0x40000)
        proc.mee.counters.tamper_split_minor(cb, 0, 99)
        with pytest.raises(IntegrityViolation):
            proc.read(0x40000)

    def test_tampered_tree_node_detected(self, proc):
        proc.read(0x40000)
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        proc.mee.tree.tamper_minor(1, 0, slot=0, value=5)
        with pytest.raises(IntegrityViolation):
            proc.read(0x40000)

    def test_untampered_survives_full_flush(self, proc):
        proc.write_through(0x40000, b"fine")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        assert proc.read(0x40000).data[:4] == b"fine"


class TestPolicies:
    def test_eager_policy_bumps_leaf_at_service(self):
        proc = make_proc(tree_update_policy=TreeUpdatePolicy.EAGER)
        cb = proc.layout.counter_block_index(0x100000)
        proc.write_through(0x100000, b"w")
        proc.drain_writes()
        assert proc.mee.tree.leaf_parent_value(cb) == 1

    def test_eager_policy_roundtrip(self):
        proc = make_proc(tree_update_policy=TreeUpdatePolicy.EAGER)
        proc.write_through(0x40000, b"eager")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        assert proc.read(0x40000).data[:5] == b"eager"

    def test_ht_processor_roundtrip(self):
        proc = SecureProcessor(
            SecureProcessorConfig.ht_default(protected_size=64 * MIB)
        )
        proc.write_through(0x40000, b"hashtree")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        assert proc.read(0x40000).data[:8] == b"hashtree"

    def test_ht_paths_distinguishable(self):
        proc = SecureProcessor(
            SecureProcessorConfig.ht_default(protected_size=64 * MIB)
        )
        deep = proc.read(0x40000).latency
        proc.flush(0x40000)
        shallow = proc.read(0x40000).latency
        assert shallow < deep


class TestCrossCore:
    def test_private_caches_isolated(self, proc):
        proc.read(0x40000, core=0)
        result = proc.read(0x40000, core=1)
        assert result.path is AccessPath.L3_HIT  # shared LLC, private L1/L2

    def test_metadata_shared_across_cores(self, proc):
        proc.read(0x40000, core=0)
        proc.flush(0x40000)
        # Core 1's read hits the metadata cache warmed by core 0.
        result = proc.read(0x40000, core=1)
        assert result.counter_hit

    def test_cross_socket_l3_isolation(self):
        proc = make_proc(cores=4, sockets=2)
        proc.read(0x40000, core=0)
        result = proc.read(0x40000, core=2)  # other socket
        assert result.path not in (
            AccessPath.L1_HIT,
            AccessPath.L2_HIT,
            AccessPath.L3_HIT,
        )

    def test_cross_socket_metadata_still_shared(self):
        proc = make_proc(cores=4, sockets=2)
        proc.read(0x40000, core=0)
        result = proc.read(0x40000, core=2)
        assert result.counter_hit  # one MEE serves both sockets
