"""Tests for the command-line interface."""

import pytest

from repro.cli import _FIGURE_DOC, _QUICK_KWARGS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.preset == "sct"

    def test_figures_args(self):
        args = build_parser().parse_args(["figures", "fig8", "--quick"])
        assert args.names == ["fig8"]
        assert args.quick


class TestCommands:
    def test_list_covers_all_figures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        from repro.analysis.figures import ALL_FIGURES

        for name in ALL_FIGURES:
            assert name in output
        assert set(_FIGURE_DOC) == set(ALL_FIGURES)

    @pytest.mark.parametrize("preset", ["sct", "ht", "sgx"])
    def test_info_presets(self, preset, capsys):
        assert main(["info", "--preset", preset]) == 0
        output = capsys.readouterr().out
        assert "integrity tree" in output
        assert "protected data" in output

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_quick_figure_runs(self, capsys, tmp_path):
        assert main(["figures", "fig8", "--quick", "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 8" in output
        assert (tmp_path / "fig8.txt").exists()

    def test_quick_kwargs_are_valid_figures(self):
        from repro.analysis.figures import ALL_FIGURES

        assert set(_QUICK_KWARGS) <= set(ALL_FIGURES)
