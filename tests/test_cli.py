"""Tests for the command-line interface."""

import pytest

from repro.cli import _FIGURE_DOC, _QUICK_KWARGS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.preset == "sct"

    def test_figures_args(self):
        args = build_parser().parse_args(["figures", "fig8", "--quick"])
        assert args.names == ["fig8"]
        assert args.quick


class TestCommands:
    def test_list_covers_all_figures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        from repro.analysis.figures import ALL_FIGURES

        for name in ALL_FIGURES:
            assert name in output
        assert set(_FIGURE_DOC) == set(ALL_FIGURES)

    @pytest.mark.parametrize("preset", ["sct", "ht", "sgx"])
    def test_info_presets(self, preset, capsys):
        assert main(["info", "--preset", preset]) == 0
        output = capsys.readouterr().out
        assert "integrity tree" in output
        assert "protected data" in output

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_quick_figure_runs(self, capsys, tmp_path):
        assert main(["figures", "fig8", "--quick", "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 8" in output
        assert (tmp_path / "fig8.txt").exists()

    def test_quick_kwargs_are_valid_figures(self):
        from repro.analysis.figures import ALL_FIGURES

        assert set(_QUICK_KWARGS) <= set(ALL_FIGURES)

    def test_info_rejects_unknown_preset(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["info", "--preset", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


def _fake_figure(label="fake"):
    from repro.analysis.report import FigureResult

    def figure(**_kwargs):
        result = FigureResult(figure=label, title="stub")
        result.add("value", 1)
        return result

    return figure


class TestHardenedFigureRuns:
    """The resilient-runner behaviours of ``repro figures``."""

    def test_one_failure_does_not_stop_the_batch(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.analysis import figures as figures_mod
        from repro.runner import load_manifest

        monkeypatch.setitem(figures_mod.ALL_FIGURES, "fig6", _fake_figure())
        monkeypatch.setitem(
            figures_mod.ALL_FIGURES,
            "fig8",
            lambda **_kw: (_ for _ in ()).throw(RuntimeError("forced crash")),
        )
        monkeypatch.setitem(figures_mod.ALL_FIGURES, "fig14", _fake_figure())
        code = main(
            ["figures", "fig6", "fig8", "fig14", "--out", str(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "fig8 failed" in captured.err
        assert "forced crash" in captured.err
        # The figures around the failure still completed and were written.
        assert (tmp_path / "fig6.txt").exists()
        assert (tmp_path / "fig14.txt").exists()
        records = load_manifest(tmp_path / "manifest.json")
        assert records["fig8"].status == "failed"
        assert records["fig6"].ok and records["fig14"].ok

    def test_resume_reruns_only_the_failure(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.analysis import figures as figures_mod

        ran = []

        def tracked(name, fail=False):
            def figure(**_kwargs):
                ran.append(name)
                if fail:
                    raise RuntimeError("still broken")
                return _fake_figure(name)()

            return figure

        monkeypatch.setitem(
            figures_mod.ALL_FIGURES, "fig6", tracked("fig6")
        )
        monkeypatch.setitem(
            figures_mod.ALL_FIGURES, "fig8", tracked("fig8", fail=True)
        )
        assert main(["figures", "fig6", "fig8", "--out", str(tmp_path)]) == 1
        assert ran == ["fig6", "fig8"]

        ran.clear()
        monkeypatch.setitem(
            figures_mod.ALL_FIGURES, "fig8", tracked("fig8")
        )
        code = main(
            ["figures", "fig6", "fig8", "--out", str(tmp_path), "--resume"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert ran == ["fig8"]  # fig6 restored from the manifest
        assert "fig6: ok from manifest" in captured.out

    def test_timeout_records_and_continues(self, capsys, tmp_path, monkeypatch):
        import time

        from repro.analysis import figures as figures_mod
        from repro.runner import load_manifest

        monkeypatch.setitem(
            figures_mod.ALL_FIGURES, "fig6", lambda **_kw: time.sleep(3)
        )
        monkeypatch.setitem(figures_mod.ALL_FIGURES, "fig8", _fake_figure())
        code = main(
            [
                "figures", "fig6", "fig8",
                "--out", str(tmp_path), "--timeout", "0.1",
            ]
        )
        assert code == 1
        records = load_manifest(tmp_path / "manifest.json")
        assert records["fig6"].status == "timeout"
        assert records["fig8"].ok

    def test_fail_fast_skips_remaining(self, capsys, monkeypatch):
        from repro.analysis import figures as figures_mod

        ran = []
        monkeypatch.setitem(
            figures_mod.ALL_FIGURES,
            "fig6",
            lambda **_kw: (_ for _ in ()).throw(RuntimeError("dead")),
        )
        monkeypatch.setitem(
            figures_mod.ALL_FIGURES,
            "fig8",
            lambda **_kw: ran.append("fig8") or _fake_figure()(),
        )
        assert main(["figures", "fig6", "fig8", "--fail-fast"]) == 1
        assert not ran
        assert "fail-fast" in capsys.readouterr().out

    def test_resume_requires_a_manifest(self, capsys):
        assert main(["figures", "fig6", "--resume"]) == 2
        assert "--resume needs a manifest" in capsys.readouterr().err

    def test_retry_flag_reaches_the_runner(self, tmp_path, monkeypatch):
        from repro.analysis import figures as figures_mod

        calls = []

        def flaky(**_kwargs):
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("transient")
            return _fake_figure()()

        monkeypatch.setitem(figures_mod.ALL_FIGURES, "fig6", flaky)
        code = main(
            ["figures", "fig6", "--out", str(tmp_path), "--retries", "2"]
        )
        assert code == 0
        assert len(calls) == 2


class TestFaultsCommand:
    def test_quick_campaign_passes(self, capsys):
        assert main(["faults", "--preset", "sct", "--sites", "7"]) == 0
        output = capsys.readouterr().out
        assert "data-bit detected" in output
        assert "false positives" in output

    def test_invalid_sites_exit_code(self, capsys):
        assert main(["faults", "--preset", "sct", "--sites", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_accepts_all_presets(self):
        args = build_parser().parse_args(["faults", "--preset", "all"])
        assert args.preset == "all"
        assert args.sites == 200


class TestCampaignOptions:
    """The shared --jobs/--no-cache/--campaign-db/--timeout/--retries."""

    @pytest.mark.parametrize(
        "command", ["figures", "faults", "leakcheck", "bench"]
    )
    def test_every_campaign_subcommand_has_the_flags(self, command):
        extra = ["--victim", "rsa"] if command == "leakcheck" else []
        args = build_parser().parse_args([command, *extra, "--jobs", "3"])
        assert args.jobs == 3
        assert args.retries == 0
        assert args.timeout is None
        assert args.campaign_db is None
        assert not args.no_cache

    def test_jobs_zero_means_one_per_core(self):
        import os

        args = build_parser().parse_args(["figures", "--jobs", "0"])
        assert args.jobs == (os.cpu_count() or 1)

    @pytest.mark.parametrize(
        "flags",
        [
            ["--jobs", "-1"],
            ["--jobs", "two"],
            ["--retries", "-2"],
            ["--retries", "many"],
            ["--timeout", "0"],
            ["--timeout", "-3"],
            ["--timeout", "soon"],
        ],
    )
    @pytest.mark.parametrize("command", ["figures", "faults", "bench"])
    def test_bad_values_are_rejected_consistently(
        self, command, flags, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, *flags])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flags[0] in err or "invalid" in err

    def test_parallel_figures_run_matches_serial(self, capsys, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(["figures", "fig8", "--quick",
                     "--out", str(serial_dir)]) == 0
        assert main(["figures", "fig8", "--quick",
                     "--out", str(parallel_dir), "--jobs", "2"]) == 0
        assert (serial_dir / "fig8.txt").read_text() == \
            (parallel_dir / "fig8.txt").read_text()

    def test_warm_campaign_db_serves_the_rerun(self, capsys, tmp_path):
        db = tmp_path / "campaign.sqlite"
        base = ["figures", "fig8", "--quick", "--out", str(tmp_path),
                "--campaign-db", str(db)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "[campaign cache]" in out
        assert "all 1 task(s) served from campaign cache" in out
        assert db.exists()

    def test_no_cache_forces_re_execution(self, capsys, tmp_path):
        db = tmp_path / "campaign.sqlite"
        base = ["figures", "fig8", "--quick", "--out", str(tmp_path),
                "--campaign-db", str(db)]
        assert main(base) == 0
        capsys.readouterr()
        assert main([*base, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[campaign cache]" not in out
        assert "1 executed" in out

    def test_campaign_db_defaults_into_the_out_dir(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CAMPAIGN_DB", raising=False)
        assert main(["figures", "fig8", "--quick",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "campaign.sqlite").exists()

    def test_campaign_metrics_are_exported(self, capsys, tmp_path):
        assert main(["figures", "fig8", "--quick",
                     "--out", str(tmp_path)]) == 0
        prom = (tmp_path / "campaign_metrics.prom").read_text()
        assert "repro_campaign_tasks_total 1" in prom
        assert "repro_campaign_workers_crashed_total" in prom


class TestLeakcheckList:
    def test_list_enumerates_victims(self, capsys):
        assert main(["leakcheck", "--list"]) == 0
        out = capsys.readouterr().out
        from repro.leakcheck import list_victims

        for spec in list_victims():
            assert spec.name in out

    def test_victim_required_without_list(self, capsys):
        assert main(["leakcheck"]) == 2
        assert "--victim is required" in capsys.readouterr().err


class TestSynthCommands:
    def test_generate_is_deterministic(self, capsys):
        assert main(["synth", "generate", "--seed", "5", "--count", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["synth", "generate", "--seed", "5", "--count", "2"]) == 0
        assert capsys.readouterr().out == first
        assert "gen_seed=5" in first and "gen_seed=6" in first

    def test_generate_json(self, capsys, tmp_path):
        out = tmp_path / "batch.json"
        assert main(["synth", "generate", "--count", "3",
                     "--json", str(out)]) == 0
        import json

        batch = json.loads(out.read_text())
        assert len(batch) == 3
        assert all("program" in item for item in batch)

    def test_run_minimize_corpus_verify_pipeline(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus.sqlite")
        assert main([
            "synth", "run", "--seed", "0", "--budget", "4",
            "--max-ops", "8", "--corpus", corpus, "--expect-leaky", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "synth: preset=sct" in out
        assert "target metaleak_t" in out

        assert main(["synth", "corpus", "--corpus", corpus]) == 0
        assert "leaking program(s)" in capsys.readouterr().out

        witness_dir = tmp_path / "w"
        assert main([
            "synth", "minimize", "--corpus", corpus,
            "--target", "metadata", "--out", str(witness_dir),
        ]) == 0
        witness = witness_dir / "witness_metadata.json"
        assert witness.exists()
        capsys.readouterr()

        assert main(["synth", "verify", str(witness)]) == 0
        assert "still leaks" in capsys.readouterr().out

    def test_expect_leaky_gate_fails_loudly(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus.sqlite")
        assert main([
            "synth", "run", "--seed", "0", "--budget", "1",
            "--max-ops", "8", "--corpus", corpus,
            "--expect-leaky", "999",
        ]) == 1
        assert "expected at least 999" in capsys.readouterr().err

    def test_minimize_without_corpus_hit_fails(self, capsys, tmp_path):
        corpus = str(tmp_path / "empty.sqlite")
        from repro.synth import Corpus

        Corpus(corpus).close()
        assert main([
            "synth", "minimize", "--corpus", corpus,
            "--out", str(tmp_path / "w"),
        ]) == 1
        assert "no corpus program hits" in capsys.readouterr().err

    def test_corpus_missing_file_errors(self, capsys, tmp_path):
        assert main(["synth", "corpus", "--corpus",
                     str(tmp_path / "nope.sqlite")]) == 2
        assert "no corpus" in capsys.readouterr().err

    def test_verify_checked_in_witnesses(self, capsys):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parent.parent
        paths = [str(repo / "witnesses" / f"witness_metaleak_{x}.json")
                 for x in ("t", "c")]
        assert main(["synth", "verify", *paths]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2

    def test_verify_rejects_stale_witness(self, capsys, tmp_path):
        import json

        from repro.synth import (
            Guard, Op, OpKind, Program, minimize_program, witness_to_dict,
        )

        result = minimize_program(
            Program(pages=2, ops=(
                Op(kind=OpKind.READ, count=4),
                Op(kind=OpKind.WRITE, guard=Guard.IF_ONE,
                   page=1, count=8, stride=2),
            )),
            target="metadata",
        )
        doc = witness_to_dict(result)
        # Corrupt the program into its unguarded (clean) skeleton.
        for op in doc["program"]["ops"]:
            op["guard"] = "always"
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(doc))
        assert main(["synth", "verify", str(stale)]) == 1
        assert "no longer leaks" in capsys.readouterr().err
