"""Tests for the fault-tolerant leakcheck service.

Three layers: unit tests on the job model (state machine, spec
validation), in-process asyncio tests against a real ``LeakcheckService``
on a loopback port (admission control, dedup, cancel, drain, journal
resume), and subprocess tests of ``repro serve`` proving the two
headline guarantees — an accepted job survives ``kill -9`` of the
server, and SIGTERM/SIGINT drain exits 0 without losing anything.
"""

import asyncio
import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.campaign import CampaignDB
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobStateError,
    LeakcheckService,
    build_job_tasks,
    format_load_report,
    http_request,
    run_load,
    run_probe,
)

_SRC = str(pathlib.Path(repro.__file__).resolve().parent.parent)

#: Probe sizes calibrated against the simulator's ~70k accesses/s:
#: FAST finishes in well under 100 ms, SLOW holds a worker for seconds —
#: long enough to reliably kill or drain the server mid-job.
FAST_OPS = 200
SLOW_OPS = 150_000


def _svc(db_path, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("concurrency", 1)
    return LeakcheckService(str(db_path), **kwargs)


async def _poll_terminal(host, port, job_id, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, _, data = await http_request(host, port, "GET", f"/jobs/{job_id}")
        assert status == 200, data
        if data["state"] in TERMINAL_STATES:
            return data
        await asyncio.sleep(0.03)
    raise AssertionError(f"job {job_id} never reached a terminal state")


# -- job model -------------------------------------------------------------


class TestJobStateMachine:
    def test_normal_lifecycle(self):
        job = Job(id="j", kind="probe", spec={})
        assert job.state == QUEUED and not job.terminal
        job.advance(RUNNING)
        job.advance(DONE)
        assert job.terminal

    def test_terminal_states_are_sticky(self):
        job = Job(id="j", kind="probe", spec={}, state=DONE)
        for target in (QUEUED, RUNNING, CANCELLED):
            with pytest.raises(JobStateError):
                job.advance(target)

    def test_illegal_transitions_raise(self):
        job = Job(id="j", kind="probe", spec={})
        with pytest.raises(JobStateError):
            job.advance("timeout")  # queued jobs cannot time out
        with pytest.raises(JobStateError):
            job.advance("no-such-state")

    def test_queued_can_be_cancelled_or_cache_served(self):
        for target in (CANCELLED, DONE):
            job = Job(id="j", kind="probe", spec={})
            job.advance(target)
            assert job.terminal


class TestJobSpecs:
    def test_probe_spec_normalises_and_names_deterministically(self):
        spec, tasks = build_job_tasks("probe", {"ops": 50, "seed": 3})
        assert spec == {"preset": "sct", "ops": 50, "seed": 3}
        assert len(tasks) == 1
        assert tasks[0].name == "probe_sct_o50_s3"
        repeat, _ = build_job_tasks("probe", {"seed": 3, "ops": 50})
        assert repeat == spec

    def test_leakcheck_spec_expands_seeds_to_cli_compatible_tasks(self):
        from repro.leakcheck import run_leakcheck

        _, tasks = build_job_tasks(
            "leakcheck", {"victim": "rsa", "seed": 5, "seeds": 3}
        )
        assert [t.name for t in tasks] == [
            "leakcheck_rsa_s5", "leakcheck_rsa_s6", "leakcheck_rsa_s7"
        ]
        assert all(t.fn is run_leakcheck for t in tasks)

    def test_malformed_specs_are_rejected(self):
        bad = [
            ("probe", {"ops": 0}),
            ("probe", {"ops": "many"}),
            ("probe", {"ops": True}),
            ("probe", {"preset": "enigma"}),
            ("leakcheck", {"victim": "nonexistent"}),
            ("leakcheck", {"victim": "rsa", "alpha": 2.0}),
            ("leakcheck", {"victim": "rsa", "seeds": 0}),
            ("bench", {"scenario": "nope"}),
            ("mine-bitcoin", {}),
        ]
        for kind, spec in bad:
            with pytest.raises(ValueError):
                build_job_tasks(kind, spec)
        with pytest.raises(ValueError):
            build_job_tasks("probe", "not-a-dict")

    def test_run_probe_is_deterministic_in_simulated_columns(self):
        first = run_probe(ops=60, seed=9)
        second = run_probe(ops=60, seed=9)
        assert first == second
        assert first["accesses"] == 61
        assert run_probe(ops=60, seed=10) != first


# -- in-process service ----------------------------------------------------


class TestServiceHTTP:
    def test_submit_poll_done_and_dedup(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite")
            await service.start()
            host, port = service.host, service.port

            status, _, health = await http_request(host, port, "GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")
            status, _, ready = await http_request(host, port, "GET", "/readyz")
            assert (status, ready["status"]) == (200, "ready")

            spec = {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 1}}
            status, _, job = await http_request(host, port, "POST", "/jobs", spec)
            assert status == 202 and job["state"] == QUEUED
            final = await _poll_terminal(host, port, job["id"])
            assert final["state"] == DONE
            assert final["result"]["ok"] == 1
            assert not final["cached"]

            # An identical resubmission is served from the campaign cache
            # synchronously: 200 (not 202), already done, no execution.
            status, _, dup = await http_request(host, port, "POST", "/jobs", spec)
            assert status == 200
            assert dup["state"] == DONE and dup["cached"]
            assert dup["id"] != job["id"]

            status, _, text = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert "repro_service_dedup_hits_total 1" in text
            assert "repro_service_admitted_total 2" in text
            await service.close()

        asyncio.run(scenario())

    def test_bad_requests_are_structured_errors(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite")
            await service.start()
            host, port = service.host, service.port
            status, _, err = await http_request(
                host, port, "POST", "/jobs", {"kind": "probe", "spec": {"ops": 0}}
            )
            assert status == 400 and "ops" in err["error"]
            status, _, err = await http_request(host, port, "GET", "/jobs/ghost")
            assert status == 404
            status, _, err = await http_request(host, port, "PUT", "/jobs")
            assert status == 405
            status, _, err = await http_request(host, port, "GET", "/teapot")
            assert status == 404
            await service.close()

        asyncio.run(scenario())

    def test_admission_control_sheds_with_429_and_retry_after(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite", capacity=1)
            await service.start()
            host, port = service.host, service.port
            # Occupy the single worker...
            _, _, slow = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": 40_000, "seed": 1}},
            )
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                _, _, data = await http_request(
                    host, port, "GET", f"/jobs/{slow['id']}"
                )
                if data["state"] == RUNNING:
                    break
                await asyncio.sleep(0.01)
            assert data["state"] == RUNNING
            # ...fill the queue to capacity...
            status, _, queued = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 2}},
            )
            assert status == 202
            # ...and the next submission is shed, not buffered.
            status, headers, shed = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 3}},
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert shed["capacity"] == 1
            status, _, text = await http_request(host, port, "GET", "/metrics")
            assert "repro_service_shed_total 1" in text
            await _poll_terminal(host, port, queued["id"])
            await service.close()

        asyncio.run(scenario())

    def test_queued_job_can_be_cancelled(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite")
            await service.start()
            host, port = service.host, service.port
            _, _, slow = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": 40_000, "seed": 1}},
            )
            _, _, victim = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 2}},
            )
            status, _, cancelled = await http_request(
                host, port, "DELETE", f"/jobs/{victim['id']}"
            )
            assert status == 200 and cancelled["state"] == CANCELLED
            # Cancelling a terminal job is a conflict, not a state change.
            status, _, again = await http_request(
                host, port, "DELETE", f"/jobs/{victim['id']}"
            )
            assert status == 409
            await _poll_terminal(host, port, slow["id"])
            await service.close()
            row = CampaignDB(tmp_path / "c.sqlite").journal_get(victim["id"])
            assert row.state == CANCELLED

        asyncio.run(scenario())

    def test_journal_resume_reruns_pending_jobs(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        # Simulate a crashed server: journalled jobs stuck mid-flight.
        with CampaignDB(db_path) as db:
            spec = json.dumps({"preset": "sct", "ops": FAST_OPS, "seed": 7})
            db.journal_put(job_id="stuck-queued", kind="probe", spec=spec,
                           state="queued")
            spec2 = json.dumps({"preset": "sct", "ops": FAST_OPS, "seed": 8})
            db.journal_put(job_id="stuck-running", kind="probe", spec=spec2,
                           state="running")

        async def scenario():
            service = _svc(db_path)
            await service.start()
            host, port = service.host, service.port
            for job_id in ("stuck-queued", "stuck-running"):
                final = await _poll_terminal(host, port, job_id)
                assert final["state"] == DONE
                assert final["resumed"]
            status, _, text = await http_request(host, port, "GET", "/metrics")
            assert "repro_service_resumed_total 2" in text
            await service.close()

        asyncio.run(scenario())
        with CampaignDB(db_path) as db:
            assert db.journal_pending() == []
            assert {row.state for row in db.journal_jobs()} == {DONE}

    def test_drain_checkpoints_queued_jobs_and_stops_admitting(self, tmp_path):
        db_path = tmp_path / "c.sqlite"

        async def scenario():
            service = _svc(db_path)
            await service.start()
            host, port = service.host, service.port
            _, _, slow = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": 40_000, "seed": 1}},
            )
            _, _, queued = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 2}},
            )
            service.begin_drain()
            status, _, ready = await http_request(host, port, "GET", "/readyz")
            assert status == 503 and ready["status"] == "draining"
            status, _, _err = await http_request(
                host, port, "POST", "/jobs",
                {"kind": "probe", "spec": {"ops": FAST_OPS, "seed": 3}},
            )
            assert status == 503
            await service.wait_closed()
            snap = service.registry.snapshot()
            assert snap["drained"] == 1
            return slow["id"], queued["id"]

        slow_id, queued_id = asyncio.run(scenario())
        with CampaignDB(db_path) as db:
            # The running job finished; the queued one was checkpointed
            # and will be resumed by the next start().
            assert db.journal_get(slow_id).state == DONE
            assert db.journal_get(queued_id).state == QUEUED
            assert [row.id for row in db.journal_pending()] == [queued_id]

    def test_load_generator_drives_all_jobs_to_done(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite", concurrency=2, capacity=4)
            await service.start()
            report = await run_load(
                service.host, service.port, jobs=6, concurrency=6,
                spec={"ops": FAST_OPS},
            )
            await service.close()
            return report

        report = asyncio.run(scenario())
        assert report.ok, report.to_dict()
        assert report.accepted == 6
        assert report.states == {DONE: 6}
        assert report.jobs_per_second > 0
        text = format_load_report(report)
        assert "verdict            OK" in text

    def test_service_validates_arguments(self, tmp_path):
        for kwargs in (
            {"capacity": 0}, {"concurrency": 0}, {"engine_jobs": 0},
            {"drain_grace": 0.0}, {"job_timeout": 0.0}, {"retries": -1},
        ):
            with pytest.raises(ValueError):
                LeakcheckService(str(tmp_path / "c.sqlite"), **kwargs)


# -- bench scenario --------------------------------------------------------


class TestServiceBench:
    def test_service_jobs_scenario_measures_jobs_per_second(self):
        from repro.perf import bench

        result = bench.run_scenario("service_jobs", seed=1, quick=True)
        assert result.preset == "service"
        assert result.accesses == 12  # completed jobs
        assert result.sim_accesses_per_second > 0
        assert result.counters["done"] == 12
        assert result.counters["failed"] == 0


# -- subprocess: kill -9 resume and graceful drain -------------------------


def _serve_env(db_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env["REPRO_CAMPAIGN_DB"] = str(db_path)
    return env


def _start_server(db_path, *extra_args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--concurrency", "1", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_serve_env(db_path),
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].split()[0])
            return proc, port
        if proc.poll() is not None:
            break
        time.sleep(0.01)
    proc.kill()
    raise AssertionError(f"server never came up: {line!r}")


def _http(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    raw = response.read().decode()
    conn.close()
    ctype = response.headers.get("Content-Type", "")
    data = json.loads(raw) if ctype.startswith("application/json") else raw
    return response.status, data


def _wait_state(port, job_id, states, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, data = _http(port, "GET", f"/jobs/{job_id}")
        assert status == 200, data
        if data["state"] in states:
            return data
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {states}")


@pytest.mark.slow
class TestServeProcess:
    def test_kill_9_loses_no_accepted_job(self, tmp_path):
        """The headline guarantee: jobs accepted before SIGKILL all reach a
        terminal state after a restart on the same journal."""
        db_path = tmp_path / "c.sqlite"
        server, port = _start_server(db_path)
        job_ids = []
        try:
            status, slow = _http(port, "POST", "/jobs", {
                "kind": "probe", "spec": {"ops": SLOW_OPS, "seed": 1},
            })
            assert status == 202
            job_ids.append(slow["id"])
            _wait_state(port, slow["id"], {"running"})
            for seed in (2, 3):
                status, job = _http(port, "POST", "/jobs", {
                    "kind": "probe", "spec": {"ops": FAST_OPS, "seed": seed},
                })
                assert status == 202
                job_ids.append(job["id"])
        finally:
            server.kill()  # SIGKILL: no drain, no cleanup
            server.wait(timeout=30)

        with CampaignDB(db_path) as db:
            pending = {row.id for row in db.journal_pending()}
        assert pending == set(job_ids)  # the journal remembers everything

        server, port = _start_server(db_path)
        try:
            for job_id in job_ids:
                final = _wait_state(port, job_id, TERMINAL_STATES)
                assert final["state"] == "done", final
                assert final["resumed"]
            status, metrics = _http(port, "GET", "/metrics")
            assert "repro_service_resumed_total 3" in metrics
        finally:
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=60) == 0

    def test_sigterm_drains_gracefully_with_exit_0(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        server, port = _start_server(db_path)
        status, slow = _http(port, "POST", "/jobs", {
            "kind": "probe", "spec": {"ops": SLOW_OPS, "seed": 1},
        })
        assert status == 202
        _wait_state(port, slow["id"], {"running"})
        status, queued = _http(port, "POST", "/jobs", {
            "kind": "probe", "spec": {"ops": FAST_OPS, "seed": 2},
        })
        assert status == 202
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=120) == 0
        output = server.stdout.read()
        assert "service:" in output  # the drain summary made it out
        with CampaignDB(db_path) as db:
            # The in-flight job finished; the queued one was checkpointed,
            # not lost — exactly what the next start() will resume.
            assert db.journal_get(slow["id"]).state == "done"
            assert db.journal_get(queued["id"]).state == "queued"


class TestServiceSynthJob:
    def test_synth_job_runs_and_dedups(self, tmp_path):
        async def scenario():
            service = _svc(tmp_path / "c.sqlite")
            await service.start()
            host, port = service.host, service.port

            spec = {"kind": "synth", "spec": {"budget": 3, "seed": 0}}
            status, _, job = await http_request(host, port, "POST", "/jobs", spec)
            assert status == 202
            final = await _poll_terminal(host, port, job["id"])
            assert final["state"] == DONE
            assert final["result"]["ok"] == 3
            # Task results round-trip the payload codec (Program/SynthResult
            # are repro dataclasses), so the per-task verdicts are visible.
            names = [task["name"] for task in final["result"]["tasks"]]
            assert names == [
                "synth_sct_none_g0", "synth_sct_none_g1", "synth_sct_none_g2",
            ]

            # Identical resubmission: all three tasks cache-hit.
            status, _, dup = await http_request(host, port, "POST", "/jobs", spec)
            assert status == 200
            assert dup["state"] == DONE and dup["cached"]
            await service.close()

        asyncio.run(scenario())
