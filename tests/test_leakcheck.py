"""Tests for the automated leakage detector (``repro.leakcheck``)."""

import pytest

from repro.leakcheck import (
    LeakReport,
    VictimSpec,
    get_victim,
    run_leakcheck,
    victim_names,
)
from repro.utils.stats import ks_two_sample


class TestKsTwoSample:
    def test_identical_samples(self):
        result = ks_two_sample([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.statistic == 0.0
        assert result.pvalue > 0.99

    def test_disjoint_samples(self):
        result = ks_two_sample(list(range(50)), list(range(100, 150)))
        assert result.statistic == 1.0
        assert result.pvalue < 1e-9

    def test_discrete_ties(self):
        result = ks_two_sample([1] * 50 + [2] * 50, [1] * 80 + [2] * 20)
        assert result.statistic == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])


class TestRegistry:
    def test_known_victims(self):
        assert {"rsa", "mbedtls", "kvstore", "jpeg", "const"} <= set(
            victim_names()
        )

    def test_unknown_victim_rejected(self):
        with pytest.raises(ValueError, match="unknown leakcheck victim"):
            get_victim("nope")


class TestDetector:
    def test_rsa_flags_metadata_events(self):
        report = run_leakcheck("rsa", seed=0)
        assert report.leaky
        flagged = {(f.component, f.kind) for f in report.flagged_findings}
        # The MetaLeak signals proper: counter fetches and tree walks.
        assert any(component == "mee" for component, _ in flagged)
        assert ("mee", "tree_walk") in flagged or (
            "mee",
            "counter_miss",
        ) in flagged or ("mee", "counter_hit") in flagged

    def test_kvstore_flags_write_side(self):
        report = run_leakcheck("kvstore", seed=0)
        assert report.leaky
        flagged_components = {f.component for f in report.flagged_findings}
        assert flagged_components & {"memctrl", "dram"}

    @pytest.mark.parametrize("seed", range(20))
    def test_constant_time_victim_clean(self, seed):
        report = run_leakcheck("const", seed=seed)
        assert not report.leaky, [
            (f.component, f.kind, f.reasons) for f in report.flagged_findings
        ]

    def test_report_json_round_trip(self):
        report = run_leakcheck("rsa", seed=1)
        restored = LeakReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.leaky == report.leaky
        assert restored.flagged_findings
        assert restored.findings[0].tests == report.findings[0].tests

    def test_user_supplied_victim_spec(self):
        def secrets(seed):
            return seed, seed + 1

        def run(proc, secret):
            # Reads scale with the secret: blatantly leaky.
            for i in range(8 + (int(secret) % 2) * 8):
                proc.read(i * 64)
            proc.drain_writes()

        spec = VictimSpec(
            name="custom", description="test", secrets=secrets, run=run
        )
        report = run_leakcheck(spec, seed=4)
        assert report.victim == "custom"
        assert report.leaky

    def test_determinism(self):
        first = run_leakcheck("rsa", seed=3)
        second = run_leakcheck("rsa", seed=3)
        assert first.to_dict() == second.to_dict()
