"""Unit tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache


def small_cache(sets=4, ways=2):
    return SetAssocCache(CacheConfig("t", sets * ways * 64, ways, 1))


class TestGeometry:
    def test_sets_and_ways(self):
        cache = SetAssocCache(CacheConfig("L1", 32 * 1024, 8, 1))
        assert cache.num_sets == 64
        assert cache.ways == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 1)

    def test_set_index_of(self):
        cache = small_cache(sets=4)
        assert cache.set_index_of(0) == 0
        assert cache.set_index_of(64) == 1
        assert cache.set_index_of(64 * 4) == 0
        assert cache.set_index_of(65) == 1  # same block as 64


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_insert_same_block_no_evict(self):
        cache = small_cache()
        cache.insert(0x1000)
        event = cache.insert(0x1000)
        assert event.hit
        assert event.evicted_addr is None

    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0 * 64)
        cache.insert(1 * 64)
        event = cache.insert(2 * 64)
        assert event.evicted_addr == 0  # least recently used

    def test_lookup_refreshes_recency(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0 * 64)
        cache.insert(1 * 64)
        cache.lookup(0)  # promote block 0
        event = cache.insert(2 * 64)
        assert event.evicted_addr == 64

    def test_peek_does_not_refresh(self):
        cache = small_cache(sets=1, ways=2)
        cache.insert(0 * 64)
        cache.insert(1 * 64)
        assert cache.contains(0)
        event = cache.insert(2 * 64)
        assert event.evicted_addr == 0

    def test_sub_block_addresses_alias(self):
        cache = small_cache()
        cache.insert(0x1000)
        assert cache.lookup(0x1001)
        assert cache.lookup(0x103F)


class TestDirty:
    def test_dirty_eviction_reported(self):
        cache = small_cache(sets=1, ways=1)
        cache.insert(0, dirty=True)
        event = cache.insert(64)
        assert event.evicted_addr == 0
        assert event.evicted_dirty

    def test_clean_eviction(self):
        cache = small_cache(sets=1, ways=1)
        cache.insert(0)
        event = cache.insert(64)
        assert not event.evicted_dirty

    def test_mark_dirty(self):
        cache = small_cache()
        cache.insert(0x40)
        assert not cache.is_dirty(0x40)
        cache.mark_dirty(0x40)
        assert cache.is_dirty(0x40)

    def test_mark_dirty_absent_is_noop(self):
        cache = small_cache()
        cache.mark_dirty(0x40)
        assert not cache.contains(0x40)

    def test_insert_or_dirty_merge(self):
        cache = small_cache()
        cache.insert(0x40, dirty=True)
        cache.insert(0x40, dirty=False)
        assert cache.is_dirty(0x40)


class TestInvalidate:
    def test_invalidate_present(self):
        cache = small_cache()
        cache.insert(0x40, dirty=True)
        present, dirty = cache.invalidate(0x40)
        assert present and dirty
        assert not cache.contains(0x40)

    def test_invalidate_absent(self):
        cache = small_cache()
        assert cache.invalidate(0x40) == (False, False)

    def test_clear(self):
        cache = small_cache()
        cache.insert(0)
        cache.insert(64)
        cache.clear()
        assert cache.occupancy() == 0


class TestOccupancyInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, block_numbers):
        cache = small_cache(sets=4, ways=2)
        for number in block_numbers:
            cache.insert(number * 64)
            assert cache.occupancy() <= 8
            for set_index in range(4):
                assert len(cache.blocks_in_set(set_index)) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_most_recent_insert_always_present(self, block_numbers):
        cache = small_cache(sets=2, ways=2)
        for number in block_numbers:
            cache.insert(number * 64)
            assert cache.contains(number * 64)

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_blocks_map_to_correct_set(self, block_numbers):
        cache = small_cache(sets=4, ways=2)
        for number in block_numbers:
            cache.insert(number * 64)
        for set_index in range(4):
            for addr in cache.blocks_in_set(set_index):
                assert cache.set_index_of(addr) == set_index

    def test_iteration_covers_all(self):
        cache = small_cache(sets=4, ways=2)
        addrs = {i * 64 for i in range(6)}
        for addr in addrs:
            cache.insert(addr)
        assert set(cache) == addrs
