"""Tests for the data-cache hierarchy (inclusive L3, writebacks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KIB, CacheConfig, SecureProcessorConfig
from repro.mem.hierarchy import DataCacheSystem


def tiny_machine(cores=2, sockets=1):
    return DataCacheSystem(
        SecureProcessorConfig.sct_default(cores=cores, sockets=sockets).with_overrides(
            l1=CacheConfig("L1", 2 * KIB, 2, 1),
            l2=CacheConfig("L2", 4 * KIB, 2, 10),
            l3=CacheConfig("L3", 8 * KIB, 2, 40),
        )
    )


class TestAccessPath:
    def test_miss_then_l1_hit(self):
        caches = tiny_machine()
        result = caches.access(0, 0x1000, is_write=False)
        assert result.hit_level is None
        caches.fill(0, 0x1000, dirty=False)
        assert caches.access(0, 0x1000, is_write=False).hit_level == 1

    def test_other_core_hits_l3(self):
        caches = tiny_machine()
        caches.fill(0, 0x1000, dirty=False)
        assert caches.access(1, 0x1000, is_write=False).hit_level == 3

    def test_promotion_after_l3_hit(self):
        caches = tiny_machine()
        caches.fill(0, 0x1000, dirty=False)
        caches.access(1, 0x1000, is_write=False)  # L3 hit, promotes
        assert caches.access(1, 0x1000, is_write=False).hit_level == 1

    def test_latency_accumulates_with_depth(self):
        caches = tiny_machine()
        caches.fill(0, 0x1000, dirty=False)
        l1 = caches.access(0, 0x1000, is_write=False).latency
        caches.core_caches[0].l1.invalidate(0x1000)
        caches.core_caches[0].l2.invalidate(0x1000)
        l3 = caches.access(0, 0x1000, is_write=False).latency
        assert l3 > l1


class TestInclusivity:
    def test_l3_eviction_back_invalidates(self):
        caches = tiny_machine()
        caches.fill(0, 0x0, dirty=False)
        # Fill the 2-way L3 set of 0x0 with conflicting blocks.
        l3 = caches.l3s[0]
        target_set = l3.set_index_of(0x0)
        conflicts = [
            addr
            for addr in range(64, 1 << 18, 64)
            if l3.set_index_of(addr) == target_set
        ][:2]
        for addr in conflicts:
            caches.fill(0, addr, dirty=False)
        assert not l3.contains(0x0)
        assert not caches.core_caches[0].l1.contains(0x0)

    def test_dirty_back_invalidation_writes_back(self):
        caches = tiny_machine()
        caches.fill(0, 0x0, dirty=True)
        l3 = caches.l3s[0]
        target_set = l3.set_index_of(0x0)
        conflicts = [
            addr
            for addr in range(64, 1 << 18, 64)
            if l3.set_index_of(addr) == target_set
        ][:2]
        writebacks = []
        for addr in conflicts:
            writebacks += caches.fill(0, addr, dirty=False)
        assert 0x0 in writebacks

    def test_flush_reports_dirty(self):
        caches = tiny_machine()
        caches.fill(0, 0x40, dirty=True)
        was_dirty, writebacks = caches.flush(0x40)
        assert was_dirty and writebacks == [0x40]
        assert not caches.contains(0x40)

    def test_flush_clean(self):
        caches = tiny_machine()
        caches.fill(0, 0x40, dirty=False)
        was_dirty, writebacks = caches.flush(0x40)
        assert not was_dirty and writebacks == []


class TestSockets:
    def test_socket_mapping(self):
        caches = tiny_machine(cores=4, sockets=2)
        assert caches.socket_of(0) == 0
        assert caches.socket_of(3) == 1

    def test_l3s_isolated_across_sockets(self):
        caches = tiny_machine(cores=4, sockets=2)
        caches.fill(0, 0x1000, dirty=False)
        assert caches.access(2, 0x1000, is_write=False).hit_level is None

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            tiny_machine(cores=3, sockets=2)


class TestWritebackInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # core
                st.integers(min_value=0, max_value=63),  # block id
                st.booleans(),  # dirty
            ),
            max_size=120,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_fills_never_lose_track(self, operations):
        """Whatever the fill/evict pattern, capacity bounds hold and every
        block reported written-back was previously filled dirty somewhere."""
        caches = tiny_machine()
        dirty_ever = set()
        for core, block_id, dirty in operations:
            addr = block_id * 64
            if dirty:
                dirty_ever.add(addr)
            writebacks = caches.fill(core, addr, dirty=dirty)
            for writeback in writebacks:
                assert writeback in dirty_ever
            for l3 in caches.l3s:
                assert l3.occupancy() <= l3.num_sets * l3.ways