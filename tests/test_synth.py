"""Tests for the attack-synthesis fuzzer (``repro.synth``).

Covers the IR (validation, address arithmetic, canonical JSON), the
campaign payload codec round-trip for programs (enums, tuples, nested
dataclasses), the seeded generator, the oracle bridge, the persistent
corpus, the fuzz driver (including campaign-cache behaviour), the
delta-debugging minimizer's invariants, the checked-in witness
fixtures that re-derive both paper attacks, and the service's
``synth`` job kind.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.campaign import (
    CampaignDB,
    CampaignEngine,
    CampaignTask,
    decode_payload,
    encode_payload,
)
from repro.synth import (
    Corpus,
    GenConfig,
    Guard,
    MinimizationError,
    Op,
    OpKind,
    Program,
    ProgramError,
    SynthResult,
    build_fuzz_tasks,
    compile_program,
    corpus_key,
    evaluate_program,
    generate_batch,
    generate_program,
    load_witness,
    minimize_program,
    program_from_json,
    program_to_json,
    resolve_target,
    run_fuzz,
    strip_guards,
    target_names,
    task_name,
    validate_program,
)
from repro.synth.ir import LINES_PER_PAGE, op_lines

REPO = pathlib.Path(__file__).resolve().parent.parent
WITNESS_DIR = REPO / "witnesses"

#: A hand-written program that leaks: a secret-guarded strided write
#: burst diverges the paired runs through the whole metadata path.
LEAKER = Program(
    pages=2,
    ops=(
        Op(kind=OpKind.READ, page=0, offset=0, count=4, stride=1),
        Op(kind=OpKind.WRITE, guard=Guard.IF_ONE, page=1, offset=0,
           count=8, stride=2),
        Op(kind=OpKind.DRAIN),
    ),
)

#: Small generator config keeping property-test oracle runs cheap.
SMALL_GEN = GenConfig(max_pages=2, min_ops=4, max_ops=8)


# -- IR --------------------------------------------------------------------


class TestIR:
    def test_validate_accepts_and_chains(self):
        assert validate_program(LEAKER) is LEAKER

    @pytest.mark.parametrize(
        "program",
        [
            Program(pages=0, ops=(Op(kind=OpKind.READ),)),
            Program(pages=1, ops=()),
            Program(pages=1, ops=(Op(kind=OpKind.READ, page=3),)),
            Program(pages=1,
                    ops=(Op(kind=OpKind.READ, offset=LINES_PER_PAGE),)),
            Program(pages=1, ops=(Op(kind=OpKind.READ, count=0),)),
            Program(pages=1, ops=(Op(kind=OpKind.READ, stride=0),)),
        ],
    )
    def test_validate_rejects(self, program):
        with pytest.raises(ProgramError):
            validate_program(program)

    def test_op_lines_wrap_inside_span(self):
        program = Program(
            pages=1,
            ops=(Op(kind=OpKind.READ, offset=LINES_PER_PAGE - 1,
                    count=3, stride=1),),
        )
        lines = op_lines(program, program.ops[0])
        assert lines == [LINES_PER_PAGE - 1, 0, 1]

    def test_drain_touches_no_lines(self):
        assert op_lines(LEAKER, Op(kind=OpKind.DRAIN)) == []

    def test_evict_ignores_stride(self):
        program = Program(
            pages=1, ops=(Op(kind=OpKind.EVICT, count=3, stride=7),)
        )
        assert op_lines(program, program.ops[0]) == [0, 1, 2]

    def test_json_round_trip_is_canonical(self):
        text = program_to_json(LEAKER)
        assert program_from_json(text) == LEAKER
        assert program_to_json(program_from_json(text)) == text
        # Canonical form: sorted keys, no whitespace.
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_strip_guards_clears_every_guard(self):
        stripped = strip_guards(LEAKER)
        assert stripped.guarded_ops == 0
        assert len(stripped.ops) == len(LEAKER.ops)
        assert stripped != LEAKER

    def test_from_json_validates(self):
        with pytest.raises(ProgramError):
            program_from_json('{"pages": 0, "ops": [], "cleanse": false}')


# -- campaign payload codec (programs are campaign task kwargs) ------------


class TestProgramPayloadCodec:
    def test_round_trip_preserves_enums_tuples_nesting(self):
        restored = decode_payload(encode_payload(LEAKER))
        assert restored == LEAKER
        assert isinstance(restored, Program)
        assert isinstance(restored.ops, tuple)
        assert restored.ops[1].kind is OpKind.WRITE
        assert restored.ops[1].guard is Guard.IF_ONE

    def test_encoding_is_byte_stable(self):
        clone = dataclasses.replace(LEAKER)
        assert encode_payload(LEAKER) == encode_payload(clone)

    def test_task_config_hash_stable_across_equal_programs(self):
        def hash_of(program):
            return CampaignTask(
                name="synth_x",
                fn=evaluate_program,
                kwargs={"program": program, "preset": "sct"},
            ).config_hash

        assert hash_of(LEAKER) == hash_of(dataclasses.replace(LEAKER))
        assert hash_of(LEAKER) != hash_of(strip_guards(LEAKER))

    def test_result_round_trips(self):
        result = SynthResult(
            program=LEAKER, preset="sct", defense="none", alpha=0.01,
            gen_seed=7, leaky=True, metadata_leaky=True,
            channels=(("mee", "tree_walk"), ("dram", "read")), events=123,
        )
        restored = decode_payload(encode_payload(result))
        assert restored == result
        assert restored.channels == (("mee", "tree_walk"), ("dram", "read"))


# -- generator -------------------------------------------------------------


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_program(11) == generate_program(11)
        assert generate_program(11) != generate_program(12)

    def test_batch_uses_consecutive_seeds(self):
        batch = generate_batch(100, 4)
        assert [gen_seed for gen_seed, _ in batch] == [100, 101, 102, 103]
        for gen_seed, program in batch:
            assert program == generate_program(gen_seed)

    @pytest.mark.parametrize("seed", range(25))
    def test_every_program_valid_and_guarded(self, seed):
        program = generate_program(seed, SMALL_GEN)
        validate_program(program)
        assert program.guarded_ops >= 1
        assert program.pages <= SMALL_GEN.max_pages
        assert len(program.ops) <= SMALL_GEN.max_ops

    def test_config_validation(self):
        with pytest.raises(ProgramError):
            GenConfig(min_ops=10, max_ops=5).validate()
        with pytest.raises(ProgramError):
            GenConfig(p_guard=1.5).validate()
        with pytest.raises(ProgramError):
            GenConfig(weights=(0, 0, 0, 0, 0)).validate()

    def test_batch_count_must_be_positive(self):
        with pytest.raises(ProgramError):
            generate_batch(0, 0)


# -- oracle bridge ---------------------------------------------------------


class TestOracle:
    def test_hand_written_leaker_hits_both_paper_targets(self):
        result = evaluate_program(program=LEAKER)
        assert result.leaky
        assert result.metadata_leaky
        hit = result.hit_targets()
        assert "metaleak_t" in hit
        assert "metaleak_c" in hit

    def test_unguarded_skeleton_is_clean(self):
        result = evaluate_program(program=strip_guards(LEAKER))
        assert not result.leaky
        assert result.channels == ()
        assert not result.hits(frozenset())

    def test_compile_program_pairs_single_bit(self):
        spec = compile_program(LEAKER)
        assert spec.secrets(0) == (0, 1)
        assert spec.secrets(99) == (0, 1)

    def test_resolve_target(self):
        assert resolve_target("metaleak_t") == frozenset({"mee", "tree"})
        assert resolve_target("metaleak_c") == frozenset({"memctrl", "dram"})
        assert resolve_target("any") == frozenset()
        with pytest.raises(ValueError):
            resolve_target("bogus")
        assert set(target_names()) == {
            "any", "metadata", "metaleak_c", "metaleak_t",
        }

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            evaluate_program(program=LEAKER, defense="bogus")


# -- corpus ----------------------------------------------------------------


def _result(program, *, leaky=True, channels=(("mee", "tree_walk"),),
            gen_seed=0):
    return SynthResult(
        program=program, preset="sct", defense="none", alpha=0.01,
        gen_seed=gen_seed, leaky=leaky,
        metadata_leaky=any(c in {"mee", "tree", "memctrl", "dram", "crypto"}
                           for c, _ in channels),
        channels=channels, events=10,
    )


class TestCorpus:
    def test_add_stores_only_leaky_and_upserts(self, tmp_path):
        with Corpus(tmp_path / "c.sqlite") as corpus:
            assert corpus.add(_result(LEAKER)) is True
            assert corpus.add(_result(LEAKER)) is False  # upsert, not dup
            assert corpus.add(
                _result(strip_guards(LEAKER), leaky=False, channels=())
            ) is False
            assert len(corpus) == 1
            assert corpus.evaluated_total == 3

    def test_entries_smallest_first_and_best_for(self, tmp_path):
        one_op = Program(pages=1, ops=(Op(kind=OpKind.READ),))
        with Corpus(tmp_path / "c.sqlite") as corpus:
            corpus.add(_result(LEAKER, channels=(("memctrl", "read"),)))
            corpus.add(_result(one_op, channels=(("mee", "tree_walk"),)))
            entries = corpus.entries()
            assert [e.ops for e in entries] == [1, 3]
            best = corpus.best_for(frozenset({"mee"}))
            assert best is not None and best.program == one_op
            assert corpus.best_for(frozenset({"crypto"})) is None

    def test_coverage_counts_programs_per_channel(self, tmp_path):
        with Corpus(tmp_path / "c.sqlite") as corpus:
            corpus.add(_result(LEAKER,
                               channels=(("mee", "tree_walk"),
                                         ("dram", "read"))))
            assert corpus.coverage() == {
                ("mee", "tree_walk"): 1, ("dram", "read"): 1,
            }
            assert any("mee" in line for line in corpus.summary_lines())

    def test_key_depends_on_machine(self):
        assert corpus_key(LEAKER, "sct", "none") != \
            corpus_key(LEAKER, "sgx", "none")
        assert corpus_key(LEAKER, "sct", "none") != \
            corpus_key(LEAKER, "sct", "split_llc")


# -- fuzz driver -----------------------------------------------------------


class TestFuzz:
    def test_tasks_are_deterministic_and_named(self):
        tasks = build_fuzz_tasks(budget=3, seed=5, gen=SMALL_GEN)
        again = build_fuzz_tasks(budget=3, seed=5, gen=SMALL_GEN)
        assert [t.name for t in tasks] == [
            "synth_sct_none_g5", "synth_sct_none_g6", "synth_sct_none_g7",
        ]
        assert [t.config_hash for t in tasks] == \
            [t.config_hash for t in again]
        assert task_name("sgx", "split_llc", 9) == "synth_sgx_split_llc_g9"

    def test_run_fuzz_finds_leaks_and_fills_corpus(self, tmp_path):
        with Corpus(tmp_path / "c.sqlite") as corpus:
            report = run_fuzz(budget=4, seed=0, gen=SMALL_GEN, corpus=corpus)
            assert report.evaluated == 4
            assert report.failed == 0
            assert report.leaky >= 1
            assert report.new_in_corpus == len(corpus)
            assert corpus.evaluated_total == 4
        assert any(line.startswith("synth:")
                   for line in report.summary_lines())

    def test_second_batch_served_from_campaign_cache(self, tmp_path):
        db = CampaignDB(tmp_path / "campaign.sqlite")
        kwargs = dict(budget=3, seed=7, gen=SMALL_GEN)
        first = run_fuzz(engine=CampaignEngine(jobs=1, db=db), **kwargs)
        engine = CampaignEngine(jobs=1, db=db)
        second = run_fuzz(engine=engine, **kwargs)
        assert second.evaluated == first.evaluated == 3
        assert [r.channels for r in second.results] == \
            [r.channels for r in first.results]
        assert engine.registry.snapshot()["executed"] == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            run_fuzz(budget=0)


# -- minimizer -------------------------------------------------------------


class TestMinimizer:
    # Seeds whose SMALL_GEN draw leaks a metadata channel (so every
    # parametrization exercises a real minimization, none skip).
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 6, 10])
    def test_property_witness_still_leaks(self, seed, monkeypatch):
        """Every accepted reduction re-ran the oracle and still leaked."""
        import repro.synth.minimize as minimize_mod

        program = generate_program(seed, SMALL_GEN)
        baseline = evaluate_program(program=program)
        if not baseline.hits(resolve_target("metadata")):
            pytest.skip(f"seed {seed} draw does not leak metadata")

        calls: list[Program] = []
        real = minimize_mod.evaluate_program

        def counting(**kwargs):
            calls.append(kwargs["program"])
            return real(**kwargs)

        monkeypatch.setattr(minimize_mod, "evaluate_program", counting)
        result = minimize_program(program, target="metadata")
        # The minimizer never fabricates: the witness it returns is the
        # last program the oracle confirmed, and re-running it now (with
        # the real oracle) still flags a metadata channel.
        assert calls[-1] == result.witness
        fresh = evaluate_program(program=result.witness)
        assert fresh.hits(resolve_target("metadata"))
        assert result.final_ops <= result.initial_ops
        assert result.oracle_calls == len(calls)
        assert 1 <= result.final_ops <= len(program.ops)
        validate_program(result.witness)

    def test_non_leaking_program_raises(self):
        clean = strip_guards(LEAKER)
        with pytest.raises(MinimizationError):
            minimize_program(clean, target="metadata")

    def test_oracle_budget_respected(self):
        result = minimize_program(LEAKER, target="metadata",
                                  max_oracle_calls=3)
        assert result.oracle_calls <= 4  # budget + final re-check
        fresh = evaluate_program(program=result.witness)
        assert fresh.hits(resolve_target("metadata"))

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError):
            minimize_program(LEAKER, max_oracle_calls=1)


# -- checked-in witness fixtures (the paper attacks, re-derived) -----------


class TestWitnessFixtures:
    """The fuzzer's minimized finds are regression fixtures.

    ``witnesses/witness_metaleak_t.json`` and ``_c.json`` were produced
    by ``repro synth run`` + ``repro synth minimize`` (see docs/synth.md)
    and must keep tripping the detector on their recorded channels.
    """

    def test_fixtures_exist(self):
        assert (WITNESS_DIR / "witness_metaleak_t.json").exists()
        assert (WITNESS_DIR / "witness_metaleak_c.json").exists()

    def test_metaleak_t_witness_flags_tree_path(self):
        witness = load_witness(WITNESS_DIR / "witness_metaleak_t.json")
        assert witness.target == "metaleak_t"
        result = witness.verify()
        flagged = {component for component, _ in result.channels}
        assert flagged & {"mee", "tree"}

    def test_metaleak_c_witness_flags_memctrl_path(self):
        witness = load_witness(WITNESS_DIR / "witness_metaleak_c.json")
        assert witness.target == "metaleak_c"
        result = witness.verify()
        flagged = {component for component, _ in result.channels}
        assert flagged & {"memctrl", "dram"}

    def test_witness_write_and_load_round_trip(self, tmp_path):
        result = minimize_program(LEAKER, target="metaleak_t")
        from repro.synth import write_witness

        path = write_witness(result, tmp_path / "w.json")
        witness = load_witness(path)
        assert witness.program == result.witness
        assert witness.verify().leaky

    def test_load_rejects_foreign_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"kind": "other"}')
        with pytest.raises(ValueError):
            load_witness(bogus)


# -- the clean control: const victim stays clean ---------------------------


class TestCleanControl:
    def test_const_victim_clean_across_20_seeds(self):
        """The detector's false-positive control for the synth gate."""
        from repro.leakcheck import run_leakcheck

        for seed in range(20):
            report = run_leakcheck("const", seed=seed)
            assert not report.leaky, f"const flagged at seed {seed}"


# -- service job kind ------------------------------------------------------


class TestSynthJobKind:
    def test_expansion_matches_fuzz_tasks(self):
        from repro.service.jobs import build_job_tasks, job_kinds

        assert "synth" in job_kinds()
        normalized, tasks = build_job_tasks(
            "synth", {"budget": 3, "seed": 4}
        )
        assert normalized == {
            "preset": "sct", "defense": "none", "seed": 4,
            "budget": 3, "alpha": 0.01,
        }
        expected = build_fuzz_tasks(budget=3, seed=4)
        assert [t.name for t in tasks] == [t.name for t in expected]
        assert [t.config_hash for t in tasks] == \
            [t.config_hash for t in expected]

    @pytest.mark.parametrize(
        "spec",
        [
            {"preset": "bogus"},
            {"defense": "bogus"},
            {"budget": 0},
            {"budget": 10_000},
            {"alpha": 0.0},
            {"alpha": True},
        ],
    )
    def test_bad_specs_rejected(self, spec):
        from repro.service.jobs import build_job_tasks

        with pytest.raises(ValueError):
            build_job_tasks("synth", spec)
