"""Tests for the structured event bus (``repro.trace``)."""

import json

import pytest

from repro.config import SecureProcessorConfig
from repro.proc.processor import SecureProcessor
from repro.trace import (
    Counter,
    CounterRegistry,
    Gauge,
    TraceEvent,
    Tracer,
    group_by_kind,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _machine() -> SecureProcessor:
    return SecureProcessor(
        SecureProcessorConfig.sct_default(functional_crypto=False)
    )


def _exercise(proc: SecureProcessor, blocks: int = 24) -> None:
    for i in range(blocks):
        proc.write(i * 64, b"x")
    proc.drain_writes()
    for i in range(blocks):
        proc.read(i * 64)


class TestTracer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_events_nondecreasing_cycle_order(self):
        proc = _machine()
        tracer = Tracer()
        proc.attach_tracer(tracer)
        _exercise(proc)
        events = tracer.events()
        assert events, "instrumented machine produced no events"
        assert all(a.cycle <= b.cycle for a, b in zip(events, events[1:]))

    def test_ring_drops_oldest_first(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("c", "k", cycle=i)
        assert tracer.dropped == 6
        assert tracer.emitted == 10
        assert len(tracer) == 4
        # The survivors are the newest four, in emission order.
        assert [event.cycle for event in tracer.raw_events()] == [6, 7, 8, 9]

    def test_disabled_emits_nothing(self):
        proc = _machine()
        assert proc.tracer is None  # off by default
        _exercise(proc)
        tracer = Tracer()
        proc.attach_tracer(tracer)
        proc.attach_tracer(None)  # detach again
        _exercise(proc)
        assert len(tracer) == 0
        assert tracer.emitted == 0

    def test_attach_does_not_add_counters(self):
        proc = _machine()
        before = set(proc.registry.snapshot())
        proc.attach_tracer(Tracer())
        _exercise(proc)
        assert set(proc.registry.snapshot()) == before

    def test_clock_binding_stamps_component_events(self):
        proc = _machine()
        tracer = Tracer()
        proc.attach_tracer(tracer)
        proc.advance(1234)
        # A cache emits without cycle knowledge; the bound clock fills it in.
        proc.caches.core_caches[0].l1.lookup(0)
        assert tracer.raw_events()[-1].cycle >= 1234

    def test_clear_resets_tallies(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("c", "k", cycle=i)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.dropped == 0

    def test_group_by_kind(self):
        tracer = Tracer()
        tracer.emit("a", "x", cycle=0)
        tracer.emit("a", "y", cycle=1)
        tracer.emit("a", "x", cycle=2)
        grouped = group_by_kind(tracer.events())
        assert len(grouped[("a", "x")]) == 2
        assert len(grouped[("a", "y")]) == 1


class TestCounterRegistry:
    def test_counter_and_gauge(self):
        registry = CounterRegistry()
        counter = registry.counter("hits")
        counter.value += 3
        counter.incr()
        gauge = registry.gauge("depth", lambda: 7)
        assert registry.snapshot() == {"hits": 4, "depth": 7}
        assert isinstance(counter, Counter)
        assert isinstance(gauge, Gauge)

    def test_counter_is_idempotent_per_name(self):
        registry = CounterRegistry()
        assert registry.counter("hits") is registry.counter("hits")

    def test_dotted_mounts_flatten(self):
        child = CounterRegistry()
        child.counter("hits").value = 2
        root = CounterRegistry()
        root.mount("core0.l1", child)
        assert root.snapshot() == {"core0.l1.hits": 2}
        assert root.get("core0.l1.hits") == 2
        assert "core0.l1.hits" in root
        assert "core0.l1.nope" not in root

    def test_name_collision_rejected(self):
        registry = CounterRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")
        with pytest.raises(ValueError):
            registry.mount("hits", CounterRegistry())

    def test_remount_same_prefix_rejected(self):
        root = CounterRegistry()
        root.mount("memctrl", CounterRegistry())
        with pytest.raises(ValueError):
            root.mount("memctrl", CounterRegistry())

    def test_mount_prefix_colliding_with_counter_rejected(self):
        root = CounterRegistry()
        root.counter("hits")
        root.gauge("depth")
        # Both the leaf segment and an intermediate segment of a dotted
        # prefix must reject counter/gauge name collisions.
        with pytest.raises(ValueError):
            root.mount("depth", CounterRegistry())
        with pytest.raises(ValueError):
            root.mount("hits.l1", CounterRegistry())

    def test_mount_must_not_graft_into_foreign_child(self):
        # Regression: a dotted mount used to recurse silently into a child
        # that a *component* had mounted as its own registry, rewiring that
        # component's tree from the outside.
        component = CounterRegistry()
        component.counter("hits").value = 5
        root = CounterRegistry()
        root.mount("l1", component)
        with pytest.raises(ValueError):
            root.mount("l1.extra", CounterRegistry())
        # The component registry is untouched by the failed mount.
        assert component.snapshot() == {"hits": 5}
        assert root.snapshot() == {"l1.hits": 5}

    def test_mount_may_reuse_its_own_intermediates(self):
        # core0 is created by the first dotted mount; the second mount may
        # recurse into it (this is how the processor mounts core0.l1/l2).
        root = CounterRegistry()
        root.mount("core0.l1", CounterRegistry())
        root.mount("core0.l2", CounterRegistry())
        with pytest.raises(ValueError):
            root.mount("core0.l1", CounterRegistry())

    def test_mount_self_rejected(self):
        registry = CounterRegistry()
        with pytest.raises(ValueError):
            registry.mount("loop", registry)

    def test_items_reports_kinds(self):
        child = CounterRegistry()
        child.counter("hits").value = 2
        root = CounterRegistry()
        root.counter("reads").value = 9
        root.gauge("depth", lambda: 3)
        root.mount("l1", child)
        assert sorted(root.items()) == [
            ("depth", "gauge", 3),
            ("l1.hits", "counter", 2),
            ("reads", "counter", 9),
        ]

    def test_machine_registry_mirrors_legacy_attributes(self):
        proc = _machine()
        _exercise(proc)
        snapshot = proc.registry.snapshot()
        assert snapshot["meta_cache.hits"] == proc.mee.meta_cache.hits
        assert snapshot["meta_cache.misses"] == proc.mee.meta_cache.misses
        assert snapshot["dram.reads"] == proc.memctrl.dram.reads
        assert snapshot["memctrl.reads_serviced"] == proc.memctrl.reads_serviced
        assert snapshot["core0.l1.hits"] == proc.caches.core_caches[0].l1.hits

    def test_legacy_setters_still_work(self):
        proc = _machine()
        _exercise(proc)
        proc.mee.meta_cache.hits = 0
        proc.memctrl.drains = 0
        assert proc.registry.snapshot()["meta_cache.hits"] == 0
        assert proc.registry.snapshot()["memctrl.drains"] == 0


class TestExport:
    def _sample_events(self) -> list[TraceEvent]:
        proc = _machine()
        tracer = Tracer()
        proc.attach_tracer(tracer)
        _exercise(proc, blocks=8)
        return tracer.events()

    def test_jsonl_round_trip(self, tmp_path):
        events = self._sample_events()
        path = tmp_path / "trace.jsonl"
        written = write_jsonl(events, path)
        assert written == len(events)
        assert read_jsonl(path) == events

    def test_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycle": 1, "component": "a", "kind": "k"}\nnot json\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_chrome_trace_structure(self, tmp_path):
        events = self._sample_events()
        doc = to_chrome_trace(events)
        records = doc["traceEvents"]
        metadata = [r for r in records if r["ph"] == "M"]
        slices = [r for r in records if r["ph"] == "X"]
        instants = [r for r in records if r["ph"] == "i"]
        assert metadata and (slices or instants)
        assert len(records) == len(metadata) + len(slices) + len(instants)
        for record in slices:
            assert record["dur"] >= 0
        path = tmp_path / "trace.json"
        write_chrome_trace(events, path)
        assert json.loads(path.read_text())["traceEvents"]
