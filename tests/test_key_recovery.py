"""Tests for end-to-end RSA key recovery from mbedTLS traces."""

import pytest

from repro.config import MIB, SecureProcessorConfig
from repro.victims.mbedtls import (
    KeyLoadVictim,
    SearchExploded,
    attribute_trace,
    factor_from_phi,
    generate_rsa_key,
    recover_secret_from_operations,
    recover_secret_from_trace,
)


class _FakeProcess:
    def alloc(self, pages=1):
        return 0x1000

    def paddr(self, vaddr):
        return vaddr

    def read(self, vaddr):
        pass

    def write(self, vaddr, data=None):
        pass


def run_victim(e, phi):
    victim = KeyLoadVictim(_FakeProcess())
    generator = victim.mod_inverse(e, phi)
    steps = []
    while True:
        try:
            steps.append(next(generator))
        except StopIteration:
            return steps


class TestAttributeTrace:
    def test_perfect_observations_reconstruct_details(self):
        e, phi, _ = generate_rsa_key(bits=64, seed=2)
        steps = run_victim(e, phi)
        operations = [s.operation for s in steps]
        operands = [
            s.detail.split("_")[1] if s.operation == "shift" else None
            for s in steps
        ]
        details = attribute_trace(operations, operands)
        assert details == [s.detail for s in steps]

    def test_final_sub_is_sub_u(self):
        details = attribute_trace(["shift", "sub"], ["v", None])
        assert details == ["shift_v", "sub_u"]

    def test_sub_inherits_following_run(self):
        details = attribute_trace(
            ["shift", "sub", "shift", "shift"], ["v", None, "u", "u"]
        )
        assert details == ["shift_v", "sub_u", "shift_u", "shift_u"]

    def test_missing_operand_rejected(self):
        with pytest.raises(ValueError):
            attribute_trace(["shift"], [None])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            attribute_trace(["shift"], [])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            attribute_trace(["jump"], ["u"])


class TestFactorCheck:
    def test_accepts_true_phi(self):
        e, phi, n = generate_rsa_key(bits=64, seed=3)
        factors = factor_from_phi(n, phi)
        assert factors is not None
        p, q = factors
        assert p * q == n
        assert (p - 1) * (q - 1) == phi

    def test_rejects_wrong_phi(self):
        _, phi, n = generate_rsa_key(bits=64, seed=3)
        assert factor_from_phi(n, phi + 2) is None
        assert factor_from_phi(n, phi - 2) is None

    def test_rejects_negative_discriminant(self):
        assert factor_from_phi(15, 15) is None


class TestFlatStreamSearch:
    def test_recovers_small_secrets_or_explodes_honestly(self):
        hits = 0
        for seed in range(6):
            e, phi, n = generate_rsa_key(bits=24, seed=seed)
            operations = [s.operation for s in run_victim(e, phi)]
            try:
                candidates = recover_secret_from_operations(
                    operations, e, modulus=n, max_branches=100_000
                )
            except SearchExploded:
                continue
            if candidates == [phi]:
                hits += 1
        # The flat stream (no operand labels) is genuinely hard; the
        # search must either succeed exactly or fail loudly — never return
        # a wrong unique answer.
        assert hits >= 1

    def test_never_returns_wrong_unique_answer(self):
        for seed in range(4):
            e, phi, n = generate_rsa_key(bits=24, seed=seed)
            operations = [s.operation for s in run_victim(e, phi)]
            try:
                candidates = recover_secret_from_operations(
                    operations, e, modulus=n, max_branches=50_000
                )
            except SearchExploded:
                continue
            if len(candidates) == 1:
                assert candidates[0] == phi


class TestEndToEnd:
    def test_noiseless_single_run_recovery(self):
        from repro.analysis.mbedtls_attack import run_mbedtls_attack

        config = SecureProcessorConfig.sgx_default(
            epc_size=64 * MIB, functional_crypto=False
        )
        outcome = run_mbedtls_attack(
            secret_bits=48, config=config, recover=True, max_runs=2
        )
        assert outcome.recovery_correct
        assert outcome.factors_verified
        assert outcome.runs_used == 1

    @pytest.mark.slow
    def test_noisy_recovery_with_majority_voting(self):
        from repro.analysis.mbedtls_attack import run_mbedtls_attack

        config = SecureProcessorConfig.sgx_default(
            epc_size=64 * MIB,
            functional_crypto=False,
            timer_jitter_sigma=60,
        )
        outcome = run_mbedtls_attack(
            secret_bits=48, config=config, recover=True, max_runs=9
        )
        assert outcome.recovery_correct
        assert outcome.runs_used >= 2  # noise forced extra voting rounds


class TestLabeledRecoveryStillGreen:
    def test_trace_recovery_roundtrip(self):
        e, phi, _ = generate_rsa_key(bits=96, seed=11)
        details = [s.detail for s in run_victim(e, phi)]
        assert recover_secret_from_trace(details, e) == phi
