"""Shared pytest configuration: the `slow` marker, campaign-DB isolation."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end experiment"
    )


@pytest.fixture(autouse=True)
def _isolated_campaign_db(tmp_path, monkeypatch):
    """Keep CLI invocations from writing a campaign DB into the repo.

    Subcommands without an ``--out`` directory default their campaign DB
    to the working directory; tests must never leave one behind there.
    """
    monkeypatch.setenv("REPRO_CAMPAIGN_DB", str(tmp_path / "campaign.sqlite"))
    monkeypatch.setenv("REPRO_SYNTH_CORPUS", str(tmp_path / "corpus.sqlite"))
