"""Tests for DRAM timing, the memory controller, and address helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramConfig, MemCtrlConfig
from repro.mem.block import (
    bank_of,
    block_address,
    block_index,
    block_offset,
    page_index,
    page_offset,
)
from repro.mem.dram import DramModel
from repro.mem.memctrl import MemoryController


class TestBlockHelpers:
    def test_block_decomposition(self):
        assert block_address(0x1234) == 0x1200
        assert block_index(0x1234) == 0x48
        assert block_offset(0x1234) == 0x34

    def test_page_decomposition(self):
        assert page_index(0x12345) == 0x12
        assert page_offset(0x12345) == 0x345

    @given(st.integers(min_value=0, max_value=2**40))
    def test_block_roundtrip(self, addr):
        assert block_address(addr) <= addr < block_address(addr) + 64
        assert block_address(addr) == block_index(addr) * 64

    def test_bank_range(self):
        for addr in range(0, 1 << 16, 64):
            assert 0 <= bank_of(addr, 16) < 16

    def test_consecutive_blocks_stripe_banks(self):
        banks = {bank_of(i * 64, 16) for i in range(16)}
        assert len(banks) == 16

    def test_page_aligned_structures_do_not_alias(self):
        # Regions at different page-aligned bases should not all map to the
        # same bank (the XOR fold must break simple modulo aliasing).
        banks = {bank_of(base << 20, 16) for base in range(1, 64)}
        assert len(banks) > 4


class TestDram:
    def test_row_hit_faster_than_miss(self):
        dram = DramModel(DramConfig())
        first = dram.access(0x0, 0)
        # Same bank (block 0 and block 16 both fold to bank 0), same row.
        assert dram.bank_of(0x0) == dram.bank_of(0x400)
        second = dram.access(0x400, first)
        assert second < first  # row now open

    def test_row_conflict_reopens(self):
        config = DramConfig()
        dram = DramModel(config)
        dram.access(0x0, 0)
        far = config.row_size * config.banks  # same bank, different row
        latency = dram.access(far, 1000)
        assert latency == config.row_miss_latency + config.bus_latency

    def test_busy_bank_delays_access(self):
        dram = DramModel(DramConfig())
        dram.occupy_bank(0x1000, 0, 5000)
        latency = dram.access(0x1000, 100)
        assert latency > 4000

    def test_occupy_all_blocks_every_bank(self):
        config = DramConfig(banks=4)
        dram = DramModel(config)
        dram.occupy_all(0, 9999)
        for block in range(4):
            assert dram.access(block * 64, 0) > 9000

    def test_idle_bank_not_delayed(self):
        dram = DramModel(DramConfig())
        dram.occupy_bank(0x0, 0, 5000)
        other = next(
            a for a in range(64, 1 << 16, 64) if dram.bank_of(a) != dram.bank_of(0)
        )
        assert dram.access(other, 0) < 1000

    def test_stats(self):
        dram = DramModel(DramConfig())
        dram.access(0, 0)
        dram.access(64, 0, is_write=True)
        assert dram.reads == 1
        assert dram.writes == 1


class TestMemoryController:
    def make(self, **kwargs):
        return MemoryController(MemCtrlConfig(**kwargs), DramConfig())

    def test_read_latency_positive(self):
        mc = self.make()
        assert mc.read_block(0x1000, 0) > 0
        assert mc.reads_serviced == 1

    def test_write_is_posted(self):
        mc = self.make()
        latency = mc.enqueue_write(0x1000, 0)
        assert latency < 10
        assert mc.pending_writes() == 1
        assert mc.writes_serviced == 0

    def test_write_merging(self):
        mc = self.make()
        mc.enqueue_write(0x1000, 0)
        mc.enqueue_write(0x1000, 10)
        assert mc.pending_writes() == 1
        assert mc.writes_merged == 1

    def test_no_merge_mode_forces_drain(self):
        mc = self.make(write_merge=False)
        mc.enqueue_write(0x1000, 0)
        mc.enqueue_write(0x1000, 10)
        assert mc.writes_serviced == 1

    def test_read_forwarding_from_write_queue(self):
        mc = self.make()
        mc.enqueue_write(0x1000, 0)
        latency = mc.read_block(0x1000, 10)
        assert latency < 30  # forwarded, no DRAM access
        assert mc.reads_serviced == 0

    def test_drain_services_all(self):
        mc = self.make()
        for i in range(10):
            mc.enqueue_write(i * 64, 0)
        end = mc.drain(100)
        assert mc.pending_writes() == 0
        assert mc.writes_serviced == 10
        assert end > 100

    def test_drain_empty_is_noop(self):
        mc = self.make()
        assert mc.drain(100) == 100
        assert mc.drains == 0

    def test_watermark_triggers_drain(self):
        mc = self.make(write_queue_entries=8, drain_watermark=0.5)
        for i in range(6):
            mc.enqueue_write(i * 64, 0)
        assert mc.drains >= 1

    def test_write_sink_invoked_per_serviced_write(self):
        mc = self.make()
        serviced = []
        mc.set_write_sink(lambda addr, now: serviced.append(addr) or 7)
        mc.enqueue_write(0x40, 0)
        mc.enqueue_write(0x80, 0)
        mc.drain(0)
        assert serviced == [0x40, 0x80]

    def test_drain_occupies_banks(self):
        mc = self.make()
        for i in range(16):
            mc.enqueue_write(i * 64, 0)
        mc.drain(0)
        # A read right after the drain burst starts must wait.
        assert mc.read_block(0x0, 1) > 100

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_queue_never_exceeds_capacity(self, blocks):
        mc = self.make(write_queue_entries=16, drain_watermark=0.75)
        for block in blocks:
            mc.enqueue_write(block * 64, 0)
            assert mc.pending_writes() <= 16

    def test_write_pending_for(self):
        mc = self.make()
        mc.enqueue_write(0x1000, 0)
        assert mc.write_pending_for(0x1020)
        assert not mc.write_pending_for(0x2000)
