"""Tests for the MetaLeak attack framework."""

import pytest

from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.attacks import (
    CovertChannelC,
    CovertChannelT,
    MetadataEvictor,
    MetadataMapper,
    MetaLeakC,
    MetaLeakT,
    NoiseProcess,
)
from repro.attacks.calibration import LatencyCalibrator
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def make_env(**overrides):
    overrides.setdefault("protected_size", 128 * MIB)
    proc = SecureProcessor(SecureProcessorConfig.sct_default(**overrides))
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores)
    return proc, alloc


class TestMapper:
    def setup_method(self):
        self.proc, self.alloc = make_env()
        self.mapper = MetadataMapper(self.proc)

    def test_verification_path_lengths(self):
        path = self.mapper.verification_path(0x5000)
        assert len(path) == 1 + len(self.proc.layout.levels)

    def test_reverse_mapping_hits_requested_set(self):
        for set_index in (0, 17, 511):
            blocks = self.mapper.data_blocks_with_counter_in_set(set_index, 10)
            for block in blocks:
                counter = self.mapper.counter_addr(block)
                assert self.mapper.meta_set_of(counter) == set_index

    def test_reverse_mapping_respects_exclusions(self):
        protect = set(range(0, 4096))
        blocks = self.mapper.data_blocks_with_counter_in_set(
            0, 5, exclude_pages=protect
        )
        for block in blocks:
            assert block // PAGE_SIZE not in protect

    def test_reverse_mapping_exhaustion(self):
        with pytest.raises(ValueError):
            self.mapper.data_blocks_with_counter_in_set(0, 10**6)


class TestEvictor:
    def setup_method(self):
        self.proc, self.alloc = make_env()

    def test_evicts_target_node(self):
        evictor = MetadataEvictor(self.proc, self.alloc, core=1)
        victim = 0x40000
        self.proc.read(victim)  # loads the whole path
        node = self.proc.layout.node_addr_for_data(victim, 0)
        assert evictor.is_cached(node)
        evictor.evict((node,))
        assert not evictor.is_cached(node)

    def test_eviction_survives_repeated_rounds(self):
        evictor = MetadataEvictor(self.proc, self.alloc, core=1)
        victim = 0x40000
        node = self.proc.layout.node_addr_for_data(victim, 0)
        counter = self.proc.layout.counter_block_addr(victim)
        for _ in range(5):
            self.proc.flush(victim)
            self.proc.read(victim)  # counter evicted too -> walk reloads node
            assert evictor.is_cached(node)
            evictor.evict((node, counter))
            assert not evictor.is_cached(node)

    def test_multiple_targets_one_call(self):
        evictor = MetadataEvictor(self.proc, self.alloc, core=1)
        victim = 0x40000
        self.proc.read(victim)
        node = self.proc.layout.node_addr_for_data(victim, 0)
        counter = self.proc.layout.counter_block_addr(victim)
        evictor.evict((node, counter))
        assert not evictor.is_cached(node)
        assert not evictor.is_cached(counter)

    def test_protected_pages_never_touched(self):
        protect = set(range(16, 48))
        evictor = MetadataEvictor(
            self.proc, self.alloc, core=1, protect_pages=protect
        )
        node = self.proc.layout.node_addr_for_data(16 * PAGE_SIZE, 0)
        evictor.evict((node,))
        for set_blocks in evictor._eviction_sets.values():
            for block in set_blocks:
                assert block // PAGE_SIZE not in protect


class TestMetaLeakT:
    def setup_method(self):
        self.proc, self.alloc = make_env()
        self.victim_frame = self.alloc.alloc_specific(100)
        self.victim_addr = self.victim_frame * PAGE_SIZE
        self.attack = MetaLeakT(self.proc, self.alloc, core=1)

    def _victim_access(self):
        self.proc.flush(self.victim_addr)
        self.proc.read(self.victim_addr, core=0)

    def test_probe_page_shares_leaf_node(self):
        frame = self.attack.claim_probe_page(self.victim_frame, 0)
        layout = self.proc.layout
        assert layout.node_addr_for_data(
            frame * PAGE_SIZE, 0
        ) == layout.node_addr_for_data(self.victim_addr, 0)

    def test_detects_access_and_absence(self):
        monitor = self.attack.monitor_for_page(self.victim_frame, level=0)
        outcomes = []
        for trial in range(16):
            monitor.m_evict()
            accessed = trial % 2 == 0
            if accessed:
                self._victim_access()
            _, seen = monitor.m_reload()
            outcomes.append(seen == accessed)
        assert all(outcomes)

    def test_monitoring_at_level1(self):
        monitor = self.attack.monitor_for_page(self.victim_frame, level=1)
        monitor.m_evict()
        self._victim_access()
        _, seen = monitor.m_reload()
        assert seen
        monitor.m_evict()
        _, seen = monitor.m_reload()
        assert not seen

    def test_no_data_sharing_between_attacker_and_victim(self):
        monitor = self.attack.monitor_for_page(self.victim_frame, level=0)
        assert monitor.probe_block // PAGE_SIZE != self.victim_frame

    def test_mismatched_probe_rejected(self):
        far_frame = self.alloc.alloc_specific(5000)
        with pytest.raises(ValueError):
            self.attack.monitor_for_page(
                self.victim_frame, level=0, probe_frame=far_frame
            )

    def test_self_calibration_produces_sane_threshold(self):
        monitor = self.attack.monitor_for_page(self.victim_frame, level=0)
        assert 100 < monitor.threshold < 1000

    def test_cross_core_detection(self):
        # Victim on core 0, attacker monitoring from core 3.
        attack = MetaLeakT(self.proc, self.alloc, core=3)
        monitor = attack.monitor_for_page(self.victim_frame, level=0)
        monitor.m_evict()
        self._victim_access()
        _, seen = monitor.m_reload()
        assert seen


class TestMetaLeakC:
    def setup_method(self):
        self.proc, self.alloc = make_env()

    def test_handle_requires_level_ge_1(self):
        attack = MetaLeakC(self.proc, self.alloc)
        with pytest.raises(ValueError):
            attack.handle_for_page(0, level=0)

    def test_bump_advances_true_counter(self):
        attack = MetaLeakC(self.proc, self.alloc)
        handle = attack.handle_for_page(0, level=1)
        before = handle.true_value()
        handle.bump()
        handle.bump()
        assert handle.true_value() == before + 2

    def test_reset_observes_overflow(self):
        attack = MetaLeakC(self.proc, self.alloc)
        handle = attack.handle_for_page(0, level=1)
        spent = handle.reset()
        assert 1 <= spent <= handle.minor_max + 1
        assert handle.true_value() == 1

    def test_preset_reaches_value(self):
        attack = MetaLeakC(self.proc, self.alloc)
        handle = attack.handle_for_page(0, level=1)
        handle.reset()
        handle.preset(100)
        assert handle.true_value() == 100

    def test_detect_single_victim_write(self):
        victim_frame = self.alloc.alloc_specific(3)  # in L0 group 0
        attack = MetaLeakC(self.proc, self.alloc, core=1)
        handle = attack.handle_for_page(victim_frame, level=1)
        handle.arm_for_writes(1)
        # Victim writes once (cleansed write -> reaches the MC).
        self.proc.write_through(victim_frame * PAGE_SIZE, b"v", core=0)
        self.proc.drain_writes()
        attack.collect_victim_updates(victim_frame, level=1)
        extra = handle.count_to_overflow()
        assert extra == 1  # one attacker bump fires the armed counter

    def test_no_victim_write_needs_more_bumps(self):
        victim_frame = self.alloc.alloc_specific(3)
        attack = MetaLeakC(self.proc, self.alloc, core=1)
        handle = attack.handle_for_page(victim_frame, level=1)
        handle.arm_for_writes(1)
        attack.collect_victim_updates(victim_frame, level=1)
        extra = handle.count_to_overflow()
        assert extra == 2

    def test_hash_tree_rejected(self):
        proc = SecureProcessor(
            SecureProcessorConfig.ht_default(protected_size=128 * MIB)
        )
        alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE)
        attack = MetaLeakC(proc, alloc)
        with pytest.raises(ValueError):
            attack.handle_for_page(0, level=1)


class TestCovertChannels:
    def test_t_channel_perfect_when_quiet(self):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 4
        report = channel.transmit(bits)
        assert report.accuracy == 1.0
        assert report.sync_errors == 0

    def test_t_channel_under_noise(self):
        proc, alloc = make_env()
        noise = NoiseProcess(proc, alloc, reads_per_step=4)
        channel = CovertChannelT(proc, alloc, noise=noise)
        bits = [1, 0] * 16
        report = channel.transmit(bits)
        assert report.accuracy >= 0.8

    def test_t_channel_cross_socket(self):
        proc, alloc = make_env(cores=4, sockets=2)
        channel = CovertChannelT(proc, alloc, trojan_core=0, spy_core=2)
        bits = [1, 0, 0, 1] * 4
        report = channel.transmit(bits)
        assert report.accuracy == 1.0

    def test_c_channel_symbols(self):
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        symbols = [0, 1, 64, 126, 50]
        report = channel.transmit(symbols)
        assert report.received == symbols

    def test_c_channel_rejects_out_of_range(self):
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        with pytest.raises(ValueError):
            channel.transmit([127 + 1])

    def test_report_metrics(self):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        report = channel.transmit([1, 0, 1, 0])
        assert 0 < report.bits_per_kilocycle() < 10
        assert report.cycles > 0


class TestCalibrator:
    def test_thresholds_ordered(self):
        proc, alloc = make_env()
        calibrator = LatencyCalibrator(proc, alloc, samples=8)
        counter_threshold = calibrator.counter_hit_threshold()
        tree_threshold = calibrator.tree_hit_threshold()
        overflow_threshold = calibrator.overflow_delay_threshold()
        assert counter_threshold < overflow_threshold
        assert tree_threshold < overflow_threshold

    def test_noise_process_accounting(self):
        proc, alloc = make_env()
        noise = NoiseProcess(proc, alloc, reads_per_step=3, pages=16)
        noise.step()
        noise.step()
        assert noise.reads_issued == 6
        assert noise.steps == 2

    def test_noise_rejects_negative_rate(self):
        proc, alloc = make_env()
        with pytest.raises(ValueError):
            NoiseProcess(proc, alloc, reads_per_step=-1)

    def test_noise_rejects_empty_working_set(self):
        proc, alloc = make_env()
        with pytest.raises(ValueError, match="pages"):
            NoiseProcess(proc, alloc, pages=0)
        with pytest.raises(ValueError, match="pages"):
            NoiseProcess(proc, alloc, pages=-3)

    def test_noise_rejects_out_of_range_core(self):
        proc, alloc = make_env()
        with pytest.raises(ValueError, match="core"):
            NoiseProcess(proc, alloc, core=proc.config.cores)
        with pytest.raises(ValueError, match="core"):
            NoiseProcess(proc, alloc, core=-1)
