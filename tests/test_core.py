"""Tests for ``repro.core``: the component graph and per-access Txn.

Covers the structural invariants the refactor rests on (walk reaches
every component exactly once, attach is idempotent, detach restores the
zero-allocation fast path), the late-created-component regression
(per-domain integrity trees built after an attach still see the tracer
and fault hook), shim-vs-generic equivalence, and the source-scan guard
that keeps instrument threading centralised in ``repro/core``.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.config import SecureProcessorConfig
from repro.core import (
    FAULT_HOOK,
    NULL_TXN,
    TRACER,
    Txn,
    detach,
    slot_of,
    walk,
)
from repro.defenses import assign_domains, isolated_tree_config
from repro.faults.hooks import FaultHook
from repro.perf import CycleAttributor, MetricsSampler
from repro.proc.processor import SecureProcessor
from repro.trace import Tracer


def _machine() -> SecureProcessor:
    return SecureProcessor(
        SecureProcessorConfig.sct_default(functional_crypto=False)
    )


def _workload(proc: SecureProcessor, blocks: int = 16) -> None:
    for i in range(blocks):
        proc.write(i * 64, b"a")
    proc.drain_writes()
    for i in range(blocks):
        proc.read(i * 64)
    proc.flush(0)
    proc.read(0)
    proc.write_through(64, b"b")
    proc.drain_writes()


class _RecordingHook(FaultHook):
    def __init__(self) -> None:
        self.meta_fetches: list[tuple[str, int, int]] = []

    def on_meta_fetch(self, kind: str, level: int, index: int) -> None:
        self.meta_fetches.append((kind, level, index))


# ----------------------------------------------------------------------
# Component-graph invariants
# ----------------------------------------------------------------------


class TestComponentGraph:
    def test_walk_reaches_every_component_exactly_once(self):
        proc = _machine()
        nodes = list(walk(proc))
        assert len(nodes) == len({id(node) for node in nodes})
        names = {node.component_name for node in nodes}
        assert {"proc", "caches", "mee", "memctrl", "dram", "counters",
                "crypto", "tree"} <= names
        # Every cache in the machine is in the graph.
        for caches in proc.caches.core_caches:
            assert caches.l1 in nodes and caches.l2 in nodes
        for l3 in proc.caches.l3s:
            assert l3 in nodes
        assert proc.mee.meta_cache in nodes
        assert proc.memctrl.dram in nodes

    def test_attach_is_idempotent(self):
        proc = _machine()
        tracer = Tracer()
        first = proc.attach(tracer)
        second = proc.attach(tracer)
        assert first == second > 0
        assert proc.tracer is tracer
        assert proc.mee.meta_cache.tracer is tracer
        assert proc.memctrl.dram.tracer is tracer

    def test_slot_inference_for_all_instruments(self):
        proc = _machine()
        assert slot_of(Tracer()) == "tracer"
        assert slot_of(FaultHook()) == "fault_hook"
        assert slot_of(CycleAttributor()) == "profiler"
        assert slot_of(MetricsSampler(proc.registry)) == "sampler"
        with pytest.raises(ValueError):
            slot_of(object())

    def test_generic_attach_all_four_slots(self):
        proc = _machine()
        tracer, hook = Tracer(), FaultHook()
        profiler = CycleAttributor()
        sampler = MetricsSampler(proc.registry, every=100)
        for instrument in (tracer, hook, profiler, sampler):
            proc.attach(instrument)
        assert proc.tracer is tracer
        assert proc.mee.fault_hook is hook
        assert proc.profiler is profiler
        assert proc.sampler is sampler
        # The sampler took its initial snapshot on attach.
        assert sampler.samples

    def test_detach_restores_null_txn_fast_path(self):
        proc = _machine()
        assert proc._begin("read", 0, 0) is NULL_TXN
        tracer = Tracer()
        proc.attach(tracer)
        txn = proc._begin("read", 0, 0)
        assert txn is not NULL_TXN
        assert not txn.profiling  # tracer alone builds no parts dict
        detach(proc, TRACER)
        assert proc._begin("read", 0, 0) is NULL_TXN
        assert proc.read(0).breakdown is None

    def test_shim_none_detaches_everywhere(self):
        proc = _machine()
        proc.attach_tracer(Tracer())
        proc.attach_profiler(CycleAttributor())
        proc.attach_tracer(None)
        proc.attach_profiler(None)
        for node in walk(proc):
            assert getattr(node, "tracer", None) is None
        assert proc.profiler is None
        assert proc._begin("read", 0, 0) is NULL_TXN

    def test_install_fault_hook_spares_data_caches(self):
        """FaultInjector semantics: the MEE shim reaches the memory side
        only, so data-cache fills never dispatch ``on_cache_fill``."""
        proc = _machine()
        hook = FaultHook()
        proc.mee.install_fault_hook(hook)
        assert proc.mee.fault_hook is hook
        assert proc.memctrl.fault_hook is hook
        assert proc.memctrl.dram.fault_hook is hook
        assert proc.mee.counters.fault_hook is hook
        assert proc.mee.meta_cache.fault_hook is hook
        assert proc.caches.core_caches[0].l1.fault_hook is None
        assert proc.caches.l3s[0].fault_hook is None
        proc.mee.install_fault_hook(None)
        assert proc.mee.fault_hook is None
        assert proc.memctrl.dram.fault_hook is None


# ----------------------------------------------------------------------
# Per-access transactions
# ----------------------------------------------------------------------


class TestTxn:
    def test_null_txn_is_inert(self):
        NULL_TXN.charge("x", 5)
        NULL_TXN.emit("c", "k")
        NULL_TXN.fault("on_meta_fetch", "counter", 0, 0)
        assert NULL_TXN.leg("data.") is NULL_TXN
        assert NULL_TXN.parts is None
        assert not NULL_TXN.recording

    def test_charge_prefixes_and_skips_zero(self):
        txn = Txn("read", profiling=True)
        txn.charge("a", 3)
        txn.charge("a", 2)
        txn.charge("b", 0)
        assert txn.parts == {"a": 5}
        leg = txn.leg("meta.")
        leg.charge("queue", 7)
        assert leg.parts == {"meta.queue": 7}
        txn.absorb(leg)
        assert txn.parts == {"a": 5, "meta.queue": 7}
        other = txn.leg("data.")
        other.charge("service", 4)
        txn.shadow(other)
        assert txn.shadowed == {"data.service": 4}

    def test_not_profiling_builds_no_parts(self):
        txn = Txn("read", tracer=None, profiling=False)
        txn.charge("a", 3)
        assert txn.parts is None
        leg = txn.leg("meta.")
        assert not leg.profiling

    def test_breakdown_conserved_through_txn(self):
        proc = _machine()
        profiler = CycleAttributor()
        proc.attach(profiler)
        _workload(proc)
        profiler.verify()
        result = proc.read(0x5000)
        assert result.breakdown is not None
        assert sum(result.breakdown.values()) == result.latency


# ----------------------------------------------------------------------
# Late-created components (per-domain trees)
# ----------------------------------------------------------------------


class TestLateDomainTrees:
    def test_tree_built_after_attach_inherits_instruments(self):
        proc = SecureProcessor(isolated_tree_config(protected_size=4 << 20))
        tracer = Tracer()
        proc.attach_tracer(tracer)
        hook = _RecordingHook()
        proc.mee.install_fault_hook(hook)
        frame = 3
        assign_domains(proc, {1: [frame]})
        addr = frame * 4096
        proc.write_through(addr, b"x")
        proc.drain_writes()
        tree = proc.mee._domain_trees[1]
        assert tree is not proc.mee.tree
        assert tree.tracer is tracer
        assert tree.fault_hook is hook
        # The new domain's metadata verification reached the fault hook.
        assert hook.meta_fetches
        # Forcing the dirty counter block out exercises the lazy bump on
        # the late-created tree, which must land on the shared tracer.
        tracer.clear()
        proc.mee.flush_metadata_cache(proc.cycle)
        kinds = {e.kind for e in tracer.events() if e.component == "tree"}
        assert kinds & {"bump_leaf", "bump_node"}

    def test_late_tree_without_instruments_stays_detached(self):
        proc = SecureProcessor(isolated_tree_config(protected_size=4 << 20))
        assign_domains(proc, {1: [2]})
        proc.write(2 * 4096, b"x")
        assert proc.mee._domain_trees[1].tracer is None


# ----------------------------------------------------------------------
# Shim-vs-generic equivalence
# ----------------------------------------------------------------------


class TestShimEquivalence:
    def test_shims_and_generic_attach_produce_identical_observations(self):
        proc_shim, proc_generic = _machine(), _machine()
        tracer_shim, tracer_generic = Tracer(), Tracer()
        prof_shim, prof_generic = CycleAttributor(), CycleAttributor()
        proc_shim.attach_tracer(tracer_shim)
        proc_shim.attach_profiler(prof_shim)
        proc_generic.attach(tracer_generic)
        proc_generic.attach(prof_generic)
        _workload(proc_shim)
        _workload(proc_generic)
        assert tracer_shim.events() == tracer_generic.events()
        assert prof_shim.component_totals() == prof_generic.component_totals()
        assert prof_shim.cycles == prof_generic.cycles
        assert prof_shim.accesses == prof_generic.accesses

    def test_fault_hook_shim_matches_generic_attach_at_engine(self):
        from repro.core import attach

        proc_shim, proc_generic = _machine(), _machine()
        hook_shim, hook_generic = _RecordingHook(), _RecordingHook()
        proc_shim.mee.install_fault_hook(hook_shim)
        attach(proc_generic.mee, hook_generic, slot=FAULT_HOOK)
        _workload(proc_shim)
        _workload(proc_generic)
        assert hook_shim.meta_fetches == hook_generic.meta_fetches


# ----------------------------------------------------------------------
# Source-scan guard: no manual instrument threading outside repro/core
# ----------------------------------------------------------------------

_THREADING_GUARD = re.compile(r"\.(tracer|fault_hook)\s*=(?!=)")


def test_no_manual_instrument_threading_outside_core():
    """Instrument slots are assigned only by the component graph.

    The same scan runs in CI; if it trips, route the new wiring through
    ``repro.core.attach``/``adopt`` (or ``Component.init_component``)
    instead of assigning ``.tracer`` / ``.fault_hook`` by hand.
    """
    src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
    core = src / "core"
    offenders: list[str] = []
    for path in sorted(src.rglob("*.py")):
        if core in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if _THREADING_GUARD.search(line):
                offenders.append(
                    f"{path.relative_to(src)}:{lineno}: {line.strip()}"
                )
    assert not offenders, (
        "manual instrument threading outside repro/core:\n"
        + "\n".join(offenders)
    )
