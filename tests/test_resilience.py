"""Tests for the noise-resilient pipeline: adaptive calibration, ECC-framed
channels, graceful degradation, and watchdog cycle budgets."""

import pytest

from repro.analysis.kvstore_attack import run_kvstore_attack
from repro.attacks import (
    AdaptiveThresholdTracker,
    BitSymbolAdapter,
    CovertChannelC,
    CovertChannelT,
    EvictionSetSearch,
    MetaLeakT,
    ReliableChannel,
    score_calibration,
)
from repro.attacks.calibration import LatencyCalibrator
from repro.attacks.noise import co_located_noise
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor
from repro.utils.rng import derive_rng
from repro.utils.watchdog import BudgetExceeded, CycleBudget, ensure_budget


def make_env(**overrides):
    overrides.setdefault("protected_size", 128 * MIB)
    overrides.setdefault("functional_crypto", False)
    proc = SecureProcessor(SecureProcessorConfig.sct_default(**overrides))
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores)
    return proc, alloc


def payload_bits(count, seed=21):
    rng = derive_rng(seed, "resilience-bits")
    return [rng.randint(0, 1) for _ in range(count)]


class TestCalibrationScoring:
    def test_separable_bands_score_high(self):
        cal = score_calibration([100.0] * 8, [300.0] * 8)
        assert cal.ok
        assert cal.quality > 0.9
        assert 100.0 < cal.threshold < 300.0

    def test_overlapping_bands_score_low(self):
        fast = [100.0, 180.0, 120.0, 190.0]
        slow = [150.0, 210.0, 140.0, 230.0]
        cal = score_calibration(fast, slow)
        assert cal.quality < score_calibration([100.0] * 4, [300.0] * 4).quality

    def test_inverted_bands_are_rejected(self):
        cal = score_calibration([300.0] * 8, [100.0] * 8)
        assert cal.quality == 0.0
        assert not cal.ok

    def test_misplaced_threshold_is_rejected(self):
        cal = score_calibration([100.0] * 8, [300.0] * 8, threshold=350.0)
        assert cal.quality == 0.0

    def test_confidence_scales_with_margin(self):
        cal = score_calibration([100.0] * 8, [300.0] * 8)
        on_threshold = cal.confidence(cal.threshold)
        far_away = cal.confidence(cal.threshold + cal.separation)
        assert on_threshold == 0.0
        assert far_away > 0.5


class TestAdaptiveTracker:
    def _calibration(self):
        return score_calibration([100.0] * 16, [300.0] * 16)

    def test_no_drift_on_stable_observations(self):
        tracker = AdaptiveThresholdTracker(self._calibration(), check_every=4)
        drifted = False
        for _ in range(20):
            drifted |= tracker.observe(102.0, 200.0)
            drifted |= tracker.observe(298.0, 200.0)
        assert not drifted

    def test_detects_band_drift(self):
        tracker = AdaptiveThresholdTracker(
            self._calibration(), window=16, min_window=8, check_every=4
        )
        # The machine warmed up: both bands moved far above the threshold.
        drifted = False
        for _ in range(16):
            drifted |= tracker.observe(500.0, 200.0)
            drifted |= tracker.observe(700.0, 200.0)
        assert drifted

    def test_uniform_window_fires_neither_test(self):
        tracker = AdaptiveThresholdTracker(
            self._calibration(), window=16, min_window=8, check_every=4
        )
        assert not any(tracker.observe(102.0, 200.0) for _ in range(32))


class TestValidation:
    def test_calibrator_rejects_nonpositive_samples(self):
        proc, alloc = make_env()
        with pytest.raises(ValueError, match="samples"):
            LatencyCalibrator(proc, alloc, samples=0)

    def test_monitor_rejects_nonpositive_rounds(self):
        proc, alloc = make_env()
        attack = MetaLeakT(proc, alloc, core=1)
        with pytest.raises(ValueError, match="positive"):
            attack.monitor_for_page(64, calibration_samples=0)

    def test_verify_rejects_nonpositive_trials(self):
        proc, alloc = make_env()
        target = alloc.alloc_specific(96) * PAGE_SIZE
        search = EvictionSetSearch(proc, alloc, target_block=target, core=1)
        with pytest.raises(ValueError, match="trials"):
            search.verify([128], trials=0)

    def test_covert_transmit_validates_votes(self):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        with pytest.raises(ValueError, match="votes"):
            channel.transmit([1, 0], votes=0)


class TestCycleBudget:
    def test_budget_expires_and_raises(self):
        proc, _ = make_env()
        budget = CycleBudget(proc, 1000)
        assert not budget.expired
        proc.read(64 * PAGE_SIZE)
        while not budget.expired:
            proc.read(64 * PAGE_SIZE + (proc.cycle % 32) * 64)
        with pytest.raises(BudgetExceeded):
            budget.check("test loop")

    def test_ensure_budget_normalises(self):
        proc, _ = make_env()
        assert ensure_budget(proc, None).unbounded
        assert ensure_budget(proc, 500).remaining <= 500
        budget = CycleBudget(proc, 500)
        assert ensure_budget(proc, budget) is budget

    def test_transmit_respects_budget_without_livelock(self):
        """A tiny budget truncates the transmission: partial result, no hang."""
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        start = proc.cycle
        max_cycles = 200_000
        report = channel.transmit(payload_bits(64), budget=max_cycles)
        # The abort must come at the first bit boundary past the budget:
        # one round's worth of slack, not a livelock's worth.
        assert proc.cycle - start < max_cycles + 100_000
        assert report.truncated
        assert report.degraded
        assert "budget" in report.degraded_reasons
        assert len(report.received) < 64

    def test_kvstore_budget_degrades_not_raises(self):
        result = run_kvstore_attack(buckets=3, budget=1_000_000)
        assert result.degraded
        assert "budget" in result.degraded_reasons
        assert result.truncated


class TestMiscalibratedAttack:
    def test_bogus_threshold_degrades_structurally(self):
        """A deliberately mis-calibrated monitor pair must yield a structured
        low-confidence/degraded report — no exception, no livelock."""
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        # Sabotage both monitors: thresholds far below every real latency,
        # so every reload reads as a miss and quality collapses.
        for monitor in (channel.tx_monitor, channel.bd_monitor):
            monitor.calibration = score_calibration(
                [10.0] * 8, [20.0] * 8, threshold=1.0
            )
            monitor.threshold = 1.0
        start = proc.cycle
        report = channel.transmit(payload_bits(24), budget=80_000_000)
        assert proc.cycle - start < 81_000_000  # bounded, no livelock
        assert report.degraded
        assert "degenerate-calibration" in report.degraded_reasons
        assert report.mean_confidence < 0.5
        assert len(report.received) == len(report.sent)  # structured result

    def test_recalibration_rejects_degenerate_sample(self):
        proc, alloc = make_env()
        attack = MetaLeakT(proc, alloc, core=1)
        monitor = attack.monitor_for_page(64)
        good = monitor.calibration
        assert good.ok
        # Re-calibrate normally: the fresh calibration is adopted.
        monitor.calibrate(samples=4)
        assert monitor.calibration.ok
        assert monitor.stats.recalibrations >= 1


class TestNoiseSweepWithEcc:
    """The ISSUE's acceptance sweep: raw BER grows with noise intensity
    while the ECC-framed channel keeps delivering the payload."""

    INTENSITIES = (0, 2, 4)

    def _run(self, reads_per_step, payload):
        proc, alloc = make_env()
        channel = CovertChannelT(proc, alloc)
        if reads_per_step:
            channel.noise = co_located_noise(
                channel, alloc, reads_per_step=reads_per_step, conflict_rate=0.08
            )
        return ReliableChannel(channel).send(payload, max_retries=8, votes=3)

    def test_raw_ber_grows_but_ecc_payload_holds(self):
        payload = payload_bits(32)
        bers = []
        for intensity in self.INTENSITIES:
            framed = self._run(intensity, payload)
            bers.append(framed.raw_ber)
            # ECC acceptance gate, at the noisiest setting too: >= 99%.
            assert framed.payload_accuracy >= 0.99, (
                f"ECC payload accuracy {framed.payload_accuracy} at "
                f"{intensity} reads/step"
            )
            assert framed.delivered
        # Raw wire BER must measurably degrade with intensity:
        # monotonically-ish — the noisiest point is the worst, the clean
        # point is error-free.
        assert bers[0] == 0.0
        assert bers[-1] > 0.01
        assert bers[-1] == max(bers)

    def test_framed_c_channel_delivers(self):
        proc, alloc = make_env()
        channel = CovertChannelC(proc, alloc)
        framed = ReliableChannel(BitSymbolAdapter(channel)).send(
            payload_bits(16), max_retries=2
        )
        assert framed.payload_accuracy == 1.0
        assert framed.delivered


class TestKvstoreRecovery:
    def test_clean_run_recovers_buckets_with_confidence(self):
        result = run_kvstore_attack(buckets=3)
        assert result.bucket_accuracy == 1.0
        assert result.confidences
        assert all(c == 1.0 for c in result.confidences)
        assert not result.degraded
        assert result.puts_observed == result.puts_true
