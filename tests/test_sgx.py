"""Tests for the SGX machine model: enclaves, SIT, SGX-Step."""

import pytest

from repro.config import MIB, SecureProcessorConfig
from repro.sgx import SgxMachine, SgxStep


@pytest.fixture()
def machine():
    return SgxMachine(SecureProcessorConfig.sgx_default(epc_size=32 * MIB))


class TestSgxMachine:
    def test_preset_is_sit(self, machine):
        assert machine.config.tree.kind.value == "SIT"
        assert [g.arity for g in machine.proc.layout.levels] == [8, 8, 8]

    def test_enclave_roundtrip(self, machine):
        enclave = machine.create_enclave()
        base = enclave.alloc()
        enclave.write(base, b"enclave secret")
        assert enclave.read(base).data[:14] == b"enclave secret"

    def test_enclave_accesses_are_cleansed(self, machine):
        enclave = machine.create_enclave()
        base = enclave.alloc()
        enclave.read(base)
        assert not enclave.read(base).path.is_cache_hit

    def test_os_controlled_frame_placement(self, machine):
        enclave = machine.create_enclave()
        vaddr = enclave.load_page_at_frame(100)
        assert enclave.frame_of_vaddr(vaddr) == 100

    def test_sharing_sets_match_section8b(self, machine):
        assert len(machine.pages_sharing_tree_node(20, 0)) == 1
        assert len(machine.pages_sharing_tree_node(20, 1)) == 8
        assert len(machine.pages_sharing_tree_node(20, 2)) == 64

    def test_colocation_through_placement(self, machine):
        """Attacker and victim pages end up under one L1 node block."""
        victim = machine.create_enclave(name="victim")
        attacker = machine.create_enclave(name="attacker", core=1)
        victim_vaddr = victim.load_page_at_frame(40)
        group = machine.pages_sharing_tree_node(40, 1)
        attacker_vaddr = attacker.load_page_at_frame(group.start + 1)
        layout = machine.proc.layout
        assert layout.node_addr_for_data(victim.paddr(victim_vaddr), 1) == (
            layout.node_addr_for_data(attacker.paddr(attacker_vaddr), 1)
        )

    def test_sgx_latency_profile_wider_than_sct(self, machine):
        """Figure 7: the SIT walk is serial, stretching the range."""
        enclave = machine.create_enclave()
        base = enclave.alloc()
        deep = enclave.read(base).latency  # all levels missed
        machine.proc.quiesce()
        shallow = enclave.read(base).latency  # metadata now cached
        assert deep > shallow + 250


class TestSgxStep:
    def victim(self, n):
        for i in range(n):
            yield i
        return "done"

    def test_steps_and_payloads(self):
        stepper = SgxStep()
        stepper.run(self.victim(5))
        assert stepper.trace.steps == 5
        assert stepper.trace.payloads == [0, 1, 2, 3, 4]
        assert stepper.trace.interrupts == 5

    def test_probe_fires_per_interval(self):
        fired = []
        stepper = SgxStep(interval=2)
        stepper.run(self.victim(6), probe=lambda step, payload: fired.append(step))
        assert fired == [2, 4, 6]
        assert stepper.trace.interrupts == 3

    def test_before_step_hook(self):
        order = []
        stepper = SgxStep()
        stepper.run(
            self.victim(2),
            probe=lambda s, p: order.append(("probe", s)),
            before_step=lambda s, p: order.append(("pre", s)),
        )
        # A trailing before_step fires before discovering the victim is done
        # (the stepper cannot peek a generator) — harmless in practice.
        assert order == [
            ("pre", 0),
            ("probe", 1),
            ("pre", 1),
            ("probe", 2),
            ("pre", 2),
        ]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SgxStep(interval=0)

    def test_plain_iterable_supported(self):
        stepper = SgxStep()
        stepper.run([10, 20, 30])
        assert stepper.trace.payloads == [10, 20, 30]
