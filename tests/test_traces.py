"""Tests for the latency-trace analysis utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traces import (
    Band,
    classify_by_threshold,
    describe_trace,
    detect_bands,
    majority_window_decode,
    run_lengths,
    sparkline,
)


class TestBands:
    def test_single_band(self):
        bands = detect_bands([100, 105, 110])
        assert len(bands) == 1
        assert bands[0].count == 3

    def test_two_bands(self):
        bands = detect_bands([100, 102, 500, 505, 501])
        assert len(bands) == 2
        assert bands[0].count == 2
        assert bands[1].count == 3
        assert 100 in bands[0]
        assert 500 in bands[1]

    def test_band_center(self):
        band = Band(low=100, high=200, count=5)
        assert band.center == 150

    def test_gap_parameter(self):
        values = [100, 150, 200]
        assert len(detect_bands(values, gap=40)) == 3
        assert len(detect_bands(values, gap=60)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_bands([])

    @pytest.mark.parametrize("gap", [0.0, -5.0, float("nan"), float("inf")])
    def test_invalid_gap_rejected(self, gap):
        with pytest.raises(ValueError, match="gap"):
            detect_bands([100, 200, 300], gap=gap)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_latencies_rejected(self, bad):
        with pytest.raises(ValueError, match="NaN or infinite"):
            detect_bands([100.0, bad, 300.0])

    @given(st.lists(st.floats(min_value=0, max_value=10000), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_counts_partition_sample(self, values):
        bands = detect_bands(values)
        assert sum(band.count for band in bands) == len(values)
        for left, right in zip(bands, bands[1:]):
            assert left.high < right.low


class TestClassification:
    def test_explicit_threshold(self):
        bits, threshold = classify_by_threshold([100, 500, 100], threshold=300)
        assert bits == [1, 0, 1]
        assert threshold == 300

    def test_auto_threshold(self):
        trace = [100] * 10 + [500] * 10
        bits, threshold = classify_by_threshold(trace)
        assert 100 < threshold < 500
        assert sum(bits) == 10

    def test_run_lengths(self):
        assert run_lengths([1, 1, 0, 0, 0, 1]) == [(1, 2), (0, 3), (1, 1)]
        assert run_lengths([]) == []

    def test_majority_window(self):
        bits = [1, 1, 0, 0, 0, 0, 1, 0, 1]
        assert majority_window_decode(bits, 3) == [1, 0, 1]

    def test_majority_window_validates(self):
        with pytest.raises(ValueError):
            majority_window_decode([1], 0)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=64))
    @settings(max_examples=40)
    def test_window_decode_length(self, bits):
        decoded = majority_window_decode(bits, 2)
        assert len(decoded) == len(bits) // 2


class TestSparkline:
    def test_renders_levels(self):
        line = sparkline([0, 100])
        assert line[0] != line[1]

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsampling(self):
        assert len(sparkline(list(range(1000)), width=32)) == 32

    def test_empty(self):
        assert sparkline([]) == ""

    def test_describe(self):
        text = describe_trace([100, 200, 300])
        assert "med=" in text
