"""Tests for the ASCII visualisation helpers."""

import pytest

from repro.analysis.report import FigureResult
from repro.analysis.visualize import (
    bar_chart,
    figure_bar_chart,
    grouped_histogram,
    histogram,
    to_csv,
)


class TestHistogram:
    def test_bins_cover_sample(self):
        text = histogram([1, 2, 3, 100], bins=4, label="test")
        assert "test" in text
        assert text.count("\n") == 4  # header + 4 bins

    def test_counts_sum(self):
        text = histogram(list(range(100)), bins=10)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[1:]]
        assert sum(counts) == 100

    def test_degenerate(self):
        assert "all 3 samples" in histogram([5, 5, 5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])


class TestGroupedHistogram:
    def test_band_separation_visible(self):
        text = grouped_histogram(
            {"fast": [100, 110], "slow": [500, 510]}, width=20
        )
        lines = text.splitlines()
        assert len(lines) == 3
        fast_pos = lines[1].index("█")
        slow_pos = lines[2].index("█")
        assert fast_pos < slow_pos

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_histogram({})


class TestBarChart:
    def test_scaling(self):
        text = bar_chart([("a", 1.0), ("b", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_values(self):
        text = bar_chart([("a", 0.0)])
        assert "a" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])


class TestFigureExport:
    def _result(self):
        result = FigureResult(figure="Fig X", title="demo")
        result.add("row1", 0.5, 0.6, "acc")
        result.add("row2", "n/a", None)
        return result

    def test_figure_bar_chart_filters_numeric(self):
        text = figure_bar_chart(self._result())
        assert "row1" in text
        assert "row2" not in text

    def test_csv_roundtrip(self):
        csv_text = to_csv(self._result())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "series,measured,paper,unit"
        assert len(lines) == 3
        assert '"row1",0.5,"0.6","acc"' in csv_text
