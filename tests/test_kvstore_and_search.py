"""Tests for the persistent KV-store victim and eviction-set search."""

import pytest

from repro.attacks.search import EvictionSetSearch
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator, Process
from repro.proc import SecureProcessor
from repro.victims.kvstore import PersistentKvStore


def make_env(size=128 * MIB):
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(
            protected_size=size, functional_crypto=False
        )
    )
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    return proc, alloc


class TestKvStore:
    def setup_method(self):
        self.proc, self.alloc = make_env()
        self.process = Process(self.proc, self.alloc, cleanse=True)
        self.store = PersistentKvStore(self.process, buckets=4)

    def _run(self, generator):
        return list(generator)

    def test_put_get_roundtrip(self):
        self._run(self.store.put("k", b"value"))
        assert self.store.get("k") == b"value"
        assert len(self.store) == 1

    def test_get_missing(self):
        assert self.store.get("absent") is None

    def test_put_emits_log_then_bucket(self):
        steps = self._run(self.store.put("k", b"v"))
        assert [s.operation for s in steps] == ["log", "bucket"]
        assert steps[1].bucket == self.store.bucket_of("k")

    def test_bucket_hash_stable(self):
        assert self.store.bucket_of("alice") == self.store.bucket_of("alice")
        assert 0 <= self.store.bucket_of("bob") < 4

    def test_bucket_pages_distinct(self):
        frames = {self.store.bucket_frame(b) for b in range(4)}
        frames.add(self.store.log_frame)
        assert len(frames) == 5

    def test_put_all(self):
        steps = self._run(self.store.put_all({"a": b"1", "b": b"2"}))
        assert len(steps) == 4
        assert len(self.store) == 2

    def test_writes_reach_memory_controller(self):
        before = self.proc.mee.stats.writes_serviced
        self._run(self.store.put("k", b"v"))
        self.proc.drain_writes()
        assert self.proc.mee.stats.writes_serviced > before

    def test_bucket_count_validation(self):
        with pytest.raises(ValueError):
            PersistentKvStore(self.process, buckets=0)


class TestEvictionSetSearch:
    def test_blind_search_finds_true_eviction_set(self):
        proc, alloc = make_env()
        target_frame = alloc.alloc_specific(1000)
        target = target_frame * PAGE_SIZE
        pool = [alloc.alloc_specific(f) for f in range(2000, 7000)]
        search = EvictionSetSearch(proc, alloc, target_block=target, core=1)
        minimal = search.find_minimal_set(pool)
        # Must be a reliable, small set...
        assert len(minimal) <= 16
        assert search.verify(minimal, trials=3) == 1.0
        # ...and every member must genuinely alias the leaf's cache set.
        leaf = proc.layout.node_addr_for_data(target, 0)
        target_set = proc.metadata_cache.set_index_of(leaf)
        for frame in minimal:
            addr = frame * PAGE_SIZE
            path = [proc.layout.counter_block_addr(addr)] + [
                proc.layout.node_addr_for_data(addr, level) for level in range(6)
            ]
            assert any(
                proc.metadata_cache.set_index_of(meta) == target_set
                for meta in path
            )

    def test_insufficient_pool_rejected(self):
        proc, alloc = make_env()
        target = alloc.alloc_specific(1000) * PAGE_SIZE
        pool = [alloc.alloc_specific(f) for f in range(2000, 2050)]
        search = EvictionSetSearch(proc, alloc, target_block=target, core=1)
        with pytest.raises(ValueError):
            search.find_minimal_set(pool)

    def test_calibration_produces_usable_threshold(self):
        proc, alloc = make_env()
        target = alloc.alloc_specific(500) * PAGE_SIZE
        search = EvictionSetSearch(proc, alloc, target_block=target, core=1)
        assert 100 < search.threshold < 2000
