"""Tests for encryption-counter schemes and Algorithm-1 overflow handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CounterConfig,
    CounterScheme,
    MIB,
    SecureProcessorConfig,
)
from repro.secmem.counters import EncryptionCounterStore
from repro.secmem.layout import MetadataLayout


def make_store(scheme, **counter_kwargs):
    counters = CounterConfig(scheme=scheme, **counter_kwargs)
    config = SecureProcessorConfig.sct_default(
        protected_size=16 * MIB
    ).with_overrides(counters=counters)
    layout = MetadataLayout(config)
    return EncryptionCounterStore(counters, layout)


class TestSplitCounters:
    def test_increment_advances_minor(self):
        store = make_store(CounterScheme.SPLIT)
        event = store.increment(5)
        assert not event.overflowed
        major, minors = store.split_state(0)
        assert major == 0
        assert minors[5] == 1

    def test_fused_counter_composition(self):
        store = make_store(CounterScheme.SPLIT)
        assert store.fused(major=1, minor=0) == 128
        assert store.fused(major=1, minor=3) == 131

    def test_current_tracks_increment(self):
        store = make_store(CounterScheme.SPLIT)
        store.increment(7)
        store.increment(7)
        assert store.current(7) == 2
        assert store.current(8) == 0

    def test_minor_overflow_triggers_group_reencrypt(self):
        store = make_store(CounterScheme.SPLIT)
        store.increment(64)  # mark a neighbor in the same page as written
        for _ in range(127):
            event = store.increment(65)
            assert not event.overflowed
        event = store.increment(65)
        assert event.overflowed
        assert store.overflows == 1
        # Only written blocks in the group (excluding the trigger) re-encrypt.
        assert set(event.reencrypt) == {64}
        old, new = event.reencrypt[64]
        assert old == store.fused(0, 1)
        assert new == store.fused(1, 0)

    def test_overflow_resets_minors_bumps_major(self):
        store = make_store(CounterScheme.SPLIT)
        for _ in range(128):
            store.increment(0)
        major, minors = store.split_state(0)
        assert major == 1
        assert minors[0] == 1
        assert all(m == 0 for m in minors[1:])

    def test_unwritten_blocks_not_reencrypted(self):
        store = make_store(CounterScheme.SPLIT)
        for _ in range(128):
            event = store.increment(0)
        assert event.overflowed
        assert event.reencrypt == {}

    def test_counter_block_image_format(self):
        store = make_store(CounterScheme.SPLIT)
        store.increment(1)
        image = store.counter_block_image(0)
        assert len(image) == 65  # major + 64 minors
        assert image[0] == 0 and image[2] == 1

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_sum_of_minors_invariant(self, writes):
        # Without overflow, total minor value equals total writes.
        store = make_store(CounterScheme.SPLIT)
        overflow_resets = 0
        for block in writes:
            if store.increment(block).overflowed:
                overflow_resets += 1
        if overflow_resets == 0:
            _, minors = store.split_state(0)
            assert sum(minors) == len(writes)


class TestMonolithicCounters:
    def test_increment(self):
        store = make_store(CounterScheme.MONOLITHIC)
        store.increment(3)
        store.increment(3)
        assert store.current(3) == 2

    def test_overflow_changes_key_epoch(self):
        store = make_store(CounterScheme.MONOLITHIC, monolithic_bits=2)
        store.increment(9)  # another written block
        for _ in range(3):
            store.increment(4)
        event = store.increment(4)
        assert event.overflowed
        assert event.key_epoch == 1
        assert 9 in event.reencrypt  # whole-memory re-encryption

    def test_56bit_counters_practically_never_overflow(self):
        store = make_store(CounterScheme.MONOLITHIC, monolithic_bits=56)
        for _ in range(1000):
            assert not store.increment(0).overflowed

    def test_image_is_per_block_counters(self):
        store = make_store(CounterScheme.MONOLITHIC)
        store.increment(1)
        image = store.counter_block_image(0)
        assert len(image) == 8
        assert image[1] == 1


class TestGlobalCounter:
    def test_snapshots_differ_across_writes(self):
        store = make_store(CounterScheme.GLOBAL)
        store.increment(0)
        store.increment(1)
        assert store.current(0) == 1
        assert store.current(1) == 2

    def test_global_overflow_reencrypts_everything(self):
        store = make_store(CounterScheme.GLOBAL, monolithic_bits=3)
        for block in range(6):
            store.increment(block)
        event = store.increment(6)
        assert not event.overflowed
        event = store.increment(7)
        assert event.overflowed
        assert len(event.reencrypt) == 7
        assert store.key_epoch == 1

    def test_split_state_rejected_outside_sc(self):
        store = make_store(CounterScheme.GLOBAL)
        with pytest.raises(ValueError):
            store.split_state(0)


class TestOverflowFrequency:
    """VUL-1 characterisation: SC bounds re-encryption to one group."""

    def test_sc_group_smaller_than_moc_group(self):
        sc = make_store(CounterScheme.SPLIT)
        moc = make_store(CounterScheme.MONOLITHIC, monolithic_bits=7)
        for block in (0, 70, 140):
            sc.increment(block)
            moc.increment(block)
        for _ in range(127):
            sc.increment(1)
            moc.increment(1)
        sc_event = sc.increment(1)
        moc_event = moc.increment(1)
        assert sc_event.overflowed and moc_event.overflowed
        # SC re-encrypts only its page group; MoC all written memory.
        assert set(sc_event.reencrypt) == {0}
        assert set(moc_event.reencrypt) == {0, 70, 140}

    def test_tamper_api(self):
        store = make_store(CounterScheme.SPLIT)
        store.tamper_split_minor(0, 5, 99)
        _, minors = store.split_state(0)
        assert minors[5] == 99
        with pytest.raises(ValueError):
            make_store(CounterScheme.GLOBAL).tamper_split_minor(0, 0, 1)
