"""Tests for the integrity trees (HT, SCT, SIT)."""

import pytest

from repro.config import MIB, SecureProcessorConfig
from repro.crypto.prf import keyed_prf
from repro.secmem.counters import EncryptionCounterStore
from repro.secmem.layout import MetadataLayout
from repro.secmem.tree import (
    CounterTree,
    HashTree,
    TreeIntegrityError,
    build_tree,
)

KEY = keyed_prf(b"test", "tree", out_len=32)


def make_sct(protected_size=16 * MIB):
    config = SecureProcessorConfig.sct_default(protected_size=protected_size)
    layout = MetadataLayout(config)
    counters = EncryptionCounterStore(config.counters, layout)
    tree = CounterTree(config, layout, KEY)
    return config, layout, counters, tree


def make_sit():
    config = SecureProcessorConfig.sgx_default(epc_size=16 * MIB)
    layout = MetadataLayout(config)
    counters = EncryptionCounterStore(config.counters, layout)
    tree = CounterTree(config, layout, KEY)
    return config, layout, counters, tree


def make_ht(protected_size=16 * MIB):
    config = SecureProcessorConfig.ht_default(protected_size=protected_size)
    layout = MetadataLayout(config)
    counters = EncryptionCounterStore(config.counters, layout)
    tree = HashTree(config, layout, KEY, counters.counter_block_image)
    return config, layout, counters, tree


class TestCounterTreeStructure:
    def test_fresh_nodes_verify(self):
        _, layout, _, tree = make_sct()
        for level in range(len(layout.levels)):
            tree.verify_node(level, 0)

    def test_path_nodes_cover_all_levels(self):
        _, layout, _, tree = make_sct()
        path = tree.path_nodes(100)
        assert len(path) == len(layout.levels)
        assert path[0] == (0, 100 // 32)

    def test_build_tree_dispatch(self):
        config, layout, counters, _ = make_sct()
        tree = build_tree(config, layout, KEY, counters.counter_block_image)
        assert isinstance(tree, CounterTree)
        config, layout, counters, _ = make_ht()
        tree = build_tree(config, layout, KEY, counters.counter_block_image)
        assert isinstance(tree, HashTree)

    def test_counter_tree_rejects_hash_kind(self):
        config, layout, _, _ = make_ht()
        with pytest.raises(ValueError):
            CounterTree(config, layout, KEY)


class TestLazyBumps:
    def test_bump_leaf_counts_writebacks(self):
        _, _, _, tree = make_sct()
        for _ in range(5):
            tree.bump_leaf(cb_index=3)
        assert tree.leaf_parent_value(3) == 5
        assert tree.leaf_parent_value(4) == 0

    def test_bump_leaf_rehashes_node(self):
        _, _, _, tree = make_sct()
        tree.bump_leaf(0)
        tree.verify_node(0, 0)  # hash stays consistent

    def test_bump_node_increments_parent_minor(self):
        _, layout, _, tree = make_sct()
        tree.bump_node(0, 5)
        parent_level, parent_index = layout.parent_of(0, 5)
        slot = layout.child_slot(0, 5)
        assert tree._node(parent_level, parent_index).minors[slot] == 1
        tree.verify_node(0, 5)
        tree.verify_node(parent_level, parent_index)

    def test_bump_top_level_hits_root_counter(self):
        _, layout, _, tree = make_sct()
        top = len(layout.levels) - 1
        tree.bump_node(top, 0)
        assert tree.root_counter(0) == 1
        tree.verify_node(top, 0)

    def test_parent_value_chain(self):
        _, layout, _, tree = make_sct()
        tree.bump_node(0, 0)
        tree.bump_node(0, 0)
        assert tree.parent_value(0, 0) == 2


class TestCounterTreeOverflow:
    def test_minor_overflow_resets_and_majors(self):
        _, _, _, tree = make_sct()
        for _ in range(127):
            update = tree.bump_leaf(0)
            assert not update.overflowed
        update = tree.bump_leaf(0)
        assert update.overflowed
        overflow = update.overflows[0]
        assert overflow.level == 0
        node = tree._node(0, 0)
        assert node.major == 1
        assert node.minors[0] == 1
        assert all(m == 0 for m in node.minors[1:])
        assert len(overflow.counter_blocks) == 32

    def test_overflow_keeps_tree_verifiable(self):
        _, layout, _, tree = make_sct()
        for _ in range(200):
            tree.bump_leaf(0)
        for level in range(len(layout.levels)):
            tree.verify_node(level, 0)

    def test_mid_level_overflow_resets_descendants(self):
        _, layout, _, tree = make_sct()
        # Touch two L0 nodes so they materialise under L1 node 0.
        tree.bump_leaf(0)
        tree.bump_leaf(32)
        for _ in range(128):
            tree.bump_node(0, 0)  # saturate the L1 minor for L0 node 0
        node0 = tree._node(0, 0)
        assert node0.major >= 1  # reset + incremented by the overflow
        assert tree.overflow_count >= 1
        tree.verify_node(0, 0)
        tree.verify_node(0, 1)
        tree.verify_node(1, 0)

    def test_sit_counters_do_not_overflow(self):
        _, _, _, tree = make_sit()
        assert not tree.has_major
        for _ in range(1000):
            update = tree.bump_leaf(0)
            assert not update.overflowed
        assert tree.leaf_parent_value(0) == 1000


class TestCounterTreeTamper:
    def test_spoofed_minor_detected(self):
        _, _, _, tree = make_sct()
        tree.bump_leaf(0)
        tree.tamper_minor(0, 0, slot=2, value=77)
        with pytest.raises(TreeIntegrityError):
            tree.verify_node(0, 0)

    def test_replayed_node_detected(self):
        _, _, _, tree = make_sct()
        tree.bump_leaf(0)
        snapshot = tree.node_image(0, 0)
        tree.bump_leaf(0)
        tree.bump_node(0, 0)  # advance the parent counter
        tree.tamper_replay(0, 0, snapshot)
        with pytest.raises(TreeIntegrityError):
            tree.verify_node(0, 0)

    def test_replay_without_parent_advance_also_detected(self):
        # Replay an old node image after further updates to the same node:
        # the node's own content hash binds its (advanced) parent value.
        _, _, _, tree = make_sct()
        tree.bump_node(0, 0)
        snapshot = tree.node_image(0, 0)
        tree.bump_node(0, 0)
        tree.tamper_replay(0, 0, snapshot)
        with pytest.raises(TreeIntegrityError):
            tree.verify_node(0, 0)


class TestHashTree:
    def test_fresh_tree_verifies(self):
        _, layout, counters, tree = make_ht()
        tree.verify_counter_block(0, counters.counter_block_image(0))
        for level in range(len(layout.levels)):
            tree.verify_node(level, 0)

    def test_update_chain_stays_consistent(self):
        _, layout, counters, tree = make_ht()
        counters.increment(5)
        tree.on_counter_block_update(0, counters.counter_block_image(0))
        tree.verify_counter_block(0, counters.counter_block_image(0))
        for level in range(len(layout.levels)):
            tree.verify_node(level, layout.node_index(level, 0))

    def test_stale_counter_block_detected(self):
        _, _, counters, tree = make_ht()
        counters.increment(5)  # change content without updating the tree
        with pytest.raises(TreeIntegrityError):
            tree.verify_counter_block(0, counters.counter_block_image(0))

    def test_lazy_bumps_match_eager_update(self):
        _, layout, counters, tree = make_ht()
        counters.increment(5)
        tree.bump_leaf(0)
        level, index = 0, 0
        while True:
            parent = layout.parent_of(level, index)
            tree.bump_node(level, index)
            if parent is None:
                break
            level, index = parent
        tree.verify_counter_block(0, counters.counter_block_image(0))
        for check_level in range(len(layout.levels)):
            tree.verify_node(check_level, layout.node_index(check_level, 0))

    def test_tampered_child_hash_detected(self):
        _, _, _, tree = make_ht()
        tree.tamper_child_hash(1, 0, slot=0, value=12345)
        with pytest.raises(TreeIntegrityError):
            tree.verify_node(0, 0)

    def test_no_overflow_in_hash_tree(self):
        _, _, counters, tree = make_ht()
        for _ in range(300):
            update = tree.bump_leaf(0)
            assert not update.overflowed

    def test_hash_tree_rejects_counter_kind(self):
        config, layout, counters, _ = make_sct()
        with pytest.raises(ValueError):
            HashTree(config, layout, KEY, counters.counter_block_image)
