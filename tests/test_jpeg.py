"""Tests for the JPEG victim pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator, Process
from repro.proc import SecureProcessor
from repro.victims.jpeg import (
    JpegEncoder,
    JpegVictim,
    dct2,
    idct2,
    inverse_zigzag,
    mask_accuracy,
    quant_table,
    quantize,
    dequantize,
    reconstruct_from_mask,
    sample_image,
    sample_image_names,
    zigzag,
    ZIGZAG_ORDER,
)
from repro.victims.jpeg.huffman import (
    bit_category,
    encode_bitstream,
    run_length_decode,
    run_length_encode,
)
from repro.victims.jpeg.reconstruct import (
    activity_map,
    feature_correlation,
    pixel_correlation,
    reconstruct_reference,
    zero_recovery_accuracy,
)


class TestDct:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(idct2(dct2(block)), block)

    def test_dc_of_flat_block(self):
        block = np.full((8, 8), 80.0)
        coefficients = dct2(block)
        assert coefficients[0, 0] == pytest.approx(80.0 * 8)
        assert np.allclose(coefficients.ravel()[1:], 0)

    def test_orthonormal_energy(self):
        rng = np.random.default_rng(2)
        block = rng.normal(size=(8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(dct2(block) ** 2))

    def test_shape_enforced(self):
        with pytest.raises(ValueError):
            dct2(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct2(np.zeros((8, 4)))


class TestZigzag:
    def test_order_properties(self):
        assert len(ZIGZAG_ORDER) == 64
        assert len(set(ZIGZAG_ORDER)) == 64
        assert ZIGZAG_ORDER[0] == (0, 0)
        assert ZIGZAG_ORDER[1] in ((0, 1), (1, 0))

    def test_roundtrip(self):
        block = np.arange(64).reshape(8, 8)
        assert np.array_equal(inverse_zigzag(zigzag(block)), block)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            inverse_zigzag(np.zeros(10))


class TestQuant:
    def test_quality_scaling(self):
        low = quant_table(10)
        high = quant_table(90)
        assert (low >= high).all()
        assert low.min() >= 1

    def test_quality_range(self):
        with pytest.raises(ValueError):
            quant_table(0)

    def test_quantize_roundtrip_coarse(self):
        table = quant_table(50)
        coefficients = np.full((8, 8), 100.0)
        recovered = dequantize(quantize(coefficients, table), table)
        assert np.abs(recovered - coefficients).max() <= table.max() / 2


class TestRunLength:
    def test_roundtrip(self):
        ac = [0, 5, 0, 0, -3, 0, 1] + [0] * 56
        assert run_length_decode(run_length_encode(ac)) == ac

    def test_long_zero_run_uses_zrl(self):
        ac = [0] * 20 + [7] + [0] * 42
        symbols = run_length_encode(ac)
        assert (symbols[0].run, symbols[0].size) == (15, 0)  # ZRL
        assert run_length_decode(symbols) == ac

    def test_trailing_zeros_eob(self):
        ac = [3] + [0] * 62
        symbols = run_length_encode(ac)
        assert (symbols[-1].run, symbols[-1].size) == (0, 0)  # EOB

    def test_bit_category(self):
        assert bit_category(0) == 0
        assert bit_category(1) == 1
        assert bit_category(-3) == 2
        assert bit_category(1023) == 10

    def test_out_of_range_coefficient_rejected(self):
        with pytest.raises(ValueError):
            run_length_encode([4096] + [0] * 62)

    @given(st.lists(st.integers(min_value=-200, max_value=200), min_size=63, max_size=63))
    @settings(max_examples=50)
    def test_roundtrip_property(self, ac):
        assert run_length_decode(run_length_encode(ac)) == ac

    def test_bitstream_produced(self):
        symbols = [run_length_encode([1, 0, -2] + [0] * 60)]
        bits, table = encode_bitstream(symbols)
        assert set(bits) <= {"0", "1"}
        assert len(bits) > 0


class TestEncoder:
    def test_flat_image_compresses_tiny(self):
        encoder = JpegEncoder(50)
        flat = np.full((16, 16), 128.0)
        encoded = encoder.encode(flat)
        assert all(all(c == 0 for c in block) for block in encoded.ac_blocks)

    def test_detailed_image_has_nonzeros(self):
        encoder = JpegEncoder(50)
        encoded = encoder.encode(sample_image("checkerboard", 16))
        assert any(any(c != 0 for c in block) for block in encoded.ac_blocks)

    def test_zero_masks_shape(self):
        encoder = JpegEncoder(50)
        encoded = encoder.encode(sample_image("gradient", 16))
        masks = encoded.zero_masks()
        assert len(masks) == 4
        assert all(len(m) == 63 for m in masks)

    def test_compression_beats_raw(self):
        encoder = JpegEncoder(50)
        encoded = encoder.encode(sample_image("gradient", 32))
        assert encoded.compressed_bits < 32 * 32 * 8

    def test_unaligned_image_rejected(self):
        with pytest.raises(ValueError):
            JpegEncoder().encode(np.zeros((10, 10)))

    def test_reference_decode_close(self):
        image = sample_image("circles", 16)
        encoded = JpegEncoder(90).encode(image)
        decoded = reconstruct_reference(encoded)
        assert pixel_correlation(decoded, image) > 0.95


class TestSampleImages:
    def test_all_generate(self):
        for name in sample_image_names():
            image = sample_image(name, 16)
            assert image.shape == (16, 16)
            assert image.min() >= 0 and image.max() <= 255

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            sample_image("nonexistent")

    def test_size_multiple_of_8(self):
        with pytest.raises(ValueError):
            sample_image("circles", 17)


class TestReconstruction:
    def test_mask_accuracy_bounds(self):
        truth = [[True, False], [False, True]]
        assert mask_accuracy(truth, truth) == 1.0
        flipped = [[not v for v in row] for row in truth]
        assert mask_accuracy(flipped, truth) == 0.0

    def test_zero_recovery_accuracy(self):
        truth = [[True, True, False]]
        recovered = [[True, False, False]]
        assert zero_recovery_accuracy(recovered, truth) == 0.5

    def test_activity_map_tracks_detail(self):
        masks = [[True] * 63, [False] * 63]
        amap = activity_map(masks, (8, 16))
        assert amap[0, 0] == 0
        assert amap[0, 8] == 63

    def test_feature_correlation_perfect_for_truth(self):
        encoded = JpegEncoder(50).encode(sample_image("text", 16))
        truth = encoded.zero_masks()
        assert feature_correlation(truth, truth, encoded.shape) == pytest.approx(1.0)

    def test_reconstruct_shape_and_range(self):
        masks = [[True] * 63] * 4
        image = reconstruct_from_mask(masks, (16, 16))
        assert image.shape == (16, 16)
        assert image.min() >= 0 and image.max() <= 255


class TestJpegVictim:
    def setup_method(self):
        self.proc = SecureProcessor(
            SecureProcessorConfig.sct_default(
                protected_size=64 * MIB, functional_crypto=False
            )
        )
        self.alloc = PageAllocator(self.proc.layout.data_size // PAGE_SIZE)
        self.process = Process(self.proc, self.alloc, cleanse=True)

    def test_variables_on_distinct_pages(self):
        victim = JpegVictim(self.process)
        assert victim.r_frame != victim.nbits_frame

    def test_steps_match_coefficients(self):
        victim = JpegVictim(self.process)
        image = sample_image("gradient", 16)
        steps = list(victim.encode_image(image))
        assert len(steps) == 4 * 63

    def test_step_ground_truth_matches_encoding(self):
        victim = JpegVictim(self.process)
        image = sample_image("checkerboard", 16)
        generator = victim.encode_image(image)
        steps = []
        while True:
            try:
                steps.append(next(generator))
            except StopIteration as stop:
                encoded = stop.value
                break
        truth = encoded.zero_masks()
        for step in steps:
            assert truth[step.block][step.k - 1] == step.is_zero

    def test_victim_touches_correct_pages(self):
        victim = JpegVictim(self.process)
        # A block of all-zero coefficients must touch only the r page.
        reads_before = self.proc.stats.reads + self.proc.stats.writes
        list(victim.encode_one_block([0] * 63))
        assert self.proc.stats.writes > 0
