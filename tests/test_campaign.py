"""Tests for the crash-isolated sharded campaign engine.

Task functions live at module level so they pickle across the worker
pipe; the crash/stop helpers simulate real failure modes (``os._exit``
mid-task, a stopped process whose heartbeat goes stale) rather than
raising polite exceptions.
"""

import json
import os
import pathlib
import signal
import time

import pytest

from repro.campaign import (
    CampaignDB,
    CampaignEngine,
    CampaignTask,
    PayloadError,
    TEST_CRASH_ENV,
    config_hash,
    decode_payload,
    derive_task_seed,
    encode_payload,
)
from repro.campaign import engine as engine_mod
from repro.campaign.engine import _fn_resolvable
from repro.runner import load_manifest


# -- module-level task functions (picklable across the worker pipe) -------


def compute(x, seed=0):
    return {"x": x, "seed": seed, "cubes": tuple(i**3 for i in range(x))}


def always_crash():
    os._exit(17)


def crash_until_marker(marker):
    if not os.path.exists(marker):
        pathlib.Path(marker).write_text("crashed\n")
        os._exit(17)
    return "recovered"


def fail_once_then_succeed(marker, seed=0):
    if not os.path.exists(marker):
        pathlib.Path(marker).write_text("failed\n")
        raise RuntimeError("transient fault")
    return {"seed": seed}


def stop_self():
    # A stopped process keeps is_alive() true but stops heartbeating:
    # the closest cheap stand-in for a truly wedged worker.
    os.kill(os.getpid(), signal.SIGSTOP)
    time.sleep(60)


def ignore_alarm_and_sleep():
    signal.signal(signal.SIGALRM, signal.SIG_IGN)
    time.sleep(60)


def return_unpicklable():
    return lambda: None


# -- payload codec --------------------------------------------------------


class TestPayloadCodec:
    def test_plain_values_round_trip(self):
        value = {"a": [1, 2.5, "x", None, True], "b": {"nested": [0]}}
        assert decode_payload(encode_payload(value)) == value

    def test_tuples_bytes_and_special_floats(self):
        value = {"t": (1, (2, 3)), "raw": b"\x00\xff", "inf": float("inf")}
        out = decode_payload(encode_payload(value))
        assert out["t"] == (1, (2, 3)) and isinstance(out["t"], tuple)
        assert out["raw"] == b"\x00\xff"
        assert out["inf"] == float("inf")

    def test_repro_dataclasses_round_trip(self):
        from repro.analysis.report import FigureResult, Row

        result = FigureResult(
            figure="fig0", title="t",
            rows=(Row(label="s", measured=1.5, paper="~2", unit="cycles"),),
            notes=("n",),
        )
        restored = decode_payload(encode_payload(result))
        assert restored == result

    def test_enums_round_trip(self):
        from repro.faults.injector import FaultSite

        site = next(iter(FaultSite))
        assert decode_payload(encode_payload({"site": site}))["site"] is site

    def test_encoding_is_deterministic(self):
        value = {"b": 2, "a": 1, "t": (3, 4)}
        assert encode_payload(value) == encode_payload(dict(value))

    def test_foreign_types_are_refused(self):
        with pytest.raises(PayloadError):
            encode_payload(object())

    def test_foreign_modules_are_refused_on_decode(self):
        hostile = json.dumps({
            "__repro__": "dataclass", "type": "os:stat_result", "fields": {},
        })
        with pytest.raises(PayloadError):
            decode_payload(hostile)


# -- config hashing and seed derivation -----------------------------------


class TestConfigHash:
    def test_stable_across_calls(self):
        assert (config_hash("t", compute, {"x": 3})
                == config_hash("t", compute, {"x": 3}))

    def test_sensitive_to_name_fn_and_kwargs(self):
        base = config_hash("t", compute, {"x": 3})
        assert config_hash("u", compute, {"x": 3}) != base
        assert config_hash("t", always_crash, {"x": 3}) != base
        assert config_hash("t", compute, {"x": 4}) != base

    def test_kwarg_order_does_not_matter(self):
        assert (config_hash("t", compute, {"x": 1, "seed": 2})
                == config_hash("t", compute, {"seed": 2, "x": 1}))

    def test_derive_task_seed_is_deterministic_and_distinct(self):
        assert derive_task_seed(7, "a", 0) == derive_task_seed(7, "a", 0)
        assert derive_task_seed(7, "a", 0) != derive_task_seed(7, "a", 1)
        assert derive_task_seed(7, "a", 0) != derive_task_seed(7, "b", 0)

    def test_fn_resolvable_rejects_closures_and_lambdas(self):
        assert _fn_resolvable(compute)
        assert not _fn_resolvable(lambda: None)

        def inner():
            pass

        assert not _fn_resolvable(inner)


# -- campaign DB ----------------------------------------------------------


class TestCampaignDB:
    def test_record_and_lookup(self, tmp_path):
        with CampaignDB(tmp_path / "c.sqlite") as db:
            db.record_run(
                config_hash="h", git_rev="r", name="t", seed=1, status="ok",
                attempts=1, elapsed=0.5, payload=encode_payload({"v": 1}),
            )
            row = db.lookup("h", "r")
            assert row is not None and decode_payload(row.payload) == {"v": 1}
            assert db.lookup("h", "other-rev") is None
            assert db.lookup("other-hash", "r") is None

    def test_failed_runs_are_recorded_but_never_served(self, tmp_path):
        with CampaignDB(tmp_path / "c.sqlite") as db:
            db.record_run(
                config_hash="h", git_rev="r", name="t", seed=None,
                status="failed", attempts=2, elapsed=0.1, error="boom",
            )
            assert db.lookup("h", "r") is None
            assert db.counts() == {"failed": 1}
            assert len(db) == 1

    def test_latest_success_wins(self, tmp_path):
        with CampaignDB(tmp_path / "c.sqlite") as db:
            for version in (1, 2):
                db.record_run(
                    config_hash="h", git_rev="r", name="t", seed=None,
                    status="ok", attempts=1, elapsed=0.1,
                    payload=encode_payload({"v": version}),
                )
            assert decode_payload(db.lookup("h", "r").payload) == {"v": 2}


# -- engine: determinism and caching --------------------------------------


def _tasks(values):
    return [CampaignTask(name=f"compute_{v}", fn=compute, kwargs={"x": v})
            for v in values]


class TestEngineDeterminism:
    def test_serial_and_parallel_payloads_are_byte_identical(self, tmp_path):
        serial = CampaignEngine(jobs=1).run(_tasks([2, 3, 4]))
        parallel = CampaignEngine(jobs=4).run(_tasks([2, 3, 4]))
        for left, right in zip(serial.records, parallel.records):
            assert left.ok and right.ok
            assert encode_payload(left.result) == encode_payload(right.result)

    def test_warm_db_serves_everything_without_executing(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        first = CampaignEngine(jobs=1, db=db_path)
        assert first.run(_tasks([2, 3])).status == "pass"
        assert int(first.registry.counter("executed").value) == 2

        second = CampaignEngine(jobs=1, db=db_path)
        report = second.run(_tasks([2, 3]))
        assert report.status == "pass"
        assert all(r.cached for r in report.records)
        assert int(second.registry.counter("executed").value) == 0
        assert second.registry.snapshot()["cache.hits"] == 2
        assert "served from campaign cache" in second.summary_line()
        assert (report.records[0].result
                == first.run(_tasks([2])).records[0].result)

    def test_no_cache_still_records_runs(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        CampaignEngine(jobs=1, db=db_path).run(_tasks([2]))
        engine = CampaignEngine(jobs=1, db=db_path, use_cache=False)
        report = engine.run(_tasks([2]))
        assert not report.records[0].cached
        assert int(engine.registry.counter("executed").value) == 1
        with CampaignDB(db_path) as db:
            assert db.counts()["ok"] == 2

    def test_git_rev_change_invalidates_the_cache(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        CampaignEngine(jobs=1, db=db_path, git_rev="rev-a").run(_tasks([2]))
        engine = CampaignEngine(jobs=1, db=db_path, git_rev="rev-b")
        report = engine.run(_tasks([2]))
        assert not report.records[0].cached
        assert engine.registry.snapshot()["cache.misses"] == 1

    def test_closures_never_touch_the_cache(self, tmp_path):
        db_path = tmp_path / "c.sqlite"

        def make(value):
            def figure():
                return {"value": value}
            return figure

        for value in (1, 2):  # same qualname, different behaviour
            engine = CampaignEngine(jobs=1, db=db_path)
            record = engine.run(
                [CampaignTask(name="fig", fn=make(value))]
            ).records[0]
            assert record.ok and not record.cached
            assert record.result == {"value": value}
        with CampaignDB(db_path) as db:
            assert len(db) == 0


# -- engine: crash isolation ----------------------------------------------


class TestCrashIsolation:
    def test_worker_killed_mid_task_is_retried_and_batch_completes(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "crash.marker"
        monkeypatch.setenv(TEST_CRASH_ENV, f"compute_2={marker}")
        engine = CampaignEngine(jobs=2, retries=2, backoff=0.01,
                                db=tmp_path / "c.sqlite")
        report = engine.run(_tasks([2, 3]))
        assert report.status == "pass"
        assert marker.exists()
        crashed = report.record("compute_2")
        assert crashed.ok and crashed.attempts == 2
        assert crashed.result == compute(2)
        assert engine.registry.snapshot()["workers.crashed"] == 1
        assert "worker crash(es) reaped" in engine.summary_line()

    def test_hard_exit_in_task_fn_is_reaped(self, tmp_path):
        engine = CampaignEngine(jobs=2, retries=1, backoff=0.01)
        marker = tmp_path / "exit.marker"
        report = engine.run([
            CampaignTask(name="bad", fn=crash_until_marker,
                         kwargs={"marker": str(marker)}),
            CampaignTask(name="good", fn=compute, kwargs={"x": 3}),
        ])
        assert report.record("bad").ok
        assert report.record("bad").result == "recovered"
        assert report.record("good").ok

    def test_exhausted_retries_degrade_to_a_failed_record(self):
        engine = CampaignEngine(jobs=2, retries=1, backoff=0.01)
        report = engine.run([
            CampaignTask(name="doomed", fn=always_crash),
            CampaignTask(name="fine", fn=compute, kwargs={"x": 2}),
        ])
        doomed = report.record("doomed")
        assert doomed.status == "failed"
        assert doomed.attempts == 2
        assert "worker crashed" in doomed.error
        assert report.record("fine").ok  # the batch is never lost wholesale

    def test_stalled_heartbeat_is_killed_by_the_watchdog(self):
        # jobs >= 2 forces the worker-process path; the serial path runs
        # in-process and offers no crash isolation by design.
        engine = CampaignEngine(jobs=2, retries=0, backoff=0.0,
                                heartbeat_timeout=0.5)
        report = engine.run([CampaignTask(name="wedged", fn=stop_self)])
        record = report.records[0]
        assert record.status == "timeout"
        assert "watchdog" in record.error
        assert engine.registry.snapshot()["workers.hung"] == 1

    def test_deadline_backstop_when_sigalrm_cannot_fire(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_DEADLINE_SLACK", 1.0)
        monkeypatch.setattr(engine_mod, "_DEADLINE_GRACE", 0.5)
        engine = CampaignEngine(jobs=2, retries=0, timeout=0.2)
        report = engine.run(
            [CampaignTask(name="stuck", fn=ignore_alarm_and_sleep)]
        )
        assert report.records[0].status == "timeout"

    def test_retry_reseeds_shard_independently(self, tmp_path):
        marker = tmp_path / "flaky.marker"
        engine = CampaignEngine(jobs=2, retries=2, backoff=0.01,
                                reseed_base=500)
        report = engine.run([
            CampaignTask(name="flaky", fn=fail_once_then_succeed,
                         kwargs={"marker": str(marker)}),
        ])
        record = report.records[0]
        assert record.ok and record.attempts == 2
        assert record.result == {"seed": 501}  # reseed_base + attempt index
        assert record.seed == 501


# -- engine: degradations and plumbing ------------------------------------


class TestEngineDegradations:
    def test_unpicklable_fn_runs_inline(self):
        engine = CampaignEngine(jobs=2)
        report = engine.run(
            [CampaignTask(name="closure", fn=lambda: {"ok": True})]
        )
        assert report.records[0].ok
        assert report.records[0].result == {"ok": True}
        assert int(
            engine.registry.counter("inline_fallbacks").value
        ) == 1

    def test_unpicklable_result_degrades_to_a_note(self):
        engine = CampaignEngine(jobs=2)
        report = engine.run(
            [CampaignTask(name="lam", fn=return_unpicklable)]
        )
        record = report.records[0]
        assert record.ok
        assert record.result is None
        assert "not transferable" in record.detail

    def test_manifest_resume_takes_precedence_over_execution(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        engine = CampaignEngine(jobs=1, manifest_path=manifest)
        assert engine.run(_tasks([2])).status == "pass"
        assert load_manifest(manifest)["compute_2"].ok

        resumed = CampaignEngine(jobs=1, manifest_path=manifest, resume=True)
        report = resumed.run(_tasks([2]))
        assert report.records[0].cached
        assert int(resumed.registry.counter("executed").value) == 0
        assert resumed.registry.snapshot()["cache.manifest_hits"] == 1

    def test_duplicate_task_names_are_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignEngine(jobs=1).run(_tasks([2]) + _tasks([2]))

    def test_parallel_fail_fast_skips_remaining(self):
        engine = CampaignEngine(jobs=1, fail_fast=True)
        report = engine.run([
            CampaignTask(name="boom", fn=always_crash_exception),
            CampaignTask(name="later", fn=compute, kwargs={"x": 2}),
        ])
        assert report.record("boom").status == "failed"
        assert report.record("later").status == "skipped"

    def test_engine_validates_arguments(self):
        with pytest.raises(ValueError):
            CampaignEngine(jobs=0)
        with pytest.raises(ValueError):
            CampaignEngine(retries=-1)
        with pytest.raises(ValueError):
            CampaignEngine(timeout=0.0)
        with pytest.raises(ValueError):
            CampaignEngine(heartbeat_timeout=0.0)

    def test_prometheus_export_covers_campaign_counters(self, tmp_path):
        from repro.perf import prometheus_text

        engine = CampaignEngine(jobs=1, db=tmp_path / "c.sqlite")
        engine.run(_tasks([2]))
        text = prometheus_text(engine.registry, namespace="repro_campaign")
        assert "repro_campaign_cache_hits_total" in text
        assert "repro_campaign_workers_crashed_total" in text
        assert "repro_campaign_executed_total 1" in text


def always_crash_exception():
    raise RuntimeError("boom")


# -- payload codec: special floats and deep nesting ------------------------


class TestPayloadEdgeCases:
    def test_nan_and_signed_infinities_round_trip(self):
        import math

        value = {
            "nan": float("nan"),
            "pinf": float("inf"),
            "ninf": float("-inf"),
            "nested": (float("nan"), [float("-inf")]),
        }
        out = decode_payload(encode_payload(value))
        assert math.isnan(out["nan"])
        assert out["pinf"] == float("inf")
        assert out["ninf"] == float("-inf")
        assert math.isnan(out["nested"][0])
        assert out["nested"][1] == [float("-inf")]

    def test_special_floats_encode_deterministically(self):
        value = {"b": float("nan"), "a": float("inf")}
        assert encode_payload(value) == encode_payload(dict(value))

    def test_deeply_nested_dataclasses_round_trip(self):
        import math

        from repro.analysis.report import FigureResult, Row

        leaf = FigureResult(
            figure="fig0", title="deep",
            rows=(Row(label="r", measured=float("nan"), paper="~1",
                      unit="cycles"),),
            notes=(),
        )
        value: object = leaf
        for level in range(32):
            value = {"level": level, "child": (value, [level])}
        out = decode_payload(encode_payload(value))
        for level in reversed(range(32)):
            assert out["level"] == level
            out = out["child"][0]
        assert isinstance(out, FigureResult)
        assert math.isnan(out.rows[0].measured)


# -- campaign DB: transient-lock resilience --------------------------------


class _FlakyConn:
    """Wraps a sqlite connection, failing the first N executes as busy."""

    def __init__(self, conn, failures, message="database is locked"):
        self._conn = conn
        self.failures = failures
        self.message = message
        self.attempts = 0

    def execute(self, sql, *args):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            import sqlite3

            raise sqlite3.OperationalError(self.message)
        return self._conn.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class TestBusyRetry:
    def test_transient_lock_is_retried_and_succeeds(self, tmp_path, monkeypatch):
        from repro.campaign import db as db_mod

        monkeypatch.setattr(db_mod, "_BUSY_BACKOFF_S", 0.001)
        db = CampaignDB(tmp_path / "c.sqlite")
        flaky = _FlakyConn(db._conn, failures=2)
        db._conn = flaky
        db.record_run(config_hash="h", git_rev="r", name="t", seed=None,
                      status="ok", attempts=1, elapsed=0.1,
                      payload=encode_payload({"v": 1}))
        assert flaky.attempts > 2  # retried past the injected failures
        assert db.lookup("h", "r") is not None
        db.close()

    def test_persistent_lock_still_raises(self, tmp_path, monkeypatch):
        import sqlite3

        from repro.campaign import db as db_mod

        monkeypatch.setattr(db_mod, "_BUSY_BACKOFF_S", 0.001)
        db = CampaignDB(tmp_path / "c.sqlite")
        db._conn = _FlakyConn(db._conn, failures=10**9)
        with pytest.raises(sqlite3.OperationalError):
            db.lookup("h", "r")

    def test_non_busy_operational_errors_are_not_retried(
        self, tmp_path, monkeypatch
    ):
        import sqlite3

        from repro.campaign import db as db_mod

        monkeypatch.setattr(db_mod, "_BUSY_BACKOFF_S", 60.0)  # would hang
        db = CampaignDB(tmp_path / "c.sqlite")
        flaky = _FlakyConn(
            db._conn, failures=1, message="no such table: nope"
        )
        db._conn = flaky
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            db.lookup("h", "r")
        assert flaky.attempts == 1

    def test_busy_timeout_is_validated_and_applied(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignDB(tmp_path / "c.sqlite", busy_timeout=-1.0)
        with CampaignDB(tmp_path / "c.sqlite", busy_timeout=2.5) as db:
            (timeout_ms,) = db._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout_ms == 2500

    def test_concurrent_connections_do_not_lose_writes(self, tmp_path):
        db_path = tmp_path / "c.sqlite"
        writers = [CampaignDB(db_path) for _ in range(4)]
        for index, db in enumerate(writers):
            db.record_run(config_hash=f"h{index}", git_rev="r", name="t",
                          seed=None, status="ok", attempts=1, elapsed=0.1,
                          payload=encode_payload({"i": index}))
        with CampaignDB(db_path) as db:
            assert len(db) == 4
        for db in writers:
            db.close()


# -- engine: full-jitter backoff and cooperative drain ---------------------


class TestRetryJitter:
    def test_delays_stay_within_the_exponential_envelope(self):
        engine = CampaignEngine(jobs=1, backoff=0.5, reseed_base=42)
        for attempt in range(1, 8):
            delay = engine._retry_delay(attempt)
            assert 0.0 <= delay <= 0.5 * 2 ** (attempt - 1)

    def test_jitter_is_seeded_and_reproducible(self):
        first = CampaignEngine(jobs=1, backoff=0.5, reseed_base=42)
        second = CampaignEngine(jobs=1, backoff=0.5, reseed_base=42)
        assert ([first._retry_delay(a) for a in range(1, 6)]
                == [second._retry_delay(a) for a in range(1, 6)])

    def test_jitter_actually_varies(self):
        engine = CampaignEngine(jobs=1, backoff=0.5, reseed_base=42)
        samples = {engine._retry_delay(3) for _ in range(16)}
        assert len(samples) > 1  # full jitter, not a fixed schedule

    def test_zero_backoff_means_zero_delay(self):
        assert CampaignEngine(jobs=1, backoff=0.0)._retry_delay(5) == 0.0


class TestCooperativeDrain:
    def test_request_stop_drains_serial_campaign(self, tmp_path):
        engine = CampaignEngine(jobs=1, db=tmp_path / "c.sqlite")

        def stop_after_first(record):
            engine.request_stop()

        report = engine.run(_tasks([2, 3, 4]), on_record=stop_after_first)
        assert report.records[0].ok
        for record in report.records[1:]:
            assert record.status == "skipped"
            assert "cancelled" in record.error
        assert int(engine.registry.counter("cancelled").value) == 2
        with CampaignDB(tmp_path / "c.sqlite") as db:
            assert db.counts() == {"ok": 1}  # cancellations are not runs

    def test_request_stop_drains_parallel_campaign(self, tmp_path):
        engine = CampaignEngine(jobs=2, db=tmp_path / "c.sqlite")
        engine.request_stop()
        report = engine.run(_tasks([2, 3, 4]))
        assert all(r.status == "skipped" for r in report.records)
        with CampaignDB(tmp_path / "c.sqlite") as db:
            assert len(db) == 0


_SIGINT_SCRIPT = """
import multiprocessing, sys, time
from repro.campaign import CampaignEngine, CampaignTask

def slow(i):
    time.sleep(30)
    return i

engine = CampaignEngine(jobs=2, db=sys.argv[1])
tasks = [CampaignTask(name=f"slow_{i}", fn=slow, kwargs={"i": i})
         for i in range(4)]
print("campaign-start", flush=True)
try:
    engine.run(tasks)
except KeyboardInterrupt:
    print(f"orphans={len(multiprocessing.active_children())}", flush=True)
    sys.exit(130)
print("not-interrupted", flush=True)
sys.exit(0)
"""


@pytest.mark.slow
class TestCoordinatorSignals:
    def test_sigint_reaps_workers_and_exits_130(self, tmp_path):
        """Ctrl-C on a parallel campaign must kill the workers, flush the
        DB, and re-raise — not leak orphan processes or corrupt sqlite."""
        import subprocess
        import sys as _sys

        script = tmp_path / "campaign_sigint.py"
        script.write_text(_SIGINT_SCRIPT)
        db_path = tmp_path / "c.sqlite"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            pathlib.Path(engine_mod.__file__).resolve().parents[2]
        )
        proc = subprocess.Popen(
            [_sys.executable, str(script), str(db_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            assert "campaign-start" in proc.stdout.readline()
            time.sleep(1.0)  # let the workers spawn and pick up tasks
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=60) == 130
        finally:
            if proc.poll() is None:
                proc.kill()
        output = proc.stdout.read()
        assert "orphans=0" in output
        assert "not-interrupted" not in output
        # The DB survived the interrupt: intact schema, no cancelled rows
        # persisted as runs.
        with CampaignDB(db_path) as db:
            assert db.counts().get("ok", 0) == len(db)
