"""Property tests for core secure-memory invariants.

These pin down the relationships everything else is built on:

* a tree leaf minor counts exactly its counter block's write-backs;
* the root counter counts all write-backs under it;
* metadata caches never exceed capacity under arbitrary traffic;
* domain isolation: traffic in one domain never materialises nodes in
  another domain's tree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.proc import SecureProcessor


def make_proc(**overrides):
    overrides.setdefault("protected_size", 32 * MIB)
    overrides.setdefault("functional_crypto", False)
    return SecureProcessor(SecureProcessorConfig.sct_default(**overrides))


class TestLeafCountingProperty:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # page
                st.integers(min_value=0, max_value=63),  # block in page
                st.booleans(),  # flush metadata afterwards?
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_leaf_minor_equals_counter_writebacks(self, operations):
        """Under any write/cleanse interleaving, each L0 minor equals the
        number of times its counter block was written back dirty."""
        proc = make_proc()
        writebacks = {}

        for page, block, cleanse in operations:
            addr = page * PAGE_SIZE + block * 64
            proc.write_through(addr, b"p")
            proc.drain_writes()
            if cleanse:
                # Count dirty counter blocks leaving the chip.
                before = dict(writebacks)
                cb_indexes = {
                    proc.layout.counter_block_index(p * PAGE_SIZE)
                    for p in range(6)
                }
                for cb in cb_indexes:
                    cb_addr = proc.layout.counter_block_addr_of_index(cb)
                    if proc.metadata_cache.is_dirty(cb_addr):
                        writebacks[cb] = writebacks.get(cb, 0) + 1
                proc.mee.flush_metadata_cache(proc.cycle)
                del before
        proc.mee.flush_metadata_cache(proc.cycle)
        # One final sweep: whatever was dirty just got written back; since
        # we cannot observe inside flush, recompute expectation directly
        # from the tree and compare against >= writebacks counted.
        for cb, count in writebacks.items():
            assert proc.mee.tree.leaf_parent_value(cb) >= count

    def test_exact_counting_with_explicit_cleanses(self):
        proc = make_proc()
        cb = proc.layout.counter_block_index(0)
        for expected in range(1, 6):
            proc.write_through(0, b"x")
            proc.drain_writes()
            proc.mee.flush_metadata_cache(proc.cycle)
            assert proc.mee.tree.leaf_parent_value(cb) == expected

    def test_root_counter_aggregates_everything(self):
        proc = make_proc()
        total = 0
        for page in range(4):
            for _ in range(3):
                proc.write_through(page * PAGE_SIZE, b"y")
                proc.drain_writes()
                proc.mee.flush_metadata_cache(proc.cycle)
                total += 1
        # Every metadata flush percolates one update chain to the root.
        assert proc.mee.tree.root_counter(0) >= total


class TestCacheCapacityProperty:
    @given(
        st.lists(st.integers(min_value=0, max_value=4000), min_size=1, max_size=150)
    )
    @settings(max_examples=15, deadline=None)
    def test_metadata_cache_bounded_under_traffic(self, block_ids):
        proc = make_proc()
        limit = proc.metadata_cache.num_sets * proc.metadata_cache.ways
        for block_id in block_ids:
            addr = (block_id * 64) % proc.layout.data_size
            proc.flush(addr)
            proc.read(addr)
            assert proc.metadata_cache.occupancy() <= limit


class TestDomainIsolationProperty:
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40))
    @settings(max_examples=10, deadline=None)
    def test_domains_never_share_materialised_nodes(self, pages):
        proc = make_proc(isolated_trees=True)
        # Even pages -> domain 1, odd -> domain 2.
        for page in set(pages):
            proc.mee.set_page_domain(page, 1 if page % 2 == 0 else 2)
        for page in pages:
            addr = page * PAGE_SIZE
            proc.flush(addr)
            proc.read(addr)
        tree1 = proc.mee._domain_trees.get(1)
        tree2 = proc.mee._domain_trees.get(2)
        if tree1 is not None and tree2 is not None:
            assert tree1 is not tree2
            # Materialised node sets are disjoint per construction, but the
            # important observable is: no node block of domain 1 is cached
            # under domain 2's address tag (and vice versa).
            for level, index in list(tree1._nodes)[:5]:
                addr1 = proc.mee._tag_node_addr(
                    proc.layout.node_addr(level, index), 1
                )
                addr2 = proc.mee._tag_node_addr(
                    proc.layout.node_addr(level, index), 2
                )
                assert addr1 != addr2
