"""Tests for the hardened experiment runner."""

import threading
import time

import pytest

from repro.runner import (
    BatchReport,
    ExperimentRunner,
    TaskRecord,
    TaskSpec,
    TaskTimeout,
    load_manifest,
)
from repro.runner.core import _accepts_seed, _call_with_timeout


class TestTimeouts:
    def test_fast_task_completes(self):
        assert _call_with_timeout(lambda: 41 + 1, {}, timeout=5.0) == 42

    def test_slow_task_raises(self):
        with pytest.raises(TaskTimeout):
            _call_with_timeout(lambda: time.sleep(2), {}, timeout=0.05)

    def test_no_timeout_means_no_alarm(self):
        assert _call_with_timeout(lambda: "done", {}, timeout=None) == "done"

    def test_exceptions_pass_through(self):
        with pytest.raises(KeyError):
            _call_with_timeout(lambda: {}["missing"], {}, timeout=5.0)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_thread_fallback_when_not_main_thread(self):
        # Off the main thread SIGALRM is unavailable; the worker-thread
        # fallback must still enforce the budget.
        box = {}

        def off_main():
            runner = ExperimentRunner(timeout=0.05)
            box["report"] = runner.run(
                [TaskSpec("slow", lambda: time.sleep(2))]
            )

        worker = threading.Thread(target=off_main)
        worker.start()
        worker.join(10)
        assert box["report"].records[0].status == "timeout"

    def test_thread_fallback_records_the_leaked_thread(self, recwarn):
        # The abandoned worker cannot be killed: the record must say so
        # and the runner must warn (once), since the leaked thread may
        # keep mutating shared state.
        box = {}

        def off_main():
            runner = ExperimentRunner(timeout=0.05)
            box["report"] = runner.run([
                TaskSpec("slow1", lambda: time.sleep(1.0)),
                TaskSpec("slow2", lambda: time.sleep(1.0)),
            ])

        worker = threading.Thread(target=off_main)
        worker.start()
        worker.join(10)
        records = box["report"].records
        assert all(r.status == "timeout" for r in records)
        for record in records:
            assert "abandoned daemon worker thread" in record.detail
            assert "runner-task-" in record.detail
        leak_warnings = [
            w for w in recwarn.list
            if issubclass(w.category, RuntimeWarning)
            and "thread-fallback" in str(w.message)
        ]
        assert len(leak_warnings) == 1  # once per runner, not per task

    def test_sigalrm_timeout_leaks_nothing(self):
        runner = ExperimentRunner(timeout=0.05)
        report = runner.run([TaskSpec("slow", lambda: time.sleep(1.0))])
        record = report.records[0]
        assert record.status == "timeout"
        assert record.detail == ""  # main thread: alarm path, no leak


class TestRetries:
    def test_eventual_success_with_backoff(self):
        attempts = []
        sleeps = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "ok"

        runner = ExperimentRunner(retries=3, backoff=0.5, sleep=sleeps.append)
        report = runner.run([TaskSpec("flaky", flaky)])
        record = report.records[0]
        assert record.ok and record.attempts == 3
        assert sleeps == [0.5, 1.0]  # exponential

    def test_retries_exhausted(self):
        runner = ExperimentRunner(retries=2, backoff=0.0)
        report = runner.run(
            [TaskSpec("doomed", lambda: (_ for _ in ()).throw(ValueError("no")))]
        )
        record = report.records[0]
        assert record.status == "failed"
        assert record.attempts == 3
        assert "ValueError" in record.error
        assert "ValueError" in record.detail

    def test_retry_reseeds_when_fn_accepts_seed(self):
        seen = []

        def experiment(seed=None):
            seen.append(seed)
            if len(seen) < 3:
                raise RuntimeError("unlucky roll")
            return seed

        runner = ExperimentRunner(retries=3, backoff=0.0, reseed_base=500)
        report = runner.run([TaskSpec("exp", experiment)])
        # First attempt uses the experiment's own default; retries reseed.
        assert seen == [None, 501, 502]
        assert report.records[0].seed == 502

    def test_no_seed_injection_without_parameter(self):
        calls = []

        def experiment():
            calls.append(1)
            if len(calls) < 2:
                raise RuntimeError("flake")
            return "ok"

        runner = ExperimentRunner(retries=2, backoff=0.0, reseed_base=500)
        assert runner.run([TaskSpec("exp", experiment)]).records[0].ok

    def test_accepts_seed_detection(self):
        assert _accepts_seed(lambda seed=0: None)
        assert _accepts_seed(lambda **kwargs: None)
        assert not _accepts_seed(lambda bits=1: None)


class TestIsolationAndReporting:
    def test_crash_does_not_kill_batch(self):
        runner = ExperimentRunner()
        report = runner.run(
            [
                TaskSpec("boom", lambda: 1 / 0),
                TaskSpec("fine", lambda: "result"),
            ]
        )
        assert report.status == "partial"
        assert report.record("boom").status == "failed"
        assert "ZeroDivisionError" in report.record("boom").error
        assert report.record("fine").result == "result"

    def test_fail_fast_skips_the_rest(self):
        ran = []
        runner = ExperimentRunner(fail_fast=True)
        report = runner.run(
            [
                TaskSpec("boom", lambda: 1 / 0),
                TaskSpec("later", lambda: ran.append(1)),
            ]
        )
        assert report.record("later").status == "skipped"
        assert not ran

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ExperimentRunner().run(
                [TaskSpec("x", lambda: 1), TaskSpec("x", lambda: 2)]
            )

    def test_status_levels(self):
        assert BatchReport(records=[]).status == "pass"
        ok = TaskRecord(name="a", status="ok")
        bad = TaskRecord(name="b", status="failed")
        assert BatchReport(records=[ok]).status == "pass"
        assert BatchReport(records=[ok, bad]).status == "partial"
        assert BatchReport(records=[bad]).status == "fail"

    def test_summary_mentions_every_task(self):
        runner = ExperimentRunner()
        report = runner.run(
            [TaskSpec("alpha", lambda: 1), TaskSpec("beta", lambda: 1 / 0)]
        )
        text = report.summary()
        assert "alpha" in text and "beta" in text
        assert "partial" in text

    def test_invalid_runner_arguments(self):
        with pytest.raises(ValueError):
            ExperimentRunner(retries=-1)
        with pytest.raises(ValueError):
            ExperimentRunner(backoff=-0.1)


class TestManifest:
    def test_manifest_written_after_each_task(self, tmp_path):
        manifest = tmp_path / "m.json"
        seen = []

        def check():
            seen.append(load_manifest(manifest))
            return "ok"

        runner = ExperimentRunner(manifest_path=manifest)
        runner.run([TaskSpec("first", lambda: 1), TaskSpec("second", check)])
        # By the time "second" runs, "first" is already checkpointed.
        assert "first" in seen[0] and seen[0]["first"].ok
        records = load_manifest(manifest)
        assert {name for name in records} == {"first", "second"}

    def test_resume_skips_ok_and_reruns_failures(self, tmp_path):
        manifest = tmp_path / "m.json"
        runner = ExperimentRunner(manifest_path=manifest)
        runner.run([TaskSpec("good", lambda: 1), TaskSpec("bad", lambda: 1 / 0)])

        ran = []
        resumed = ExperimentRunner(manifest_path=manifest, resume=True)
        report = resumed.run(
            [
                TaskSpec("good", lambda: ran.append("good")),
                TaskSpec("bad", lambda: ran.append("bad") or "fixed"),
            ]
        )
        assert ran == ["bad"]
        assert report.record("good").cached
        assert not report.record("bad").cached
        assert report.status == "pass"

    def test_without_resume_everything_reruns(self, tmp_path):
        manifest = tmp_path / "m.json"
        ExperimentRunner(manifest_path=manifest).run([TaskSpec("t", lambda: 1)])
        ran = []
        ExperimentRunner(manifest_path=manifest).run(
            [TaskSpec("t", lambda: ran.append(1))]
        )
        assert ran == [1]

    def test_corrupt_manifest_loads_empty(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        assert load_manifest(path) == {}
        path.write_text('{"version": 99, "tasks": {}}')
        assert load_manifest(path) == {}
        assert load_manifest(tmp_path / "missing.json") == {}

    def test_record_round_trip(self):
        record = TaskRecord(
            name="r", status="timeout", attempts=2, elapsed=1.5,
            error="timed out", seed=7,
        )
        clone = TaskRecord.from_dict(record.to_dict())
        assert clone.name == "r" and clone.status == "timeout"
        assert clone.attempts == 2 and clone.seed == 7
