"""Tests for the functional crypto substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BLOCK_SIZE
from repro.crypto import CounterModeEngine, MacEngine, keyed_prf, node_hash

KEY = b"k" * 32


class TestPrf:
    def test_deterministic(self):
        assert keyed_prf(KEY, "a", 1) == keyed_prf(KEY, "a", 1)

    def test_key_separation(self):
        assert keyed_prf(b"k1", "a") != keyed_prf(b"k2", "a")

    def test_component_separation(self):
        # Length-prefixing must prevent concatenation collisions.
        assert keyed_prf(KEY, b"ab", b"c") != keyed_prf(KEY, b"a", b"bc")
        assert keyed_prf(KEY, 1, 23) != keyed_prf(KEY, 12, 3)

    def test_out_len(self):
        assert len(keyed_prf(KEY, "x", out_len=16)) == 16
        with pytest.raises(ValueError):
            keyed_prf(KEY, "x", out_len=65)

    def test_node_hash_is_64bit(self):
        assert 0 <= node_hash(KEY, "n", 1, 2) < (1 << 64)

    @given(st.integers(min_value=0), st.integers(min_value=0))
    @settings(max_examples=50)
    def test_distinct_tuples_distinct_hashes(self, a, b):
        if a != b:
            assert node_hash(KEY, a) != node_hash(KEY, b)


class TestCounterMode:
    def setup_method(self):
        self.engine = CounterModeEngine(KEY)

    def test_roundtrip(self):
        plaintext = bytes(range(64))
        ciphertext = self.engine.encrypt(plaintext, 0x1000, 5)
        assert ciphertext != plaintext
        assert self.engine.decrypt(ciphertext, 0x1000, 5) == plaintext

    def test_counter_uniqueness(self):
        plaintext = bytes(64)
        c1 = self.engine.encrypt(plaintext, 0x1000, 1)
        c2 = self.engine.encrypt(plaintext, 0x1000, 2)
        assert c1 != c2  # same data, different counter -> different ct

    def test_spatial_uniqueness(self):
        plaintext = bytes(64)
        c1 = self.engine.encrypt(plaintext, 0x1000, 1)
        c2 = self.engine.encrypt(plaintext, 0x2000, 1)
        assert c1 != c2  # address is part of the seed

    def test_wrong_counter_garbles(self):
        plaintext = bytes(range(64))
        ciphertext = self.engine.encrypt(plaintext, 0x1000, 5)
        assert self.engine.decrypt(ciphertext, 0x1000, 6) != plaintext

    def test_chunk_level_seeds(self):
        # Two chunks within one block must use different pads.
        pad = self.engine.one_time_pad(0x1000, 1)
        assert pad[:16] != pad[16:32]

    def test_block_size_enforced(self):
        with pytest.raises(ValueError):
            self.engine.encrypt(b"short", 0x1000, 1)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            CounterModeEngine(b"")

    @given(st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
           st.integers(min_value=0, max_value=2**64),
           st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=30)
    def test_roundtrip_property(self, plaintext, counter, block):
        addr = block * 64
        ct = self.engine.encrypt(plaintext, addr, counter)
        assert self.engine.decrypt(ct, addr, counter) == plaintext


class TestMac:
    def setup_method(self):
        self.mac = MacEngine(KEY)

    def test_verify_accepts_valid(self):
        tag = self.mac.compute(b"ct", 5, 0x1000)
        assert self.mac.verify(tag, b"ct", 5, 0x1000)

    def test_detects_data_spoof(self):
        tag = self.mac.compute(b"ct", 5, 0x1000)
        assert not self.mac.verify(tag, b"CT", 5, 0x1000)

    def test_detects_splice(self):
        tag = self.mac.compute(b"ct", 5, 0x1000)
        assert not self.mac.verify(tag, b"ct", 5, 0x2000)

    def test_detects_replay_via_counter(self):
        tag_old = self.mac.compute(b"ct", 5, 0x1000)
        assert not self.mac.verify(tag_old, b"ct", 6, 0x1000)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            MacEngine(b"")
