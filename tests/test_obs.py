"""Tests for fleet span tracing and telemetry (``repro.obs``).

Four layers: unit tests on the span primitives (NULL-span discipline,
parent resolution, recorder bookkeeping), export/validation round-trips,
telemetry math, and end-to-end propagation — a ``--jobs 2`` campaign and
an in-process service job must each yield one fully-closed span tree
whose trace id is uniform from the entry point down to the oracle, even
across worker crashes and journal resumes.
"""

import asyncio
import json
import os
import time

import pytest

from repro import obs
from repro.campaign import (
    CampaignDB,
    CampaignEngine,
    CampaignTask,
    TEST_CRASH_ENV,
)
from repro.cli import main
from repro.obs import (
    NULL_SPAN,
    SpanContext,
    SpanRecorder,
    fleet_prometheus_text,
    percentile,
    render_report,
    summarize,
    validate_spans,
)
from repro.runner.core import TaskRecord
from repro.service import DONE, QUEUED, TERMINAL_STATES, LeakcheckService, http_request


@pytest.fixture(autouse=True)
def _no_global_recorder():
    """Every test starts and ends with tracing off."""
    obs.disable()
    yield
    obs.disable()


# Module-level so they pickle across the campaign worker pipe.
def compute(x, seed=0):
    return {"x": x, "seed": seed}


def always_fail():
    raise RuntimeError("doomed by design")


# -- span primitives -------------------------------------------------------


class TestNullSpanDiscipline:
    def test_start_span_returns_the_shared_singleton_when_off(self):
        assert obs.active() is None
        first = obs.start_span("a", kind="k", attrs={"x": 1})
        second = obs.start_span("b")
        assert first is NULL_SPAN and second is NULL_SPAN

    def test_null_span_is_inert_and_falsy(self):
        with obs.start_span("a") as span:
            span.set("k", "v").set_many({"x": 1})
            span.outcome = "failed"
        assert not span
        assert span.attrs == {}
        span.end("whatever")  # no-op, no recorder touched
        assert obs.current_context() is None

    def test_engine_off_records_nothing(self, tmp_path):
        engine = CampaignEngine(jobs=1, db=tmp_path / "c.sqlite")
        report = engine.run([CampaignTask(name="t", fn=compute, kwargs={"x": 2})])
        assert report.status == "pass"
        assert obs.active() is None


class TestSpanLifecycle:
    def test_nesting_follows_the_context_local_current_span(self):
        recorder = obs.enable()
        with obs.start_span("outer", kind="outer") as outer:
            assert obs.current_context() is outer.context
            with obs.start_span("inner", kind="inner") as inner:
                assert inner.parent_id == outer.context.span_id
                assert inner.context.trace_id == outer.context.trace_id
        spans = recorder.drain()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert all(s["outcome"] == "ok" for s in spans)

    def test_explicit_parent_beats_the_current_span(self):
        recorder = obs.enable()
        remote = SpanContext(obs.new_trace_id(), "feedbeeffeedbeef")
        with obs.start_span("current"):
            child = recorder.start_span("child", parent=remote)
            child.end()
        child_dict = recorder.drain()[0]
        assert child_dict["trace"] == remote.trace_id
        assert child_dict["parent"] == remote.span_id

    def test_forced_trace_id_roots_a_new_trace(self):
        recorder = obs.enable()
        trace = obs.new_trace_id()
        recorder.start_span("job", trace_id=trace).end()
        span = recorder.drain()[0]
        assert span["trace"] == trace and span["parent"] is None

    def test_exception_marks_failed_and_captures_the_error(self):
        recorder = obs.enable()
        with pytest.raises(ValueError):
            with obs.start_span("boom"):
                raise ValueError("bad input")
        span = recorder.drain()[0]
        assert span["outcome"] == "failed"
        assert "ValueError: bad input" in span["attrs"]["error"]

    def test_preset_outcome_survives_clean_exit_and_end_is_idempotent(self):
        recorder = obs.enable()
        with obs.start_span("t") as span:
            span.outcome = "timeout"
        span.end("ok")  # second end must not re-record or override
        spans = recorder.drain()
        assert len(spans) == 1 and spans[0]["outcome"] == "timeout"

    def test_span_context_round_trips_over_a_pipe_payload(self):
        ctx = SpanContext(obs.new_trace_id(), obs.new_span_id())
        assert SpanContext.from_dict(ctx.to_dict()).to_dict() == ctx.to_dict()
        assert SpanContext.from_dict(None) is None
        assert SpanContext.from_dict({"trace": "", "span": "x"}) is None


class TestRecorder:
    def test_drain_by_trace_leaves_other_traces_in_place(self):
        recorder = SpanRecorder()
        a = recorder.start_span("a")
        b = recorder.start_span("b")
        a.end()
        b.end()
        got = recorder.drain(trace_id=a.context.trace_id)
        assert [s["name"] for s in got] == ["a"]
        assert [s["name"] for s in recorder.drain()] == ["b"]

    def test_recent_window_survives_a_drain(self):
        recorder = SpanRecorder(recent_capacity=8)
        recorder.start_span("x").end()
        recorder.drain()
        assert [s["name"] for s in recorder.recent()] == ["x"]

    def test_capacity_drops_oldest_and_counts_them(self):
        recorder = SpanRecorder(capacity=2)
        for i in range(5):
            recorder.start_span(f"s{i}").end()
        assert recorder.dropped == 3
        assert [s["name"] for s in recorder.finished_spans()] == ["s3", "s4"]

    def test_adopt_absorbs_only_schema_v1_dicts(self):
        recorder = SpanRecorder()
        donor = SpanRecorder()
        donor.start_span("shipped").end()
        shipped = donor.drain()
        count = recorder.adopt(shipped + [{"v": 99}, "junk"])
        assert count == 1
        assert recorder.finished_spans() == shipped


# -- export + validation ---------------------------------------------------


def _make_tree(recorder):
    with recorder.start_span("root", kind="cli") as root:
        with recorder.start_span("mid", kind="campaign.task"):
            recorder.start_span("leaf", kind="task.attempt").end()
    return root.context.trace_id


class TestExportAndValidate:
    def test_jsonl_round_trip_validates_clean(self, tmp_path):
        recorder = obs.enable()
        _make_tree(recorder)
        path = tmp_path / "spans.jsonl"
        assert obs.write_spans_jsonl(recorder.drain(), str(path)) == 3
        spans = obs.read_spans_jsonl(str(path))
        assert validate_spans(spans, single_trace=True) == []

    def test_validation_catches_the_broken_shapes(self):
        recorder = obs.enable()
        _make_tree(recorder)
        spans = recorder.drain()
        spans[0]["end"] = spans[0]["start"] - 1.0
        spans[1]["parent"] = "f" * 16
        spans[2]["trace"] = obs.new_trace_id()
        dup = dict(spans[0])
        errors = validate_spans(spans + [dup, {"v": 1}], single_trace=True)
        text = "\n".join(errors)
        assert "end < start" in text
        assert "not in export" in text
        assert "duplicate span id" in text
        assert "missing keys" in text
        assert "single trace" in text

    def test_chrome_export_normalises_time_and_tracks_processes(self):
        recorder = obs.enable()
        _make_tree(recorder)
        doc = obs.spans_to_chrome(recorder.drain())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == 3
        assert min(e["ts"] for e in slices) == 0.0
        assert all(e["dur"] >= 0.0 for e in slices)
        assert {e["args"]["name"] for e in meta} == {f"pid {os.getpid()}"}
        # all three spans share one trace, hence one chrome thread lane
        assert len({e["tid"] for e in slices}) == 1


# -- telemetry maths -------------------------------------------------------


def _span(kind, start, end, outcome="ok", attrs=None, trace="t" * 32):
    return {
        "v": 1, "trace": trace, "span": obs.new_span_id(), "parent": None,
        "name": kind, "kind": kind, "start": start, "end": end,
        "outcome": outcome, "pid": 1, "attrs": attrs or {},
    }


class TestTelemetry:
    def test_percentile_is_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.95) == 4.0
        assert percentile(values, 1.0) == 4.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([], 0.5) == 0.0

    def test_summarize_counts_retries_cache_hits_and_queue_wait(self):
        spans = [
            _span("task.attempt", 0.0, 1.0),
            _span("task.attempt", 0.0, 1.0, outcome="failed",
                  attrs={"attempt": 2}),
            _span("campaign.task", 0.0, 1.0, attrs={"cache": "hit"}),
            _span("task.queue", 0.0, 0.5),
            _span("task.queue", 0.0, 0.25),
        ]
        summary = summarize(spans)
        assert summary.spans == 5 and summary.traces == 1
        assert summary.retries == 1
        assert summary.cache_hits == 1
        assert summary.queued == 2
        assert summary.queue_wait_max_s == pytest.approx(0.5)
        assert summary.outcomes["failed"] == 1
        attempt = summary.phases["task.attempt"]
        assert attempt.count == 2 and attempt.failed == 1

    def test_summarize_flags_stragglers(self):
        spans = [_span("task.attempt", 0.0, 0.1) for _ in range(9)]
        spans.append(_span("task.attempt", 0.0, 5.0, attrs={"task": "slow"}))
        summary = summarize(spans)
        assert len(summary.stragglers) == 1
        assert summary.stragglers[0]["task"] == "slow"
        assert summary.stragglers[0]["factor"] > 4.0

    def test_fleet_prometheus_text_is_well_formed(self):
        spans = [_span("task.attempt", 0.0, 1.0),
                 _span("task.queue", 0.0, 0.5)]
        text = fleet_prometheus_text(summarize(spans))
        assert "# TYPE repro_obs_spans_total counter" in text
        assert "# TYPE repro_obs_phase_seconds gauge" in text
        assert "repro_obs_spans_total 2" in text
        assert 'repro_obs_phase_seconds{kind="task.attempt",quantile="0.5"}' in text
        assert 'repro_obs_outcome_total{outcome="ok"} 2' in text

    def test_render_report_reads_like_a_table(self):
        spans = [_span("task.attempt", 0.0, 1.0)]
        report = render_report(summarize(spans))
        assert "spans 1" in report and "task.attempt" in report


# -- satellite: task record timestamps ------------------------------------


class TestTaskRecordTimestamps:
    def test_round_trip_and_queue_wait(self):
        record = TaskRecord(name="t", status="ok", elapsed=1.0,
                            queued_at=10.0, started_at=12.5, finished_at=14.0)
        assert record.queue_wait == pytest.approx(2.5)
        clone = TaskRecord.from_dict(record.to_dict())
        assert (clone.queued_at, clone.started_at, clone.finished_at) == (
            10.0, 12.5, 14.0)

    def test_unset_timestamps_mean_zero_wait(self):
        assert TaskRecord(name="t", status="ok", elapsed=0.0).queue_wait == 0.0

    def test_engine_stamps_lifecycle_times(self, tmp_path):
        engine = CampaignEngine(jobs=1, db=tmp_path / "c.sqlite")
        record = engine.run(
            [CampaignTask(name="t", fn=compute, kwargs={"x": 1})]
        ).records[0]
        assert record.queued_at > 0
        assert record.finished_at >= record.started_at >= record.queued_at


# -- end-to-end: campaign engine ------------------------------------------


def _kind_counts(spans):
    counts = {}
    for span in spans:
        counts[span["kind"]] = counts.get(span["kind"], 0) + 1
    return counts


class TestEngineTracing:
    def test_parallel_campaign_yields_one_closed_tree(self, tmp_path):
        recorder = obs.enable()
        engine = CampaignEngine(jobs=2, db=tmp_path / "c.sqlite")
        tasks = [CampaignTask(name=f"t{i}", fn=compute, kwargs={"x": i})
                 for i in range(4)]
        report = engine.run(tasks)
        assert report.status == "pass"
        spans = recorder.drain()
        assert validate_spans(spans, single_trace=True) == []
        counts = _kind_counts(spans)
        assert counts["campaign.run"] == 1
        assert counts["campaign.task"] == 4
        assert counts["task.attempt"] == 4
        assert counts["task.queue"] == 4
        pids = {s["pid"] for s in spans if s["kind"] == "task.attempt"}
        assert len(pids) == 2, "attempts should come from two worker processes"
        assert "queue-wait" in engine.summary_line()

    def test_cache_hits_are_marked_and_instant(self, tmp_path):
        db = tmp_path / "c.sqlite"
        CampaignEngine(jobs=1, db=db).run(
            [CampaignTask(name="t", fn=compute, kwargs={"x": 1})])
        recorder = obs.enable()
        CampaignEngine(jobs=1, db=db).run(
            [CampaignTask(name="t", fn=compute, kwargs={"x": 1})])
        cached = [s for s in recorder.drain() if s["kind"] == "campaign.task"]
        assert cached[0]["attrs"]["cache"] == "hit"

    def test_crashed_worker_still_closes_the_parent_span(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "crash.marker"
        monkeypatch.setenv(TEST_CRASH_ENV, f"victim={marker}")
        recorder = obs.enable()
        engine = CampaignEngine(jobs=2, retries=0, backoff=0.01,
                                db=tmp_path / "c.sqlite")
        report = engine.run([
            CampaignTask(name="victim", fn=compute, kwargs={"x": 1}),
            CampaignTask(name="fine", fn=compute, kwargs={"x": 2}),
        ])
        assert marker.exists()
        assert report.record("victim").status == "failed"
        spans = recorder.drain()
        assert validate_spans(spans, single_trace=True) == []
        victim = [s for s in spans if s["kind"] == "campaign.task"
                  and s["attrs"].get("task") == "victim"]
        assert victim and victim[0]["outcome"] == "failed"
        # The worker died before shipping its span: the coordinator
        # synthesizes the attempt from its own clocks instead.
        synthesized = [s for s in spans if s["kind"] == "task.attempt"
                       and s["attrs"].get("synthesized")]
        assert synthesized and synthesized[0]["parent"] == victim[0]["span"]

    def test_retry_produces_one_attempt_span_per_try(self, tmp_path):
        recorder = obs.enable()
        engine = CampaignEngine(jobs=2, retries=1, backoff=0.01,
                                db=tmp_path / "c.sqlite")
        report = engine.run([CampaignTask(name="doomed", fn=always_fail)])
        assert report.record("doomed").attempts == 2
        attempts = [s for s in recorder.drain() if s["kind"] == "task.attempt"]
        assert sorted(s["attrs"]["attempt"] for s in attempts) == [1, 2]
        assert all(s["outcome"] == "failed" for s in attempts)


# -- end-to-end: service ---------------------------------------------------


async def _poll_terminal(host, port, job_id, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, _, data = await http_request(host, port, "GET", f"/jobs/{job_id}")
        assert status == 200, data
        if data["state"] in TERMINAL_STATES:
            return data
        await asyncio.sleep(0.03)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestServiceTracing:
    def test_job_trace_nests_service_engine_and_oracle(self, tmp_path):
        db_path = tmp_path / "svc.sqlite"

        async def scenario():
            service = LeakcheckService(str(db_path), port=0, concurrency=1)
            await service.start()
            host, port = service.host, service.port
            spec = {"kind": "probe", "spec": {"ops": 200, "seed": 1}}
            status, _, job = await http_request(host, port, "POST", "/jobs", spec)
            assert status == 202 and job["trace_id"]
            final = await _poll_terminal(host, port, job["id"])
            assert final["state"] == DONE

            status, _, debug = await http_request(host, port, "GET", "/debug/spans")
            assert status == 200 and debug["enabled"]
            status, _, text = await http_request(host, port, "GET", "/metrics")
            assert "repro_obs_spans_total" in text
            await service.close()
            return job["trace_id"]

        trace = asyncio.run(scenario())
        with CampaignDB(str(db_path)) as db:
            spans = db.spans(trace)
        assert validate_spans(spans, single_trace=True) == []
        by_id = {s["span"]: s for s in spans}
        kinds = _kind_counts(spans)
        for kind in ("service.job", "job.queue", "job.run",
                     "campaign.run", "campaign.task", "task.attempt"):
            assert kinds.get(kind), f"missing {kind} in {sorted(kinds)}"
        run = next(s for s in spans if s["kind"] == "campaign.run")
        job_run = by_id[run["parent"]]
        assert job_run["kind"] == "job.run"
        assert by_id[job_run["parent"]]["kind"] == "service.job"

    def test_journal_resume_keeps_the_original_trace_id(self, tmp_path):
        db_path = tmp_path / "svc.sqlite"
        original = obs.new_trace_id()
        spec = {"ops": 150, "seed": 3}
        with CampaignDB(str(db_path)) as db:
            db.journal_put(
                job_id="abandoned1", kind="probe",
                spec=json.dumps(spec, sort_keys=True), state=QUEUED,
                trace=original,
            )

        async def scenario():
            # A restart after kill -9: the journal row is all that's left.
            service = LeakcheckService(str(db_path), port=0, concurrency=1)
            await service.start()
            final = await _poll_terminal(
                service.host, service.port, "abandoned1")
            assert final["state"] == DONE
            assert final["trace_id"] == original
            await service.close()

        asyncio.run(scenario())
        with CampaignDB(str(db_path)) as db:
            spans = db.spans(original)
        assert any(s["kind"] == "service.job" for s in spans)
        assert all(s["trace"] == original for s in spans)

    def test_drain_emits_a_structured_summary_and_checkpoint_spans(
        self, tmp_path
    ):
        db_path = tmp_path / "svc.sqlite"

        async def scenario():
            service = LeakcheckService(
                str(db_path), port=0, concurrency=1, drain_grace=5.0)
            await service.start()
            # Stall the single worker with one slow job, then queue a
            # second: draining must checkpoint the queued one.
            slow = {"kind": "probe", "spec": {"ops": 150_000, "seed": 1}}
            fast = {"kind": "probe", "spec": {"ops": 200, "seed": 2}}
            host, port = service.host, service.port
            await http_request(host, port, "POST", "/jobs", slow)
            status, _, queued = await http_request(host, port, "POST", "/jobs", fast)
            assert status == 202
            await asyncio.sleep(0.1)
            await service.close()
            line = service.drain_summary_line()
            assert line.startswith("drain: ")
            report = json.loads(line[len("drain: "):])
            assert report["checkpointed_jobs"] == [queued["id"]]
            return queued["trace_id"]

        trace = asyncio.run(scenario())
        with CampaignDB(str(db_path)) as db:
            spans = db.spans(trace)
        checkpoint = [s for s in spans if s["kind"] == "job.checkpoint"]
        assert checkpoint and checkpoint[0]["outcome"] == "checkpointed"


# -- CLI -------------------------------------------------------------------


class TestCliSpans:
    def test_spans_flag_writes_all_three_artifacts(self, capsys, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert main(["figures", "fig8", "--quick", "--out", str(tmp_path),
                     "--spans", str(out)]) == 0
        assert obs.active() is None, "CLI must tear the recorder down"
        spans = obs.read_spans_jsonl(str(out))
        assert validate_spans(spans, single_trace=True) == []
        kinds = _kind_counts(spans)
        assert kinds["cli"] == 1 and kinds["campaign.run"] == 1
        assert (tmp_path / "spans.jsonl.chrome.json").exists()
        prom = (tmp_path / "spans.jsonl.prom").read_text()
        assert "repro_obs_spans_total" in prom

    def test_spans_report_and_tail_read_the_export(self, capsys, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert main(["figures", "fig8", "--quick", "--out", str(tmp_path),
                     "--jobs", "2", "--spans", str(out)]) == 0
        capsys.readouterr()
        assert main(["spans", "report", str(out), "--strict"]) == 0
        report = capsys.readouterr().out
        assert "campaign.run" in report and "queue-wait" in report
        assert main(["spans", "tail", str(out), "--limit", "3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_spans_export_converts_between_formats(self, capsys, tmp_path):
        src = tmp_path / "spans.jsonl"
        assert main(["figures", "fig8", "--quick", "--out", str(tmp_path),
                     "--spans", str(src)]) == 0
        dst = tmp_path / "copy.jsonl"
        chrome = tmp_path / "copy.chrome.json"
        assert main(["spans", "export", str(src), "--out", str(dst),
                     "--chrome", str(chrome)]) == 0
        assert obs.read_spans_jsonl(str(dst)) == obs.read_spans_jsonl(str(src))
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_strict_report_fails_on_an_empty_log(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["spans", "report", str(empty), "--strict"]) == 1

    def test_report_reads_spans_from_a_campaign_db(self, capsys, tmp_path):
        db_path = tmp_path / "svc.sqlite"

        async def scenario():
            service = LeakcheckService(str(db_path), port=0, concurrency=1)
            await service.start()
            spec = {"kind": "probe", "spec": {"ops": 200, "seed": 1}}
            _, _, job = await http_request(
                service.host, service.port, "POST", "/jobs", spec)
            await _poll_terminal(service.host, service.port, job["id"])
            await service.close()

        asyncio.run(scenario())
        assert main(["spans", "report", str(db_path), "--strict"]) == 0
        assert "service.job" in capsys.readouterr().out
