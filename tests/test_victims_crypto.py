"""Tests for the RSA and mbedTLS victims and their trace-recovery math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator, Process
from repro.proc import SecureProcessor
from repro.victims.mbedtls import (
    KeyLoadVictim,
    TraceInconsistent,
    generate_keypair_inputs,
    recover_secret_from_trace,
)
from repro.victims.rsa import (
    RsaModexpVictim,
    generate_test_key,
    recover_exponent_from_ops,
)


def make_process():
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(
            protected_size=64 * MIB, functional_crypto=False
        )
    )
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE)
    return Process(proc, alloc, cleanse=True)


def drain(generator):
    """Run a victim generator; returns (payloads, return_value)."""
    payloads = []
    while True:
        try:
            payloads.append(next(generator))
        except StopIteration as stop:
            return payloads, stop.value


class TestRsaVictim:
    def setup_method(self):
        self.victim = RsaModexpVictim(make_process())

    def test_functions_on_distinct_pages(self):
        assert self.victim.square_frame != self.victim.multiply_frame

    def test_modexp_correct(self):
        _, result = drain(self.victim.modexp(7, 0b1011, 1000))
        assert result == pow(7, 0b1011, 1000)

    def test_operation_sequence_matches_bits(self):
        steps, _ = drain(self.victim.modexp(3, 0b101, 97))
        ops = [s.operation for s in steps]
        # 0b101: S M (msb), S (0), S M (1)
        assert ops == ["square", "multiply", "square", "square", "multiply"]

    def test_zero_exponent(self):
        steps, result = drain(self.victim.modexp(3, 0, 97))
        assert result == 1
        assert steps == []

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            drain(self.victim.modexp(3, 5, 0))
        with pytest.raises(ValueError):
            drain(self.victim.modexp(3, -1, 97))

    @given(st.integers(min_value=1, max_value=2**32), st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_modexp_matches_pow(self, exponent, modulus):
        victim = self.victim
        steps, result = drain(victim.modexp(5, exponent, modulus))
        assert result == pow(5, exponent, modulus)


class TestRsaRecovery:
    def test_recover_from_perfect_trace(self):
        victim = RsaModexpVictim(make_process())
        base, exponent, modulus = generate_test_key(96)
        steps, _ = drain(victim.modexp(base, exponent, modulus))
        assert recover_exponent_from_ops([s.operation for s in steps]) == exponent

    def test_malformed_trace_rejected(self):
        with pytest.raises(ValueError):
            recover_exponent_from_ops(["multiply"])

    @given(st.integers(min_value=1, max_value=2**64 - 1))
    @settings(max_examples=40, deadline=None)
    def test_recovery_roundtrip_property(self, exponent):
        victim = RsaModexpVictim(make_process())
        steps, _ = drain(victim.modexp(2, exponent, 10**9 + 7))
        assert recover_exponent_from_ops([s.operation for s in steps]) == exponent


class TestKeyLoadVictim:
    def setup_method(self):
        self.victim = KeyLoadVictim(make_process())

    def test_inverse_correct(self):
        e, phi = generate_keypair_inputs(bits=48, seed=1)
        _, d = drain(self.victim.mod_inverse(e, phi))
        assert (d * e) % phi == 1

    def test_ops_are_shift_or_sub(self):
        e, phi = generate_keypair_inputs(bits=32, seed=2)
        steps, _ = drain(self.victim.mod_inverse(e, phi))
        assert steps  # non-trivial trace
        assert {s.operation for s in steps} <= {"shift", "sub"}
        assert {s.detail for s in steps} <= {
            "shift_u",
            "shift_v",
            "sub_u",
            "sub_v",
        }

    def test_even_e_rejected(self):
        with pytest.raises(ValueError):
            drain(self.victim.mod_inverse(4, 9))

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            drain(self.victim.mod_inverse(3, 9))

    def test_small_inputs_rejected(self):
        with pytest.raises(ValueError):
            drain(self.victim.mod_inverse(0, 5))
        with pytest.raises(ValueError):
            drain(self.victim.mod_inverse(3, 1))

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, seed):
        e, phi = generate_keypair_inputs(bits=32, seed=seed)
        _, d = drain(self.victim.mod_inverse(e, phi))
        assert (d * e) % phi == 1
        assert 0 <= d < phi


class TestMbedtlsRecovery:
    def _trace(self, e, phi):
        victim = KeyLoadVictim(make_process())
        steps, _ = drain(victim.mod_inverse(e, phi))
        return [s.detail for s in steps]

    def test_recover_phi_from_trace(self):
        e, phi = generate_keypair_inputs(bits=64, seed=3)
        assert recover_secret_from_trace(self._trace(e, phi), e) == phi

    def test_recover_with_e_65537(self):
        e, phi = generate_keypair_inputs(bits=96, seed=7)
        assert e == 65537
        assert recover_secret_from_trace(self._trace(e, phi), e) == phi

    def test_garbage_trace_detected_or_wrong(self):
        e, phi = generate_keypair_inputs(bits=32, seed=4)
        trace = self._trace(e, phi)
        corrupted = ["shift_u"] * 200
        try:
            recovered = recover_secret_from_trace(corrupted, e)
        except TraceInconsistent:
            return
        assert recovered != phi

    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            recover_secret_from_trace(["wiggle"], 65537)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_recovery_property(self, seed):
        e, phi = generate_keypair_inputs(bits=48, seed=seed)
        assert recover_secret_from_trace(self._trace(e, phi), e) == phi

    def test_larger_secret(self):
        e, phi = generate_keypair_inputs(bits=256, seed=9)
        assert recover_secret_from_trace(self._trace(e, phi), e) == phi
