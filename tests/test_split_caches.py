"""Tests for the split counter/tree metadata-cache organisation."""

import pytest

from repro.attacks import MetaLeakT, MetadataEvictor
from repro.config import (
    GIB,
    KIB,
    PAGE_SIZE,
    CacheConfig,
    SecureProcessorConfig,
)
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def split_machine(protected_size=1 * GIB):
    config = SecureProcessorConfig.sct_default(
        protected_size=protected_size,
        functional_crypto=False,
        split_metadata_caches=True,
        tree_cache=CacheConfig("TreeCache", 128 * KIB, 8, 2),
    ).with_overrides(metadata_cache=CacheConfig("CtrCache", 128 * KIB, 8, 2))
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    return proc, allocator


class TestSplitStructure:
    def test_distinct_cache_objects(self):
        proc, _ = split_machine()
        assert proc.tree_metadata_cache is not proc.metadata_cache

    def test_combined_default_shares_object(self):
        proc = SecureProcessor(
            SecureProcessorConfig.sct_default(protected_size=64 * 1024 * 1024)
        )
        assert proc.tree_metadata_cache is proc.metadata_cache

    def test_blocks_land_in_their_cache(self):
        proc, _ = split_machine()
        proc.read(0x40000)
        counter_addr = proc.layout.counter_block_addr(0x40000)
        node_addr = proc.layout.node_addr_for_data(0x40000, 0)
        assert proc.metadata_cache.contains(counter_addr)
        assert not proc.metadata_cache.contains(node_addr)
        assert proc.tree_metadata_cache.contains(node_addr)
        assert not proc.tree_metadata_cache.contains(counter_addr)

    def test_roundtrip_still_correct(self):
        proc, _ = split_machine()
        proc.write_through(0x40000, b"split ok")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(0x40000)
        assert proc.read(0x40000).data[:8] == b"split ok"

    def test_invalidate_metadata_routes(self):
        proc, _ = split_machine()
        proc.read(0x40000)
        node_addr = proc.layout.node_addr_for_data(0x40000, 0)
        present, _ = proc.mee.invalidate_metadata(node_addr)
        assert present
        assert not proc.mee.metadata_cached(node_addr)


class TestSplitEviction:
    def test_leaf_alias_candidates_map_to_set(self):
        proc, allocator = split_machine()
        evictor = MetadataEvictor(proc, allocator, core=1)
        mapper = evictor.mapper
        tree_cache = proc.tree_metadata_cache
        node_addr = proc.layout.node_addr_for_data(0x40000, 0)
        target_set = tree_cache.set_index_of(node_addr)
        count = 0
        for block in mapper.iter_data_blocks_with_leaf_in_set(target_set):
            leaf = proc.layout.node_addr_for_data(block, 0)
            assert tree_cache.set_index_of(leaf) == target_set
            count += 1
            if count == 10:
                break
        assert count == 10

    def test_tree_node_evictable(self):
        proc, allocator = split_machine()
        evictor = MetadataEvictor(proc, allocator, core=1)
        victim = 0x40000
        proc.read(victim)
        node_addr = proc.layout.node_addr_for_data(victim, 0)
        assert evictor.is_cached(node_addr)
        evictor.evict((node_addr,))
        assert not evictor.is_cached(node_addr)

    def test_monitor_detects_across_split(self):
        proc, allocator = split_machine()
        victim_frame = allocator.alloc_specific(100)
        attack = MetaLeakT(proc, allocator, core=1)
        monitor = attack.monitor_for_page(victim_frame, level=0)
        for trial in range(8):
            monitor.m_evict()
            accessed = trial % 2 == 0
            if accessed:
                proc.flush(victim_frame * PAGE_SIZE)
                proc.read(victim_frame * PAGE_SIZE, core=0)
            _, seen = monitor.m_reload()
            assert seen == accessed

    def test_small_region_raises_clear_error(self):
        # Leaf-alias candidates are a tree-cache period apart; a small
        # region cannot host enough of them.
        proc, allocator = split_machine(protected_size=64 * 1024 * 1024)
        evictor = MetadataEvictor(proc, allocator, core=1)
        node_addr = proc.layout.node_addr_for_data(0x40000, 0)
        with pytest.raises(ValueError, match="tree cache"):
            evictor.evict((node_addr,))
