"""Tests for the ECC framing layer (preamble sync, Hamming, CRC, ARQ)."""

import pytest

from repro.attacks.framing import (
    DEFAULT_PAYLOAD_NIBBLES,
    PREAMBLE,
    crc8,
    decode_stream,
    encode_frame,
    frame_payload_bits,
    frame_wire_bits,
    hamming74_decode,
    hamming74_encode,
)
from repro.utils.rng import derive_rng


class TestHamming:
    def test_roundtrip_all_nibbles(self):
        for nibble in range(16):
            decoded, corrected = hamming74_decode(hamming74_encode(nibble))
            assert decoded == nibble
            assert corrected == 0

    def test_corrects_every_single_bit_error(self):
        for nibble in range(16):
            codeword = hamming74_encode(nibble)
            for position in range(7):
                corrupted = list(codeword)
                corrupted[position] ^= 1
                decoded, corrected = hamming74_decode(corrupted)
                assert decoded == nibble
                assert corrected == 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            hamming74_encode(16)
        with pytest.raises(ValueError):
            hamming74_decode([0, 1, 0])


class TestCrc8:
    def test_detects_single_flip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        reference = crc8(bits)
        for position in range(len(bits)):
            corrupted = list(bits)
            corrupted[position] ^= 1
            assert crc8(corrupted) != reference

    def test_empty_is_defined(self):
        assert crc8([]) == 0


class TestFrames:
    def test_wire_layout_arithmetic(self):
        assert frame_wire_bits(DEFAULT_PAYLOAD_NIBBLES) == len(PREAMBLE) + 7 * 7
        assert frame_payload_bits(DEFAULT_PAYLOAD_NIBBLES) == 16

    def test_roundtrip_every_sequence_number(self):
        rng = derive_rng(3, "framing-test")
        for seq in range(16):
            payload = [rng.randint(0, 1) for _ in range(16)]
            frames = decode_stream(encode_frame(seq, payload))
            assert len(frames) == 1
            assert frames[0].seq == seq
            assert list(frames[0].payload) == payload
            assert frames[0].crc_ok

    def test_single_bit_errors_are_corrected(self):
        payload = [1, 0] * 8
        wire = encode_frame(5, payload)
        # One flip in two different codewords (past the preamble).
        wire[len(PREAMBLE) + 1] ^= 1
        wire[len(PREAMBLE) + 7 + 3] ^= 1
        frames = decode_stream(wire)
        assert len(frames) == 1
        assert list(frames[0].payload) == payload
        assert frames[0].crc_ok
        assert frames[0].corrected_bits == 2

    def test_resync_after_dropped_head_symbols(self):
        """The receiver recovers framing after losing the stream's start."""
        payload = [0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1]
        wire = encode_frame(2, payload) + encode_frame(3, payload[::-1])
        for dropped in (1, 5, 11):
            frames = decode_stream(wire[dropped:])
            # The first frame is gone; the second must still be found.
            assert frames, f"no frames recovered after dropping {dropped} bits"
            last = frames[-1]
            assert last.seq == 3
            assert list(last.payload) == payload[::-1]
            assert last.crc_ok

    def test_resync_after_garbage_prefix(self):
        payload = [1] * 16
        rng = derive_rng(9, "framing-garbage")
        garbage = [rng.randint(0, 1) for _ in range(23)]
        frames = decode_stream(garbage + encode_frame(7, payload))
        assert any(f.seq == 7 and list(f.payload) == payload and f.crc_ok for f in frames)

    def test_corrupt_frame_fails_crc_but_keeps_scanning(self):
        payload = [0] * 16
        first = encode_frame(1, payload)
        # Trash two bits of one codeword: beyond Hamming's reach.
        first[len(PREAMBLE) + 2] ^= 1
        first[len(PREAMBLE) + 4] ^= 1
        stream = first + encode_frame(2, payload)
        frames = decode_stream(stream)
        assert any(f.seq == 2 and f.crc_ok for f in frames)

    def test_encode_validates_payload_length(self):
        with pytest.raises(ValueError):
            encode_frame(0, [1] * 17)
        # Short payloads zero-pad (last chunk of a message) and sequence
        # numbers wrap mod 16 (chunk index in a long message).
        assert encode_frame(0, [1] * 15) == encode_frame(0, [1] * 15 + [0])
        assert encode_frame(16, [1] * 16) == encode_frame(0, [1] * 16)
