"""Tests for the asynchronous covert channel, x-write counting, overhead."""

import pytest

from repro.analysis.overhead import _run_workload, overhead_study
from repro.attacks.async_covert import AsyncCovertChannelT
from repro.attacks.metaleak_c import MetaLeakC
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import PageAllocator
from repro.proc import SecureProcessor


def make_env(size=256 * MIB):
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(
            protected_size=size, functional_crypto=False
        )
    )
    alloc = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    return proc, alloc


class TestAsyncCovert:
    def test_free_running_transmission(self):
        proc, alloc = make_env()
        channel = AsyncCovertChannelT(proc, alloc, spy_rounds_per_bit=3)
        bits = [1, 0, 1, 1, 0, 0, 1, 0] * 3
        report = channel.transmit_async(bits)
        assert report.accuracy == 1.0
        assert report.windows_found >= len(bits)

    def test_spy_oversamples(self):
        proc, alloc = make_env()
        channel = AsyncCovertChannelT(proc, alloc, spy_rounds_per_bit=4)
        report = channel.transmit_async([1, 0, 1, 0])
        assert report.samples >= 3 * 4  # several spy rounds per bit

    def test_decode_windows(self):
        # (boundary, tx) stream: window1 has a tx hit, window2 none.
        observations = [
            (False, True),
            (True, False),
            (False, False),
            (True, False),
        ]
        assert AsyncCovertChannelT._decode(observations, limit=2) == [1, 0]

    def test_decode_respects_limit(self):
        observations = [(True, True)] * 5
        assert AsyncCovertChannelT._decode(observations, limit=2) == [1, 1]

    def test_requires_oversampling(self):
        proc, alloc = make_env()
        with pytest.raises(ValueError):
            AsyncCovertChannelT(proc, alloc, spy_rounds_per_bit=1)


class TestXWriteCounting:
    def test_counts_multiple_victim_writes(self):
        proc, alloc = make_env()
        victim_frame = alloc.alloc_specific(3)
        attack = MetaLeakC(proc, alloc, core=1)
        handle = attack.handle_for_page(victim_frame, level=1)
        for victim_writes in (0, 1, 3):
            handle.arm_for_writes(5)  # up to 5 countable writes
            for i in range(victim_writes):
                proc.write_through(victim_frame * PAGE_SIZE + i * 64, b"w", core=0)
                proc.drain_writes()
                attack.collect_victim_updates(victim_frame, level=1)
            counted = handle.count_victim_writes(armed_for=5)
            assert counted == victim_writes

    def test_armed_for_validation(self):
        proc, alloc = make_env()
        attack = MetaLeakC(proc, alloc, core=1)
        handle = attack.handle_for_page(0, level=1)
        with pytest.raises(ValueError):
            handle.count_victim_writes(armed_for=0)
        with pytest.raises(ValueError):
            handle.count_victim_writes(armed_for=127)


class TestOverheadStudy:
    def test_patterns_run(self):
        proc, _ = make_env(size=64 * MIB)
        for pattern in ("seq-read", "stride-read", "rand-read", "seq-write"):
            run = _run_workload(proc, pattern, 32)
            assert run.accesses == 32
            assert run.cycles > 0

    def test_unknown_pattern_rejected(self):
        proc, _ = make_env(size=64 * MIB)
        with pytest.raises(ValueError):
            _run_workload(proc, "pointer-chase", 8)

    def test_protection_costs_on_reads(self):
        result = overhead_study(accesses=120, patterns=("stride-read",))
        assert result.row("SCT stride-read slowdown").measured > 1.05
        assert result.row("HT stride-read slowdown").measured > 1.05