"""Tests for the defense models (MIRAGE, isolated trees, partitioning)."""

import pytest

from repro.config import MIB, PAGE_SIZE
from repro.defenses import (
    assign_domains,
    isolated_tree_config,
    mirage_eviction_curve,
    partitioned_llc_config,
)
from repro.mem.mirage import MirageCache
from repro.proc import SecureProcessor


class TestMirageCache:
    def test_hit_after_install(self):
        cache = MirageCache(64 * 1024)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_capacity_respected(self):
        cache = MirageCache(8 * 1024)  # 128 blocks
        for i in range(300):
            cache.access(i * 64)
        assert cache.occupancy() <= cache.data_capacity

    def test_global_evictions_once_full(self):
        cache = MirageCache(8 * 1024)
        for i in range(300):
            cache.access(i * 64)
        assert cache.global_evictions > 0

    def test_set_assoc_evictions_rare(self):
        """MIRAGE's whole point: SAE should (almost) never happen."""
        cache = MirageCache(64 * 1024, base_ways=8, extra_ways=6)
        for i in range(4000):
            cache.access(i * 64)
        assert cache.set_assoc_evictions == 0

    def test_deterministic_with_seed(self):
        a = MirageCache(8 * 1024, seed=5)
        b = MirageCache(8 * 1024, seed=5)
        for i in range(400):
            assert a.access(i * 64 % 3777 * 64) == b.access(i * 64 % 3777 * 64)

    def test_eviction_probability_grows(self):
        points = mirage_eviction_curve((500, 4000), trials=10, cache_size=64 * 1024)
        assert points[0].accuracy <= points[1].accuracy

    def test_small_cache_curve_saturates(self):
        points = mirage_eviction_curve((2000,), trials=10, cache_size=16 * 1024)
        assert points[0].accuracy > 0.9


class TestIsolationDefense:
    def test_config_flags(self):
        config = isolated_tree_config(protected_size=64 * MIB)
        assert config.isolated_trees

    def test_domains_get_disjoint_trees(self):
        proc = SecureProcessor(isolated_tree_config(protected_size=64 * MIB))
        assign_domains(proc, {1: [100], 2: [200]})
        proc.read(100 * PAGE_SIZE)
        proc.read(200 * PAGE_SIZE)
        assert set(proc.mee._domain_trees) >= {1, 2}
        assert proc.mee._domain_trees[1] is not proc.mee._domain_trees[2]

    def test_domain_roundtrip(self):
        proc = SecureProcessor(isolated_tree_config(protected_size=64 * MIB))
        assign_domains(proc, {1: [50]})
        addr = 50 * PAGE_SIZE
        proc.write_through(addr, b"domain1")
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        proc.flush(addr)
        assert proc.read(addr).data[:7] == b"domain1"

    def test_domain_requires_flag(self):
        from repro.config import SecureProcessorConfig

        proc = SecureProcessor(
            SecureProcessorConfig.sct_default(protected_size=64 * MIB)
        )
        with pytest.raises(ValueError):
            proc.mee.set_page_domain(10, 1)

    def test_negative_domain_rejected(self):
        proc = SecureProcessor(isolated_tree_config(protected_size=64 * MIB))
        with pytest.raises(ValueError):
            proc.mee.set_page_domain(10, -1)


class TestPartitionDefense:
    def test_two_socket_config(self):
        config = partitioned_llc_config(protected_size=64 * MIB)
        assert config.sockets == 2
        proc = SecureProcessor(config)
        assert len(proc.caches.l3s) == 2
