"""Quick-scale tests for the design-space sweeps."""


from repro.analysis.sweeps import (
    sweep_metadata_cache_size,
    sweep_minor_counter_bits,
    sweep_noise_intensity,
    sweep_replacement_policy,
)


class TestSweeps:
    def test_cache_size_sweep(self):
        result = sweep_metadata_cache_size((128, 256), bits=12)
        assert result.row("128 KiB accuracy").measured >= 0.8
        assert result.row("256 KiB accuracy").measured >= 0.8
        # mEvict cost must be recorded and positive.
        assert result.row("128 KiB evict accesses/round").measured > 0

    def test_replacement_policy_sweep(self):
        result = sweep_replacement_policy(bits=12)
        assert result.row("lru accuracy").measured >= 0.9

    def test_minor_counter_width_sweep(self):
        result = sweep_minor_counter_bits((4, 5))
        assert result.row("4-bit wrap bumps").measured == 15
        assert result.row("5-bit wrap bumps").measured == 31

    def test_noise_sweep_monotone(self):
        result = sweep_noise_intensity((0, 8), bits=16)
        quiet = result.row("0 noise reads/step").measured
        noisy = result.row("8 noise reads/step").measured
        assert quiet >= noisy
