"""Tests for performance observability (``repro.perf``)."""

import json

import pytest

from repro.cli import main
from repro.config import MIB, PAGE_SIZE, preset_config
from repro.perf import (
    AttributionError,
    CycleAttributor,
    MetricsSampler,
    compare,
    load_result,
    metrics_dict,
    prometheus_text,
    run_scenario,
    scenario_names,
    write_result,
)
from repro.proc.paths import AccessPath
from repro.proc.processor import SecureProcessor


def _machine(preset: str = "sct") -> SecureProcessor:
    overrides = {"functional_crypto": False, "timer_jitter_sigma": 0.0}
    if preset != "sgx":
        overrides["protected_size"] = 64 * MIB
    return SecureProcessor(preset_config(preset, **overrides))


def _exercise_paths(proc: SecureProcessor) -> None:
    """Steer one address through hit, counter-hit and tree-walk paths."""
    layout = proc.layout
    for i in range(6):
        addr = (8 + 3 * i) * PAGE_SIZE
        counter_addr = layout.counter_block_addr(addr)
        proc.quiesce()
        proc.read(addr)          # cold: full tree walk (Path-4)
        proc.read(addr)          # L1 hit (Path-1)
        proc.write(addr, b"y")
        proc.flush(addr)
        proc.quiesce()
        proc.read(addr)          # counter cached (Path-2)
        proc.flush(addr)
        proc.mee.invalidate_metadata(counter_addr)
        proc.quiesce()
        proc.read(addr)          # tree leaf cached (Path-3)
        proc.flush(addr)
        proc.mee.flush_metadata_cache(proc.cycle)
    proc.drain_writes()


class TestConservation:
    @pytest.mark.parametrize("preset", ["sct", "ht"])
    def test_attribution_conserves_cycles(self, preset):
        """Every access's parts sum exactly to its end-to-end latency.

        Violations raise at record time, so reaching the end with the
        aggregate identity intact is the property: across cache hits,
        counter hits and full tree walks, no cycle is lost or invented.
        """
        proc = _machine(preset)
        attributor = CycleAttributor(keep_records=True)
        proc.attach_profiler(attributor)
        _exercise_paths(proc)
        attributor.verify()
        assert attributor.accesses > 0
        assert sum(attributor.component_totals().values()) == attributor.cycles
        for record in attributor.records:
            assert sum(record.parts.values()) == record.latency
        seen = {record.path for record in attributor.records}
        assert "L1_HIT" in seen
        assert "MEM_COUNTER_HIT" in seen
        assert "MEM_TREE_MISS" in seen

    def test_tree_walk_components_attributed_per_level(self):
        proc = _machine("sct")
        attributor = CycleAttributor()
        proc.attach_profiler(attributor)
        _exercise_paths(proc)
        totals = attributor.component_totals()
        assert any(key.startswith("meta.tree.l0.") for key in totals)
        assert totals.get("mee.mac", 0) > 0

    def test_violation_raises(self):
        attributor = CycleAttributor()
        with pytest.raises(AttributionError):
            attributor.on_access(
                op="read", path=AccessPath.L1_HIT, core=0, addr=0,
                cycle=0, latency=10, parts={"cache.l1_hit": 7},
            )

    def test_profiling_off_by_default(self):
        """With no profiler attached, no breakdowns are built at all."""
        proc = _machine("sct")
        assert proc.profiler is None
        result = proc.read(8 * PAGE_SIZE)
        assert result.breakdown is None

    def test_breakdown_matches_result_latency(self):
        proc = _machine("sct")
        proc.attach_profiler(CycleAttributor())
        result = proc.read(8 * PAGE_SIZE)
        assert result.breakdown is not None
        assert sum(result.breakdown.values()) == result.latency


class TestReports:
    def _attributed(self) -> CycleAttributor:
        proc = _machine("sct")
        attributor = CycleAttributor()
        proc.attach_profiler(attributor)
        _exercise_paths(proc)
        return attributor

    def test_report_mentions_paths_and_paper_names(self):
        report = self._attributed().report()
        assert "conserved" in report
        assert "MEM_TREE_MISS" in report and "Path-4" in report
        assert "shadowed" in report

    def test_collapsed_stacks_format(self, tmp_path):
        attributor = self._attributed()
        lines = attributor.collapsed_stacks()
        assert lines
        for line in lines:
            frames, _, count = line.rpartition(" ")
            assert frames and int(count) > 0
        total = sum(int(line.rpartition(" ")[2]) for line in lines)
        assert total == attributor.cycles
        out = tmp_path / "profile.folded"
        written = attributor.write_collapsed(out)
        assert written == len(lines)
        assert out.read_text().splitlines() == lines

    def test_record_buffer_is_bounded(self):
        attributor = CycleAttributor(keep_records=True, record_capacity=4)
        for i in range(10):
            attributor.on_access(
                op="read", path=None, core=0, addr=i, cycle=i,
                latency=1, parts={"cache.l1_hit": 1},
            )
        assert len(attributor.records) == 4
        assert attributor.dropped_records == 6
        assert attributor.accesses == 10  # aggregates keep counting


class TestMetrics:
    def test_prometheus_text_shape(self):
        proc = _machine("sct")
        _exercise_paths(proc)
        text = prometheus_text(proc.registry)
        assert "# TYPE repro_dram_reads_total counter" in text
        assert "# TYPE repro_memctrl_write_queue_depth gauge" in text
        # Dotted registry paths become legal prometheus metric names.
        for line in text.splitlines():
            name = line.split()[2 if line.startswith("#") else 0]
            assert "." not in name

    def test_every_family_has_help_and_type(self):
        proc = _machine("sct")
        _exercise_paths(proc)
        lines = prometheus_text(proc.registry).splitlines()
        families = {line.split()[0] for line in lines
                    if not line.startswith("#")}
        helped = {line.split()[2] for line in lines
                  if line.startswith("# HELP ")}
        typed = {line.split()[2] for line in lines
                 if line.startswith("# TYPE ")}
        # Gauges included: scrapers that key on HELP for family
        # boundaries must parse them the same way as counters.
        assert families and families == helped == typed

    def test_label_values_are_escaped(self):
        from repro.perf.metrics import escape_label_value, prom_sample

        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        sample = prom_sample("m_total", {"task": 'fig "8"\nv2'}, 3)
        assert sample == 'm_total{task="fig \\"8\\"\\nv2"} 3'
        # One escaped physical line: the newline must not split the sample.
        assert len(sample.splitlines()) == 1

    def test_prom_sample_renders_ints_and_floats(self):
        from repro.perf.metrics import prom_sample

        assert prom_sample("m", None, 4.0) == "m 4"
        assert prom_sample("m", None, 0.25) == "m 0.25"
        assert prom_sample("m", {"a": "b", "c": "d"}, 1) == 'm{a="b",c="d"} 1'

    def test_metrics_dict_splits_kinds(self):
        proc = _machine("sct")
        _exercise_paths(proc)
        data = metrics_dict(proc.registry)
        assert "dram.reads" in data["counters"]
        assert "memctrl.write_queue_depth" in data["gauges"]
        assert "dram.reads" not in data["gauges"]

    def test_sampler_snapshots_every_interval(self):
        proc = _machine("sct")
        sampler = MetricsSampler(proc.registry, every=1000)
        proc.attach_sampler(sampler)
        _exercise_paths(proc)
        assert len(sampler.samples) >= 2
        cycles = [cycle for cycle, _ in sampler.samples]
        assert cycles == sorted(cycles)
        assert all(b - a >= 1000 for a, b in zip(cycles[1:], cycles[2:]))
        series = sampler.series("dram.reads")
        assert len(series) == len(sampler.samples)
        values = [value for _, value in series]
        assert values == sorted(values)  # counters are monotonic

    def test_sampler_decimates_to_bounded_memory(self):
        proc = _machine("sct")
        sampler = MetricsSampler(proc.registry, every=1, max_samples=8)
        proc.attach_sampler(sampler)
        _exercise_paths(proc)
        assert len(sampler.samples) < 8
        assert sampler.every > 1  # interval doubled at least once

    def test_sampler_validation(self):
        registry = _machine("sct").registry
        with pytest.raises(ValueError):
            MetricsSampler(registry, every=0)
        with pytest.raises(ValueError):
            MetricsSampler(registry, max_samples=1)


class TestBench:
    def test_simulated_columns_deterministic_per_seed(self):
        a = run_scenario("steady_sct", seed=7, quick=True)
        b = run_scenario("steady_sct", seed=7, quick=True)
        assert a.simulated_cycles == b.simulated_cycles
        assert a.accesses == b.accesses
        assert a.counters == b.counters
        c = run_scenario("steady_sct", seed=8, quick=True)
        assert c.simulated_cycles != a.simulated_cycles

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("nope")

    def test_synth_throughput_counts_oracle_evaluations(self):
        result = run_scenario("synth_throughput", seed=3, quick=True)
        assert result.preset == "synth"
        # Every generated program was evaluated; quick mode runs 12.
        assert result.accesses == 12
        assert result.counters["executed"] == 12
        assert result.sim_accesses_per_second > 0

    def test_result_round_trip(self, tmp_path):
        result = run_scenario("steady_sct", seed=1, quick=True)
        path = write_result(result, tmp_path)
        assert path.name == "BENCH_steady_sct.json"
        assert load_result(path) == result
        data = json.loads(path.read_text())
        for key in ("schema_version", "scenario", "preset", "seed", "quick",
                    "git_rev", "simulated_cycles", "accesses",
                    "host_wall_time_s", "sim_accesses_per_second",
                    "peak_rss_kb", "counters"):
            assert key in data

    def test_compare_flags_regression(self, tmp_path):
        result = run_scenario("steady_sct", seed=1, quick=True)
        # Baseline claims 25% higher throughput than we just measured:
        # beyond the 20% default threshold, so this must regress.
        inflated = json.loads(result.to_json())
        inflated["sim_accesses_per_second"] = (
            result.sim_accesses_per_second / 0.75
        )
        (tmp_path / result.filename).write_text(json.dumps(inflated))
        outcomes = compare([result], tmp_path, threshold=0.2)
        assert [o.status for o in outcomes] == ["regression"]
        # Same baseline, looser threshold: passes.
        outcomes = compare([result], tmp_path, threshold=0.5)
        assert [o.status for o in outcomes] == ["ok"]

    def test_compare_missing_baseline_and_mode_mismatch(self, tmp_path):
        result = run_scenario("steady_sct", seed=1, quick=True)
        assert [o.status for o in compare([result], tmp_path)] == [
            "no-baseline"
        ]
        full = json.loads(result.to_json())
        full["quick"] = False
        (tmp_path / result.filename).write_text(json.dumps(full))
        assert [o.status for o in compare([result], tmp_path)] == ["skipped"]

    def test_compare_threshold_validated(self, tmp_path):
        result = run_scenario("steady_sct", seed=1, quick=True)
        for bad in (0, -0.5, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                compare([result], tmp_path, threshold=bad)
            with pytest.raises(ValueError):
                compare([result], tmp_path, min_ratio=bad)

    def test_compare_reports_ratio_and_min_ratio_gate(self, tmp_path):
        result = run_scenario("steady_sct", seed=1, quick=True)
        # Baseline deterministically at half the measured throughput:
        # the old->new ratio is exactly 2x.
        slow = json.loads(result.to_json())
        slow["sim_accesses_per_second"] = result.sim_accesses_per_second / 2
        (tmp_path / result.filename).write_text(json.dumps(slow))
        (ok,) = compare([result], tmp_path)
        assert ok.status == "ok"
        assert ok.ratio == pytest.approx(2.0)
        assert "2.00x" in ok.detail
        # A reachable speedup gate passes; an unreachable one flags the
        # scenario even though the plain regression threshold is met.
        (ok,) = compare([result], tmp_path, min_ratio=1.5)
        assert ok.status == "ok"
        (gated,) = compare([result], tmp_path, min_ratio=4.0)
        assert gated.status == "regression"
        assert "speedup gate" in gated.detail
        assert gated.ratio == pytest.approx(2.0)
        # Scenarios outside the gated prefix are exempt from min_ratio.
        (exempt,) = compare(
            [result], tmp_path, min_ratio=4.0, min_ratio_prefix="covert_"
        )
        assert exempt.status == "ok"

    def test_run_scenario_repeats(self):
        with pytest.raises(ValueError):
            run_scenario("steady_sct", quick=True, repeats=0)
        once = run_scenario("steady_sct", seed=7, quick=True, repeats=1)
        twice = run_scenario("steady_sct", seed=7, quick=True, repeats=2)
        # Simulated columns are repeat-invariant (asserted internally on
        # every repeated run); only host wall time may differ.
        assert twice.simulated_cycles == once.simulated_cycles
        assert twice.accesses == once.accesses
        assert twice.counters == once.counters

    def test_profile_scenario_attribution(self):
        from repro.perf import bench

        attributor, proc = bench.profile_scenario("steady_sct", quick=True)
        # Conservation already verified inside profile_scenario; the
        # attribution must cover the scenario's simulated work.
        assert proc.cycle > 0
        assert attributor.collapsed_stacks()
        with pytest.raises(ValueError):
            bench.profile_scenario("service_jobs", quick=True)


class TestBenchCli:
    def test_bench_writes_results_and_compares_clean(self, tmp_path):
        out = tmp_path / "run"
        assert main([
            "bench", "steady_sct", "covert_t", "--quick",
            "--out", str(out), "--seed", "3",
        ]) == 0
        files = sorted(p.name for p in out.glob("BENCH_*.json"))
        assert files == ["BENCH_covert_t.json", "BENCH_steady_sct.json"]
        # Host throughput between two live runs is load-dependent, so make
        # the baseline deterministically slow: the comparison must be clean.
        baseline_path = out / "BENCH_steady_sct.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["sim_accesses_per_second"] /= 10
        baseline_path.write_text(json.dumps(baseline))
        assert main([
            "bench", "steady_sct", "--quick", "--out", str(tmp_path / "b"),
            "--seed", "3", "--compare", str(out), "--threshold", "0.2",
        ]) == 0

    def test_bench_exits_nonzero_on_injected_regression(self, tmp_path):
        out = tmp_path / "run"
        assert main([
            "bench", "steady_sct", "--quick", "--out", str(out),
        ]) == 0
        baseline_path = out / "BENCH_steady_sct.json"
        baseline = json.loads(baseline_path.read_text())
        # Inject a baseline 1000x faster than this machine: a >=20% apparent
        # throughput regression that --compare must turn into exit 1.
        baseline["sim_accesses_per_second"] *= 1000
        baseline_path.write_text(json.dumps(baseline))
        assert main([
            "bench", "steady_sct", "--quick", "--out", str(tmp_path / "b"),
            "--compare", str(out), "--threshold", "0.2",
        ]) == 1

    def test_bench_validates_threshold_and_names(self, tmp_path):
        assert main([
            "bench", "--threshold", "-1", "--out", str(tmp_path),
        ]) == 2
        assert main([
            "bench", "bogus", "--out", str(tmp_path),
        ]) == 2

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert capsys.readouterr().out.split() == scenario_names()

    def test_bench_min_ratio_gate_names_offender(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main([
            "bench", "steady_sct", "--quick", "--out", str(out),
        ]) == 0
        # An unreachable speedup requirement must fail and the exit-1
        # message must name the offending scenario.
        assert main([
            "bench", "steady_sct", "--quick", "--out", str(tmp_path / "b"),
            "--compare", str(out), "--threshold", "0.9",
            "--min-ratio", "1e9",
        ]) == 1
        captured = capsys.readouterr()
        assert "steady_sct" in captured.err
        assert "x)" in captured.err  # the offender's measured ratio
        assert main([
            "bench", "--min-ratio", "-2", "--out", str(tmp_path),
        ]) == 2

    def test_profile_scenario_cli(self, tmp_path, capsys):
        folded = tmp_path / "s.folded"
        assert main([
            "profile", "--scenario", "steady_sct", "--quick",
            "--collapsed", str(folded),
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario=steady_sct" in out
        assert folded.read_text().strip()
        assert main(["profile"]) == 2
        assert main([
            "profile", "--victim", "rsa", "--scenario", "steady_sct",
        ]) == 2

    def test_profile_cli(self, tmp_path, capsys):
        folded = tmp_path / "p.folded"
        prom = tmp_path / "p.prom"
        assert main([
            "profile", "--victim", "rsa", "--collapsed", str(folded),
            "--prom", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert folded.read_text().strip()
        assert "# TYPE" in prom.read_text()
