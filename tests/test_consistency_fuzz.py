"""Stateful fuzzing: the secure processor is always a correct memory.

Whatever interleaving of reads, writes, flushes, drains and metadata-cache
cleanses occurs — across cores, with counters overflowing and trees
re-hashing underneath — every read must return the last architecturally
written value.  Hypothesis drives random operation sequences against a
plain dict reference model.
"""

import pytest
from hypothesis import given, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import MIB, SecureProcessorConfig, TreeUpdatePolicy, preset_config
from repro.proc import SecureProcessor
from repro.secmem.engine import IntegrityViolation

_BLOCKS = 24  # distinct blocks under test, spread across pages
_PAGES = 6


def _addr(block_id: int) -> int:
    page = block_id % _PAGES
    offset = (block_id // _PAGES) * 64
    return page * 4096 + offset


class SecureMemoryMachine(RuleBasedStateMachine):
    """Random ops vs a reference dict."""

    def __init__(self):
        super().__init__()
        self.proc = None
        self.reference = {}

    @initialize(
        policy=st.sampled_from([TreeUpdatePolicy.LAZY, TreeUpdatePolicy.EAGER]),
        minor_bits=st.sampled_from([3, 7]),
    )
    def setup(self, policy, minor_bits):
        from repro.config import CounterConfig, CounterScheme

        config = SecureProcessorConfig.sct_default(
            protected_size=16 * MIB,
            tree_update_policy=policy,
        ).with_overrides(
            counters=CounterConfig(scheme=CounterScheme.SPLIT, minor_bits=minor_bits)
        )
        self.proc = SecureProcessor(config)
        self.reference = {}

    blocks = st.integers(min_value=0, max_value=_BLOCKS - 1)
    cores = st.integers(min_value=0, max_value=3)
    payloads = st.binary(min_size=1, max_size=16)

    @rule(block=blocks, payload=payloads, core=cores)
    def cached_write(self, block, payload, core):
        self.proc.write(_addr(block), payload, core=core)
        self.reference[block] = payload

    @rule(block=blocks, payload=payloads, core=cores)
    def persistent_write(self, block, payload, core):
        self.proc.write_through(_addr(block), payload, core=core)
        self.reference[block] = payload

    @rule(block=blocks, core=cores)
    def read_and_check(self, block, core):
        data = self.proc.read(_addr(block), core=core).data
        expected = self.reference.get(block, b"")
        assert data[: len(expected)] == expected
        assert data[len(expected) :] == bytes(64 - len(expected))

    @rule(block=blocks)
    def flush(self, block):
        self.proc.flush(_addr(block))

    @rule()
    def drain(self):
        self.proc.drain_writes()

    @rule()
    def cleanse_metadata(self):
        self.proc.mee.flush_metadata_cache(self.proc.cycle)

    @rule()
    def idle(self):
        self.proc.advance(1000)

    @invariant()
    def clock_monotone(self):
        if self.proc is not None:
            assert self.proc.cycle >= 0


TestSecureMemoryConsistency = SecureMemoryMachine.TestCase
TestSecureMemoryConsistency.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


# ----------------------------------------------------------------------
# Tamper-detection property: any single-bit flip in a protected data
# block, its encryption counter, or any tree node on its verification
# path raises IntegrityViolation on the next (metadata-cold) read.
# ----------------------------------------------------------------------

_PRESETS = ("sct", "ht", "sgx")
# One prepared functional-crypto machine per preset, shared across
# examples: every flip below is undone, so the machine stays consistent.
_TAMPER_MACHINES = {}


def _tamper_machine(preset):
    if preset not in _TAMPER_MACHINES:
        config = preset_config(
            preset, protected_size=4 * MIB, functional_crypto=True
        )
        proc = SecureProcessor(config)
        addrs = []
        for page in range(6):
            addr = (1 + page * 29) * 4096
            proc.write_through(addr, b"tamper-%d" % page)
            addrs.append(addr)
        proc.drain_writes()
        proc.mee.flush_metadata_cache(proc.cycle)
        _TAMPER_MACHINES[preset] = (proc, addrs)
    return _TAMPER_MACHINES[preset]


def _cold_read(proc, addr):
    proc.flush(addr)
    proc.mee.flush_metadata_cache(proc.cycle)
    return proc.read(addr)


@settings(max_examples=60, deadline=None)
@given(
    preset=st.sampled_from(_PRESETS),
    kind=st.sampled_from(["data", "counter", "tree"]),
    data=st.data(),
)
def test_single_bit_flip_always_detected(preset, kind, data):
    proc, addrs = _tamper_machine(preset)
    addr = data.draw(st.sampled_from(addrs), label="addr")
    mee = proc.mee
    if kind == "data":
        bit = data.draw(st.integers(0, 511), label="bit")
        undo = lambda: mee.tamper_flip_data_bit(addr, bit)  # involution
        mee.tamper_flip_data_bit(addr, bit)
    elif kind == "counter":
        block = addr // 64
        bit = data.draw(st.integers(0, 31), label="bit")
        old = mee.counters.tamper_counter(block, 0)
        mee.counters.tamper_counter(block, old ^ (1 << bit))
        undo = lambda: mee.counters.tamper_counter(block, old)
    else:
        layout = proc.layout
        level = data.draw(
            st.integers(0, len(layout.levels) - 1), label="level"
        )
        index = layout.node_index(level, layout.counter_block_index(addr))
        slot = data.draw(
            st.integers(0, layout.levels[level].arity - 1), label="slot"
        )
        bit = data.draw(st.integers(0, 31), label="bit")
        old = mee.tree.tamper_node(level, index, slot, 0)
        mee.tree.tamper_node(level, index, slot, old ^ (1 << bit))
        undo = lambda: mee.tree.tamper_node(level, index, slot, old)
    try:
        with pytest.raises(IntegrityViolation):
            _cold_read(proc, addr)
    finally:
        undo()
    # No residue: the machine reads clean again after the undo.
    result = _cold_read(proc, addr)
    assert result.data[:7] == b"tamper-"
