"""Stateful fuzzing: the secure processor is always a correct memory.

Whatever interleaving of reads, writes, flushes, drains and metadata-cache
cleanses occurs — across cores, with counters overflowing and trees
re-hashing underneath — every read must return the last architecturally
written value.  Hypothesis drives random operation sequences against a
plain dict reference model.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import MIB, SecureProcessorConfig, TreeUpdatePolicy
from repro.proc import SecureProcessor

_BLOCKS = 24  # distinct blocks under test, spread across pages
_PAGES = 6


def _addr(block_id: int) -> int:
    page = block_id % _PAGES
    offset = (block_id // _PAGES) * 64
    return page * 4096 + offset


class SecureMemoryMachine(RuleBasedStateMachine):
    """Random ops vs a reference dict."""

    def __init__(self):
        super().__init__()
        self.proc = None
        self.reference = {}

    @initialize(
        policy=st.sampled_from([TreeUpdatePolicy.LAZY, TreeUpdatePolicy.EAGER]),
        minor_bits=st.sampled_from([3, 7]),
    )
    def setup(self, policy, minor_bits):
        from repro.config import CounterConfig, CounterScheme

        config = SecureProcessorConfig.sct_default(
            protected_size=16 * MIB,
            tree_update_policy=policy,
        ).with_overrides(
            counters=CounterConfig(scheme=CounterScheme.SPLIT, minor_bits=minor_bits)
        )
        self.proc = SecureProcessor(config)
        self.reference = {}

    blocks = st.integers(min_value=0, max_value=_BLOCKS - 1)
    cores = st.integers(min_value=0, max_value=3)
    payloads = st.binary(min_size=1, max_size=16)

    @rule(block=blocks, payload=payloads, core=cores)
    def cached_write(self, block, payload, core):
        self.proc.write(_addr(block), payload, core=core)
        self.reference[block] = payload

    @rule(block=blocks, payload=payloads, core=cores)
    def persistent_write(self, block, payload, core):
        self.proc.write_through(_addr(block), payload, core=core)
        self.reference[block] = payload

    @rule(block=blocks, core=cores)
    def read_and_check(self, block, core):
        data = self.proc.read(_addr(block), core=core).data
        expected = self.reference.get(block, b"")
        assert data[: len(expected)] == expected
        assert data[len(expected) :] == bytes(64 - len(expected))

    @rule(block=blocks)
    def flush(self, block):
        self.proc.flush(_addr(block))

    @rule()
    def drain(self):
        self.proc.drain_writes()

    @rule()
    def cleanse_metadata(self):
        self.proc.mee.flush_metadata_cache(self.proc.cycle)

    @rule()
    def idle(self):
        self.proc.advance(1000)

    @invariant()
    def clock_monotone(self):
        if self.proc is not None:
            assert self.proc.cycle >= 0


TestSecureMemoryConsistency = SecureMemoryMachine.TestCase
TestSecureMemoryConsistency.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
