"""Batch-vs-scalar equivalence properties of the access-batch API.

``SecureProcessor.run_batch`` must be indistinguishable from replaying
the same operations through the scalar calls: identical cache state,
counter values, cycle counts, per-op results, trace events and per-leg
cycle attributions (docs/architecture.md, "Functional/timing split &
batching").  These tests drive seeded random access vectors through a
pair of identically configured machines — one scalar, one batched —
across every preset x defense combination, with and without instruments
attached.
"""

from random import Random

import pytest

from repro.config import PAGE_SIZE
from repro.faults import FaultHook
from repro.perf import CycleAttributor
from repro.proc import AccessBatch, SecureProcessor
from repro.synth.runner import DEFENSES, synth_config
from repro.trace import Tracer

PRESETS = ("sct", "ht", "sgx")


def _machine(preset: str, defense: str = "none") -> SecureProcessor:
    # synth_config: functional crypto off, jitter-free timer — the same
    # reproducible machine the synthesis oracle runs on.
    return SecureProcessor(synth_config(preset, defense))


def _op_vector(proc: SecureProcessor, seed: int, ops: int = 160):
    """A seeded mixed op vector hitting every batch op kind."""
    rng = Random(seed)
    addrs = [
        page * PAGE_SIZE + 64 * rng.randrange(PAGE_SIZE // 64)
        for page in range(12)
        for _ in range(3)
    ]
    cores = proc.config.cores
    vector = []
    for i in range(ops):
        addr = rng.choice(addrs)
        roll = rng.random()
        core = rng.randrange(cores)
        if roll < 0.55:
            vector.append(("read", addr, None, core))
        elif roll < 0.75:
            vector.append(("write", addr, i.to_bytes(4, "little"), core))
        elif roll < 0.85:
            vector.append(("write_through", addr, b"p", core))
        elif roll < 0.95:
            vector.append(("flush", addr, None, 0))
        else:
            vector.append(("drain", None, None, 0))
    return vector


def _as_batch(vector) -> AccessBatch:
    batch = AccessBatch()
    for kind, addr, data, core in vector:
        if kind == "read":
            batch.read(addr, core=core)
        elif kind == "write":
            batch.write(addr, data, core=core)
        elif kind == "write_through":
            batch.write_through(addr, data, core=core)
        elif kind == "flush":
            batch.flush(addr)
        else:
            batch.drain()
    return batch


def _run_scalar(proc: SecureProcessor, vector):
    results = []
    for kind, addr, data, core in vector:
        if kind == "read":
            results.append(proc.read(addr, core=core))
        elif kind == "write":
            results.append(proc.write(addr, data, core=core))
        elif kind == "write_through":
            results.append(proc.write_through(addr, data, core=core))
        elif kind == "flush":
            results.append(proc.flush(addr))
        else:
            results.append(proc.drain_writes())
    return results


def _cache_states(proc: SecureProcessor):
    """Full functional cache state of the machine, eviction-order exact."""
    state = {}
    for i, core in enumerate(proc.caches.core_caches):
        state[f"core{i}.l1"] = core.l1.state_snapshot()
        state[f"core{i}.l2"] = core.l2.state_snapshot()
    for s, l3 in enumerate(proc.caches.l3s):
        state[f"l3.socket{s}"] = l3.state_snapshot()
    state["meta"] = proc.mee.meta_cache.state_snapshot()
    if proc.mee.tree_cache is not proc.mee.meta_cache:
        state["tree"] = proc.mee.tree_cache.state_snapshot()
    return state


def _assert_equivalent(scalar_proc, scalar_results, batch_proc, batch_result):
    assert batch_proc.cycle == scalar_proc.cycle
    assert batch_proc.registry.snapshot() == scalar_proc.registry.snapshot()
    assert batch_proc.stats.reads == scalar_proc.stats.reads
    assert batch_proc.stats.writes == scalar_proc.stats.writes
    assert batch_proc.stats.flushes == scalar_proc.stats.flushes
    assert batch_proc.stats.path_counts == scalar_proc.stats.path_counts
    assert _cache_states(batch_proc) == _cache_states(scalar_proc)
    assert len(batch_result.results) == len(scalar_results)
    for got, want in zip(batch_result.results, scalar_results):
        assert got == want


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("defense", DEFENSES)
    def test_uninstrumented(self, preset, defense):
        """Same state, counters, cycles and results on bare machines."""
        scalar_proc = _machine(preset, defense)
        batch_proc = _machine(preset, defense)
        seed = 100 * PRESETS.index(preset) + DEFENSES.index(defense)
        vector = _op_vector(scalar_proc, seed=seed)
        scalar_results = _run_scalar(scalar_proc, vector)
        batch_result = batch_proc.run_batch(_as_batch(vector))
        _assert_equivalent(
            scalar_proc, scalar_results, batch_proc, batch_result
        )

    @pytest.mark.parametrize("preset", PRESETS)
    def test_read_batch_matches_read_loop(self, preset):
        scalar_proc = _machine(preset)
        batch_proc = _machine(preset)
        rng = Random(7)
        addrs = [rng.randrange(48) * PAGE_SIZE for _ in range(96)]
        scalar_results = [scalar_proc.read(addr, core=1) for addr in addrs]
        batch_result = batch_proc.read_batch(addrs, core=1)
        assert batch_result.read_latencies() == [
            result.latency for result in scalar_results
        ]
        assert batch_result.results == scalar_results
        assert batch_proc.cycle == scalar_proc.cycle
        assert _cache_states(batch_proc) == _cache_states(scalar_proc)

    def test_traced_event_streams_identical(self):
        """With a tracer attached both paths emit the same event stream."""
        scalar_proc = _machine("sct")
        batch_proc = _machine("sct")
        scalar_tracer, batch_tracer = Tracer(), Tracer()
        scalar_proc.attach_tracer(scalar_tracer)
        batch_proc.attach_tracer(batch_tracer)
        vector = _op_vector(scalar_proc, seed=11)
        scalar_results = _run_scalar(scalar_proc, vector)
        batch_result = batch_proc.run_batch(_as_batch(vector))
        _assert_equivalent(
            scalar_proc, scalar_results, batch_proc, batch_result
        )
        assert batch_tracer.events() == scalar_tracer.events()

    def test_profiled_leg_attributions_identical(self):
        """Per-leg cycle breakdowns match under the cycle attributor."""
        scalar_proc = _machine("sct")
        batch_proc = _machine("sct")
        scalar_proc.attach_profiler(CycleAttributor())
        batch_proc.attach_profiler(CycleAttributor())
        vector = _op_vector(scalar_proc, seed=23)
        scalar_results = _run_scalar(scalar_proc, vector)
        batch_result = batch_proc.run_batch(_as_batch(vector))
        _assert_equivalent(
            scalar_proc, scalar_results, batch_proc, batch_result
        )
        for got, want in zip(batch_result.results, scalar_results):
            if hasattr(want, "breakdown"):
                assert got.breakdown == want.breakdown

    def test_fault_hook_observes_identical_stream(self):
        """A recording fault hook sees the same callbacks either way."""

        class RecordingHook(FaultHook):
            def __init__(self):
                self.calls = []

            def on_cache_fill(self, cache_name, block_addr):
                self.calls.append(("fill", cache_name, block_addr))

            def on_counter_increment(self, block):
                self.calls.append(("ctr", block))

            def on_meta_fetch(self, kind, level, index):
                self.calls.append(("meta", kind, level, index))

        scalar_proc = _machine("sct")
        batch_proc = _machine("sct")
        scalar_hook, batch_hook = RecordingHook(), RecordingHook()
        scalar_proc.attach(scalar_hook)
        batch_proc.attach(batch_hook)
        vector = _op_vector(scalar_proc, seed=31)
        scalar_results = _run_scalar(scalar_proc, vector)
        batch_result = batch_proc.run_batch(_as_batch(vector))
        _assert_equivalent(
            scalar_proc, scalar_results, batch_proc, batch_result
        )
        assert batch_hook.calls == scalar_hook.calls

    def test_interleaved_scalar_and_batch(self):
        """Batches compose with scalar calls on the same machine."""
        reference = _machine("ht")
        mixed = _machine("ht")
        vector = _op_vector(reference, seed=43, ops=120)
        _run_scalar(reference, vector)
        # Same vector, split: first third scalar, middle batched, rest scalar.
        third = len(vector) // 3
        _run_scalar(mixed, vector[:third])
        mixed.run_batch(_as_batch(vector[third : 2 * third]))
        _run_scalar(mixed, vector[2 * third :])
        assert mixed.cycle == reference.cycle
        assert mixed.registry.snapshot() == reference.registry.snapshot()
        assert _cache_states(mixed) == _cache_states(reference)
