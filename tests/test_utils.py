"""Unit tests for repro.utils (bitops, rng, stats)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    DeterministicRng,
    accuracy,
    align_down,
    align_up,
    bit_error_rate,
    derive_rng,
    extract_bits,
    hamming_accuracy,
    is_power_of_two,
    log2_exact,
    mask,
    otsu_threshold,
    summarize,
)


class TestBitops:
    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(7) == 127
        assert mask(64) == (1 << 64) - 1

    def test_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_extract_bits(self):
        assert extract_bits(0b101100, 2, 3) == 0b011
        assert extract_bits(0xFF, 4, 4) == 0xF
        assert extract_bits(0, 10, 10) == 0

    def test_extract_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 2)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(64) == 6
        with pytest.raises(ValueError):
            log2_exact(48)

    def test_align(self):
        assert align_down(0x12345, 0x1000) == 0x12000
        assert align_up(0x12345, 0x1000) == 0x13000
        assert align_up(0x12000, 0x1000) == 0x12000

    def test_align_non_power_rejected(self):
        with pytest.raises(ValueError):
            align_down(10, 3)

    @given(st.integers(min_value=0, max_value=2**48), st.integers(min_value=0, max_value=20))
    def test_align_roundtrip_property(self, value, shift):
        alignment = 1 << shift
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)

    @given(st.integers(min_value=0, max_value=2**62), st.integers(min_value=0, max_value=32), st.integers(min_value=0, max_value=32))
    def test_extract_bits_bounded(self, value, low, count):
        assert 0 <= extract_bits(value, low, count) < (1 << count) + 1


class TestRng:
    def test_determinism(self):
        a = derive_rng(42, "x")
        b = derive_rng(42, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_labels_independent(self):
        a = derive_rng(42, "x")
        b = derive_rng(42, "y")
        assert a.random() != b.random()

    def test_child_derivation(self):
        root = derive_rng(7)
        assert isinstance(root.child("noise"), DeterministicRng)
        assert root.child("noise").random() == derive_rng(7, "noise").random()

    def test_seed_types(self):
        assert derive_rng("seed").random() == derive_rng(b"seed").random()
        assert derive_rng(-5).random() == derive_rng(-5).random()


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.median == 3
        assert math.isclose(s.mean, 3.0)

    def test_summarize_single(self):
        s = summarize([10])
        assert s.minimum == s.maximum == s.median == 10

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_str(self):
        assert "med=" in str(summarize([1, 2, 3]))

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert accuracy([1, 0, 0], [1, 0, 1]) == pytest.approx(2 / 3)
        # Short prediction counts missing as errors.
        assert accuracy([1], [1, 0]) == 0.5

    def test_bit_error_rate(self):
        assert bit_error_rate([1, 1], [1, 0]) == 0.5

    def test_hamming_accuracy(self):
        assert hamming_accuracy(0b1010, 0b1010, 4) == 1.0
        assert hamming_accuracy(0b1010, 0b0010, 4) == 0.75
        with pytest.raises(ValueError):
            hamming_accuracy(1, 1, 0)

    def test_otsu_separates_bimodal(self):
        sample = [100.0] * 50 + [500.0] * 50
        threshold = otsu_threshold(sample)
        assert 100 < threshold < 500

    def test_otsu_degenerate(self):
        # A uniform sample has a single band: there is no threshold to
        # find, and returning any number would be silently meaningless.
        with pytest.raises(ValueError, match="degenerate"):
            otsu_threshold([42.0, 42.0])
        with pytest.raises(ValueError, match="empty"):
            otsu_threshold([])

    def test_accuracy_empty_reference_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy([1, 0], [])
        with pytest.raises(ValueError, match="empty"):
            bit_error_rate([], [])

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=50),
        st.lists(st.floats(min_value=500, max_value=600), min_size=2, max_size=50),
    )
    def test_otsu_property_bimodal(self, low, high):
        threshold = otsu_threshold(low + high)
        assert max(low) <= threshold <= min(high) + 1e-6
