"""Tests for the fault-injection engine and campaign driver.

The contract under test is the paper's trust argument: every corruption
of protected off-chip state (ciphertext, MAC, counters, tree nodes,
metadata fills) is detected on the next read once the corrupted state is
re-fetched, while write-queue perturbations degrade gracefully — and a
fault-free machine never raises a violation.
"""

import pytest

from repro.config import BLOCK_SIZE, PAGE_SIZE, preset_config
from repro.faults import (
    FaultInjector,
    FaultSite,
    campaign_figure_result,
    run_campaign,
)
from repro.faults.injector import PROTECTED_SITES, QUEUE_SITES
from repro.proc import SecureProcessor
from repro.secmem.engine import IntegrityViolation

PRESETS = ("sct", "ht", "sgx")
_SIZE = 4 * 1024 * 1024


def make_target(preset, seed=5):
    """A functional-crypto machine with one written, quiesced block."""
    config = preset_config(preset, protected_size=_SIZE, functional_crypto=True)
    proc = SecureProcessor(config)
    addr = 3 * PAGE_SIZE
    proc.write_through(addr, b"victim")
    proc.drain_writes()
    proc.mee.flush_metadata_cache(proc.cycle)
    injector = FaultInjector(proc, seed=seed)
    return proc, injector, addr


def clean_read(proc, addr):
    proc.flush(addr)
    proc.mee.flush_metadata_cache(proc.cycle)
    return proc.read(addr)


class TestInjector:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_data_bit_flip_detected_and_reversible(self, preset):
        proc, injector, addr = make_target(preset)
        handle = injector.flip_data_bit(addr, bit=13)
        with pytest.raises(IntegrityViolation):
            clean_read(proc, addr)
        handle.undo()
        assert clean_read(proc, addr).data[:6] == b"victim"

    @pytest.mark.parametrize("preset", PRESETS)
    def test_mac_bit_flip_detected(self, preset):
        proc, injector, addr = make_target(preset)
        handle = injector.flip_mac_bit(addr)
        with pytest.raises(IntegrityViolation):
            clean_read(proc, addr)
        handle.undo()
        assert clean_read(proc, addr).data[:6] == b"victim"

    @pytest.mark.parametrize("preset", PRESETS)
    def test_counter_corruption_detected(self, preset):
        proc, injector, addr = make_target(preset)
        handle = injector.corrupt_counter(addr // BLOCK_SIZE)
        with pytest.raises(IntegrityViolation):
            clean_read(proc, addr)
        handle.undo()
        assert clean_read(proc, addr).data[:6] == b"victim"

    @pytest.mark.parametrize("preset", PRESETS)
    def test_tree_node_corruption_detected_at_every_level(self, preset):
        proc, injector, addr = make_target(preset)
        layout = proc.layout
        cb_index = layout.counter_block_index(addr)
        for level in range(len(layout.levels)):
            handle = injector.corrupt_tree_node(
                level, layout.node_index(level, cb_index), slot=0
            )
            with pytest.raises(IntegrityViolation):
                clean_read(proc, addr)
            handle.undo()
            assert clean_read(proc, addr).data[:6] == b"victim"

    @pytest.mark.parametrize("preset", PRESETS)
    def test_corrupted_meta_fill_detected(self, preset):
        proc, injector, addr = make_target(preset)
        handle = injector.arm_meta_fill_corruption(
            proc.layout.counter_block_index(addr), addr // BLOCK_SIZE
        )
        assert not handle.fired
        with pytest.raises(IntegrityViolation):
            clean_read(proc, addr)
        assert handle.fired
        handle.undo()
        assert clean_read(proc, addr).data[:6] == b"victim"

    def test_unfired_armed_fault_disarms_cleanly(self):
        proc, injector, addr = make_target("sct")
        handle = injector.arm_meta_fill_corruption(
            proc.layout.counter_block_index(addr), addr // BLOCK_SIZE
        )
        handle.undo()  # never fetched, never fired
        assert not handle.fired
        assert clean_read(proc, addr).data[:6] == b"victim"

    def test_write_drop_is_silent_and_stale(self):
        proc, injector, addr = make_target("sct")
        handle = injector.arm_write_drop(addr)
        proc.write_through(addr, b"newval")
        proc.drain_writes()
        assert handle.fired
        assert proc.memctrl.writes_dropped == 1
        result = clean_read(proc, addr)  # no violation: availability fault
        assert result.data[:6] == b"victim"

    def test_write_reorder_is_architecturally_invisible(self):
        proc, injector, addr = make_target("sct")
        addrs = [addr + i * BLOCK_SIZE for i in range(4)]
        handle = injector.arm_write_reorder()
        for i, a in enumerate(addrs):
            proc.write_through(a, b"v%d" % i)
        proc.drain_writes()
        assert handle.fired
        for i, a in enumerate(addrs):
            assert clean_read(proc, a).data[:2] == b"v%d" % i

    def test_injections_are_seed_deterministic(self):
        _, injector_a, addr = make_target("sct", seed=42)
        _, injector_b, _ = make_target("sct", seed=42)
        descriptions_a = [injector_a.flip_data_bit(addr).description for _ in range(5)]
        descriptions_b = [injector_b.flip_data_bit(addr).description for _ in range(5)]
        assert descriptions_a == descriptions_b

    def test_detach_unhooks_every_layer(self):
        proc, injector, addr = make_target("sct")
        clean_read(proc, addr)
        assert injector.stats.dram_accesses > 0
        injector.detach()
        before = injector.stats.dram_accesses
        clean_read(proc, addr)
        assert injector.stats.dram_accesses == before
        assert proc.mee.fault_hook is None


class TestCampaign:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_small_campaign_fully_detected(self, preset):
        report = run_campaign(preset, sites=21, seed=9)
        assert report.sites == 21
        assert report.detection_rate == 1.0
        assert report.false_positives == 0
        assert report.fully_detected
        for site in PROTECTED_SITES + QUEUE_SITES:
            assert report.injected(site) == 3

    def test_acceptance_200_sites_every_preset(self):
        # The headline robustness claim: >= 200 seeded sites per preset,
        # 100% detection of protected-state corruption, 0 false alarms.
        for preset in PRESETS:
            report = run_campaign(preset, sites=200, seed=2024)
            assert report.protected_injected >= 100
            assert report.protected_detected == report.protected_injected
            assert report.false_positives == 0
            assert report.fully_detected, report.failures()

    def test_campaign_is_reproducible(self):
        first = run_campaign("sct", sites=14, seed=77)
        second = run_campaign("sct", sites=14, seed=77)
        assert [o.description for o in first.outcomes] == [
            o.description for o in second.outcomes
        ]

    def test_campaign_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_campaign("sct", sites=0)
        with pytest.raises(ValueError, match="unknown preset"):
            run_campaign("nonsense", sites=7)

    def test_figure_result_matrix(self):
        reports = {"sct": run_campaign("sct", sites=7, seed=1)}
        result = campaign_figure_result(reports)
        labels = [row.label for row in result.rows]
        for site in PROTECTED_SITES:
            assert f"sct: {site.value} detected" in labels
        assert "sct: false positives" in labels
        assert result.row("sct: false positives").measured == 0


class TestReportAccounting:
    def test_rates_with_no_outcomes(self):
        from repro.faults import CampaignReport

        report = CampaignReport(preset="sct", seed=0)
        assert report.detection_rate == 1.0
        assert report.fully_detected
        assert report.failures() == []

    def test_site_enum_partition(self):
        assert set(PROTECTED_SITES) | set(QUEUE_SITES) == set(FaultSite)
        assert not set(PROTECTED_SITES) & set(QUEUE_SITES)
