"""Integration tests for the case-study drivers and figure harness.

These run the real end-to-end experiments at reduced scale; the
full-scale runs live in benchmarks/.
"""

import pytest

from repro.analysis import (
    format_result,
    run_jpeg_metaleak_c,
    run_jpeg_metaleak_t,
    run_mbedtls_attack,
    run_rsa_attack,
)
from repro.analysis.figures import (
    ablation_counter_schemes,
    ablation_defenses,
    fig6_access_paths,
    fig7_sgx_paths,
    fig8_overflow_bands,
    fig12_tree_levels,
)
from repro.analysis.report import FigureResult
from repro.utils.stats import aligned_accuracy, edit_distance


class TestReport:
    def test_format_contains_rows(self):
        result = FigureResult(figure="F", title="t")
        result.add("a", 1.0, 2.0, "cycles")
        text = format_result(result)
        assert "F" in text and "a" in text and "cycles" in text

    def test_row_lookup(self):
        result = FigureResult(figure="F", title="t")
        result.add("a", 1.0)
        assert result.row("a").measured == 1.0
        with pytest.raises(KeyError):
            result.row("missing")


class TestEditDistance:
    def test_basics(self):
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("abc", "abd") == 1
        assert edit_distance("abc", "ab") == 1
        assert edit_distance("", "abc") == 3

    def test_aligned_accuracy(self):
        assert aligned_accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert aligned_accuracy([1, 1], [1, 0, 1]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            aligned_accuracy([1], [])


class TestJpegCaseStudy:
    def test_metaleak_t_noiseless_is_perfect(self):
        # "text" has spatially varying detail, so the activity map is
        # non-degenerate and correlation is meaningful.
        outcome = run_jpeg_metaleak_t("text", size=16)
        assert outcome.stealing_accuracy == 1.0
        assert outcome.reconstruction_correlation == pytest.approx(1.0)
        assert outcome.steps == 4 * 63

    def test_metaleak_t_images_differ(self):
        flat = run_jpeg_metaleak_t("gradient", size=16)
        busy = run_jpeg_metaleak_t("checkerboard", size=16)
        # Both recover accurately regardless of image content.
        assert flat.stealing_accuracy > 0.95
        assert busy.stealing_accuracy > 0.95

    @pytest.mark.slow
    def test_metaleak_c_recovers_zeros(self):
        outcome = run_jpeg_metaleak_c("gradient", size=16)
        assert outcome.zero_accuracy > 0.9


class TestRsaCaseStudy:
    def test_sct_noiseless_recovers_exponent(self):
        from repro.config import MIB, SecureProcessorConfig

        config = SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        )
        outcome = run_rsa_attack("sct", exponent_bits=48, config=config)
        assert outcome.bit_accuracy == 1.0
        assert outcome.recovered_bits == outcome.true_bits

    def test_sgx_noiseless_recovers_exponent(self):
        from repro.config import MIB, SecureProcessorConfig

        config = SecureProcessorConfig.sgx_default(
            epc_size=64 * MIB, functional_crypto=False
        )
        outcome = run_rsa_attack("sgx", exponent_bits=48, config=config)
        assert outcome.bit_accuracy == 1.0

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            run_rsa_attack("tpm")


class TestMbedtlsCaseStudy:
    def test_noiseless_detection_perfect(self):
        from repro.config import MIB, SecureProcessorConfig

        config = SecureProcessorConfig.sgx_default(
            epc_size=64 * MIB, functional_crypto=False
        )
        outcome = run_mbedtls_attack(secret_bits=48, config=config)
        assert outcome.op_accuracy == 1.0
        assert outcome.labels == outcome.truth


class TestFigureHarness:
    def test_fig6_band_ordering(self):
        result = fig6_access_paths(samples=6)
        ordered = [row.measured for row in result.rows]
        assert ordered == sorted(ordered)

    def test_fig7_wider_than_fig6(self):
        sct = fig6_access_paths(samples=6)
        sgx = fig7_sgx_paths(samples=6)
        assert (
            sgx.row("Path-4 (all levels missed)").measured
            > sct.row("Path-4 (all levels missed)").measured
        )

    def test_fig8_bands_separate(self):
        result = fig8_overflow_bands(cycles=1)
        assert result.row("band separation").measured > 500

    def test_fig12_monotone(self):
        result = fig12_tree_levels(levels=(0, 1), rounds=5)
        l0 = result.row("L0 interval").measured
        l1 = result.row("L1 interval").measured
        assert l1 >= l0
        assert result.row("L1 coverage").measured == 16 * result.row(
            "L0 coverage"
        ).measured

    def test_ablation_counter_schemes_ordering(self):
        result = ablation_counter_schemes()
        sc = result.row("SC re-encrypted blocks").measured
        gc = result.row("GC re-encrypted blocks").measured
        moc = result.row("MoC re-encrypted blocks").measured
        assert sc < gc == moc

    @pytest.mark.slow
    def test_ablation_defenses_isolated_trees_break_channel(self):
        result = ablation_defenses(bits=24)
        assert result.row("baseline (no defense)").measured > 0.9
        assert result.row("disjoint LLCs (cross-socket)").measured > 0.9
        assert result.row("per-domain isolated trees").measured < 0.8
