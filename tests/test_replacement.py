"""Tests for the replacement policies and policy-parameterised caches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache
from repro.mem.replacement import (
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


class TestLruPolicy:
    def test_victim_is_least_recent(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)
        assert policy.victim([True] * 4) == 1

    def test_skips_unoccupied(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        assert policy.victim([False, True, True, True]) == 1


class TestTreePlru:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            TreePlruPolicy(6)

    def test_victim_avoids_recent(self):
        policy = TreePlruPolicy(4)
        for way in range(4):
            policy.on_fill(way)
        policy.on_access(3)
        assert policy.victim([True] * 4) != 3

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_victim_never_most_recent(self, accesses):
        policy = TreePlruPolicy(8)
        for way in range(8):
            policy.on_fill(way)
        for way in accesses:
            policy.on_access(way)
        assert policy.victim([True] * 8) != accesses[-1]

    def test_victim_in_range(self):
        policy = TreePlruPolicy(8)
        for way in range(8):
            policy.on_fill(way)
        assert 0 <= policy.victim([True] * 8) < 8


class TestRandomPolicy:
    def test_deterministic_under_seed(self):
        a = make_policy("random", 8, seed=3)
        b = make_policy("random", 8, seed=3)
        occupied = [True] * 8
        assert [a.victim(occupied) for _ in range(10)] == [
            b.victim(occupied) for _ in range(10)
        ]

    def test_spread(self):
        policy = RandomPolicy(8)
        victims = {policy.victim([True] * 8) for _ in range(200)}
        assert len(victims) == 8


class TestPolicyFactory:
    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("fifo", 4)

    def test_all_names(self):
        for name in ("lru", "plru", "random"):
            assert make_policy(name, 4) is not None


class TestPolicyCaches:
    def _cache(self, replacement):
        return SetAssocCache(
            CacheConfig("t", 4 * 64, 4, 1, replacement=replacement), seed=1
        )

    @pytest.mark.parametrize("replacement", ["lru", "plru", "random"])
    def test_basic_semantics_hold(self, replacement):
        cache = self._cache(replacement)
        cache.insert(0, dirty=True)
        assert cache.lookup(0)
        assert cache.is_dirty(0)
        present, dirty = cache.invalidate(0)
        assert present and dirty
        assert not cache.contains(0)

    @pytest.mark.parametrize("replacement", ["lru", "plru", "random"])
    def test_capacity_respected(self, replacement):
        cache = self._cache(replacement)
        for i in range(40):
            cache.insert(i * 64 * 1)  # single set (1 set cache)
        assert cache.occupancy() <= 4

    def test_plru_keeps_hot_line(self):
        cache = self._cache("plru")
        cache.insert(0)
        for i in range(1, 40):
            cache.lookup(0)  # keep line 0 hot
            cache.insert(i * 64)
        assert cache.contains(0)

    def test_random_eventually_evicts_hot_line(self):
        cache = self._cache("random")
        cache.insert(0)
        for i in range(1, 100):
            cache.lookup(0)
            cache.insert(i * 64)
        # With uniform random victims, even a hot line dies eventually.
        assert not cache.contains(0)
