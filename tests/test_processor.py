"""Direct tests of the SecureProcessor surface."""

import pytest

from repro.config import MIB, SecureProcessorConfig
from repro.proc import AccessPath, SecureProcessor


@pytest.fixture()
def proc():
    return SecureProcessor(
        SecureProcessorConfig.sct_default(protected_size=64 * MIB)
    )


class TestClock:
    def test_every_access_advances_cycle(self, proc):
        start = proc.cycle
        proc.read(0x1000)
        assert proc.cycle > start

    def test_advance(self, proc):
        proc.advance(500)
        assert proc.cycle == 500
        with pytest.raises(ValueError):
            proc.advance(-1)

    def test_quiesce_waits_out_banks(self, proc):
        proc.read(0x1000)
        proc.memctrl.dram.occupy_all(proc.cycle, 5000)
        waited = proc.quiesce()
        assert waited >= 5000
        assert proc.quiesce() == 0  # idempotent once idle

    def test_result_carries_cycle(self, proc):
        result = proc.read(0x1000)
        assert result.cycle == proc.cycle


class TestWriteSemantics:
    def test_write_none_preserves_value(self, proc):
        proc.write(0x2000, b"keep me")
        proc.write(0x2000, None)  # touch without changing data
        assert proc.read(0x2000).data[:7] == b"keep me"

    def test_write_oversize_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.write(0x2000, b"x" * 65)

    def test_write_pads_to_block(self, proc):
        proc.write(0x2000, b"ab")
        assert proc.read(0x2000).data == b"ab" + bytes(62)

    def test_write_through_posts_to_queue(self, proc):
        proc.write_through(0x2000, b"posted")
        assert proc.memctrl.pending_writes() >= 1
        proc.drain_writes()
        assert proc.memctrl.pending_writes() == 0

    def test_write_through_drops_cached_copy(self, proc):
        proc.read(0x2000)
        proc.write_through(0x2000, b"new")
        assert not proc.caches.contains(0x2000)

    def test_flush_clean_block_no_writeback(self, proc):
        proc.read(0x3000)
        pending_before = proc.memctrl.pending_writes()
        proc.flush(0x3000)
        assert proc.memctrl.pending_writes() == pending_before


class TestStats:
    def test_path_counting(self, proc):
        proc.read(0x4000)
        proc.read(0x4000)
        counts = proc.stats.path_counts
        assert counts.get(AccessPath.MEM_TREE_MISS, 0) >= 1
        assert counts.get(AccessPath.L1_HIT, 0) >= 1

    def test_read_write_flush_counters(self, proc):
        proc.read(0x4000)
        proc.write(0x4000, b"x")
        proc.flush(0x4000)
        assert proc.stats.reads == 1
        assert proc.stats.writes == 1
        assert proc.stats.flushes == 1


class TestJitter:
    def test_zero_jitter_deterministic(self):
        results = []
        for _ in range(2):
            proc = SecureProcessor(
                SecureProcessorConfig.sct_default(protected_size=64 * MIB)
            )
            results.append(proc.read(0x1000).latency)
        assert results[0] == results[1]

    def test_jitter_perturbs_reported_only(self):
        proc = SecureProcessor(
            SecureProcessorConfig.sct_default(
                protected_size=64 * MIB, timer_jitter_sigma=30
            )
        )
        latencies = set()
        for i in range(8):
            proc.flush(0x1000)
            proc.quiesce()
            latencies.add(proc.read(0x1000).latency)
        assert len(latencies) > 1  # reported latency varies...
        # ...but reported latency never goes non-positive.
        assert all(latency >= 1 for latency in latencies)

    def test_jitter_seed_deterministic(self):
        def run(seed):
            proc = SecureProcessor(
                SecureProcessorConfig.sct_default(
                    protected_size=64 * MIB, timer_jitter_sigma=20, seed=seed
                )
            )
            return [proc.read(0x1000 + i * 64).latency for i in range(5)]

        assert run(1) == run(1)
        assert run(1) != run(2)


class TestGuards:
    def test_metadata_region_not_directly_accessible(self, proc):
        with pytest.raises(ValueError):
            proc.read(proc.layout.counter_base)
        with pytest.raises(ValueError):
            proc.write(proc.layout.levels[0].base, b"x")
