"""Tests for the OS model: page allocator and address spaces."""

import pytest

from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os import AddressSpace, PageAllocator, Process
from repro.proc import SecureProcessor


class TestPageAllocator:
    def test_fresh_allocation_sequential(self):
        alloc = PageAllocator(100)
        assert alloc.alloc() == 0
        assert alloc.alloc() == 1

    def test_free_list_is_lifo_per_core(self):
        alloc = PageAllocator(100, cores=2)
        frames = alloc.alloc_many(3, core=0)
        for frame in frames:
            alloc.free(frame, core=0)
        assert alloc.alloc(core=0) == frames[-1]  # LIFO

    def test_cores_have_separate_lists(self):
        alloc = PageAllocator(100, cores=2)
        frame = alloc.alloc(core=0)
        alloc.free(frame, core=0)
        # Core 1 gets a fresh frame, not core 0's freed one.
        assert alloc.alloc(core=1) != frame

    def test_stage_for_next_alloc(self):
        """The paper's page-colocation primitive (Section VIII-A1)."""
        alloc = PageAllocator(100, cores=2)
        alloc.stage_for_next_alloc(42, core=1)
        assert alloc.alloc(core=1) == 42

    def test_alloc_specific(self):
        alloc = PageAllocator(100)
        assert alloc.alloc_specific(77) == 77
        with pytest.raises(ValueError):
            alloc.alloc_specific(77)

    def test_double_free_rejected(self):
        alloc = PageAllocator(100)
        frame = alloc.alloc()
        alloc.free(frame)
        with pytest.raises(ValueError):
            alloc.free(frame)

    def test_exhaustion(self):
        alloc = PageAllocator(2)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(MemoryError):
            alloc.alloc()

    def test_steals_from_other_core_when_exhausted(self):
        alloc = PageAllocator(2, cores=2)
        a = alloc.alloc(core=0)
        alloc.alloc(core=0)
        alloc.free(a, core=0)
        assert alloc.alloc(core=1) == a

    def test_bad_frame_rejected(self):
        alloc = PageAllocator(10)
        with pytest.raises(ValueError):
            alloc.free(10)
        with pytest.raises(ValueError):
            alloc.alloc_specific(-1)

    def test_is_allocated(self):
        alloc = PageAllocator(10)
        frame = alloc.alloc()
        assert alloc.is_allocated(frame)
        alloc.free(frame)
        assert not alloc.is_allocated(frame)

    def test_staged_frame_not_double_allocated(self):
        alloc = PageAllocator(100)
        frame = alloc.alloc()  # frame 0 allocated
        alloc.stage_for_next_alloc(frame, core=0)  # attacker re-stages it
        assert alloc.alloc(core=0) == frame
        # Fresh allocations skip the re-claimed frame.
        assert alloc.alloc(core=0) != frame


class TestAddressSpace:
    def make(self):
        return AddressSpace(PageAllocator(100), core=0)

    def test_translate_roundtrip(self):
        space = self.make()
        base = space.alloc(2)
        paddr = space.translate(base + 5)
        assert paddr % PAGE_SIZE == 5

    def test_consecutive_vpages(self):
        space = self.make()
        base = space.alloc(3)
        for i in range(3):
            space.translate(base + i * PAGE_SIZE)  # all mapped

    def test_unmapped_rejected(self):
        space = self.make()
        with pytest.raises(KeyError):
            space.translate(0xDEAD000)

    def test_pinned_frame(self):
        space = self.make()
        vpage = space.map_page(frame=33)
        assert space.frame_of(vpage * PAGE_SIZE) == 33

    def test_double_map_rejected(self):
        space = self.make()
        vpage = space.map_page()
        with pytest.raises(ValueError):
            space.map_page(vpage=vpage)


class TestProcess:
    def setup_method(self):
        self.proc = SecureProcessor(
            SecureProcessorConfig.sct_default(protected_size=64 * MIB)
        )
        self.alloc = PageAllocator(self.proc.layout.data_size // PAGE_SIZE)

    def test_read_write_through_va(self):
        process = Process(self.proc, self.alloc)
        base = process.alloc()
        process.write(base, b"hello")
        assert process.read(base).data[:5] == b"hello"

    def test_cleanse_reaches_memory_controller(self):
        process = Process(self.proc, self.alloc, cleanse=True)
        base = process.alloc()
        process.read(base)
        result = process.read(base)
        assert not result.path.is_cache_hit  # flushed between accesses

    def test_no_cleanse_caches(self):
        process = Process(self.proc, self.alloc, cleanse=False)
        base = process.alloc()
        process.read(base)
        assert process.read(base).path.is_cache_hit

    def test_processes_get_distinct_frames(self):
        p1 = Process(self.proc, self.alloc, name="a")
        p2 = Process(self.proc, self.alloc, name="b")
        assert p1.paddr(p1.alloc()) != p2.paddr(p2.alloc())
