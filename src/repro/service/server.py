"""Fault-tolerant leakcheck job server (stdlib-only asyncio HTTP).

``LeakcheckService`` is the long-running layer over the campaign
engine: it accepts leakage-check / bench / probe jobs as JSON over
HTTP, journals every accepted job in the campaign sqlite DB *before*
acknowledging it, dedups against the campaign result cache by blake2b
config hash, and executes admitted jobs through per-job
:class:`~repro.campaign.CampaignEngine` instances on a thread executor.

Robustness properties, in order of importance:

* **No accepted job is ever lost.**  The journal write commits before
  the 202 response leaves the socket; on startup any job still
  ``queued``/``running`` is re-queued (counted in
  ``repro_service_resumed_total``), so a ``kill -9`` mid-run only costs
  the partial work, never the job.
* **Bounded admission.**  The queue never exceeds ``capacity``; excess
  submissions are shed with ``429 Too Many Requests`` plus a
  ``Retry-After`` estimate derived from the observed job rate —
  overload degrades to back-pressure, not to unbounded memory.
* **Graceful drain.**  SIGTERM/SIGINT (wired by ``repro serve``) stops
  admission (``/readyz`` flips to 503), checkpoints still-queued jobs
  back to the journal, lets running jobs finish within a grace period
  (after which their engines get a cooperative
  :meth:`~repro.campaign.CampaignEngine.request_stop`), and exits 0.
* **Per-job budgets.**  Timeouts, bounded retries, and full-jitter
  backoff all reuse the campaign engine's machinery, so a hung victim
  degrades to a structured ``timeout`` job, not a wedged worker.

The HTTP layer is a deliberately small hand-rolled HTTP/1.1
implementation over ``asyncio`` streams (one request per connection,
``Connection: close``) — the repo ships no web framework and does not
need one for a JSON job API.
"""

from __future__ import annotations

import asyncio
import json
import uuid
from typing import Any

from repro import obs
from repro.campaign.db import CampaignDB, JobRow
from repro.campaign.engine import CampaignEngine, CampaignTask, _fn_resolvable
from repro.obs import fleet_prometheus_text, summarize
from repro.perf.metrics import prometheus_text
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    Job,
    build_job_tasks,
    summarize_records,
)
from repro.trace.counters import CounterRegistry
from repro.utils.provenance import git_rev as _git_rev

#: Largest accepted request body; a job spec is a few hundred bytes.
_MAX_BODY = 1 << 20

#: Per-connection read budget: a stalled client cannot pin a handler.
_IO_TIMEOUT_S = 30.0

#: Terminal jobs kept in memory for fast status reads; older ones are
#: evicted (their journal rows remain authoritative).
_MEMORY_JOBS = 4096

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Sentinel pushed onto the queue to wake idle workers during drain.
_STOP = None


class LeakcheckService:
    """Asyncio HTTP job server over the campaign engine (see module doc)."""

    def __init__(
        self,
        db_path: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 64,
        concurrency: int = 2,
        job_timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        engine_jobs: int = 1,
        drain_grace: float = 30.0,
        registry: CounterRegistry | None = None,
        git_rev: str | None = None,
        spans: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be a positive queue bound")
        if concurrency < 1:
            raise ValueError("concurrency must be a positive worker count")
        if engine_jobs < 1:
            raise ValueError("engine_jobs must be a positive shard count")
        if drain_grace <= 0:
            raise ValueError("drain_grace must be positive seconds")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.db_path = str(db_path)
        self.host = host
        self.port = port
        self.capacity = capacity
        self.concurrency = concurrency
        self.job_timeout = job_timeout
        self.retries = retries
        self.backoff = backoff
        self.engine_jobs = engine_jobs
        self.drain_grace = drain_grace
        self.git_rev = git_rev if git_rev is not None else _git_rev()
        self.spans = spans
        #: True when start() installed the process-global span recorder
        #: (close() then tears it down; a caller-provided recorder stays).
        self._obs_owner = False
        #: Structured summary of the last graceful drain (operators grep
        #: the ``drain:`` line the CLI renders from this).
        self.drain_report: dict[str, Any] | None = None

        self.registry = registry if registry is not None else CounterRegistry()
        self._c_requests = self.registry.counter("requests")
        self._c_admitted = self.registry.counter("admitted")
        self._c_shed = self.registry.counter("shed")
        self._c_rejected = self.registry.counter("rejected")
        self._c_dedup = self.registry.counter("dedup_hits")
        self._c_resumed = self.registry.counter("resumed")
        self._c_drained = self.registry.counter("drained")
        self._c_done = self.registry.counter("done")
        self._c_failed = self.registry.counter("failed")
        self._c_timeout = self.registry.counter("timeout")
        self._c_cancelled = self.registry.counter("cancelled")
        self.registry.gauge("queue_depth", lambda: float(self._queue_depth()))
        self.registry.gauge("running", lambda: float(len(self._running)))
        self.registry.gauge("draining", lambda: float(self._draining))

        self.db: CampaignDB | None = None
        self._jobs: dict[str, Job] = {}
        self._running: dict[str, CampaignEngine] = {}
        self._queue: asyncio.Queue[Job | None] = asyncio.Queue()
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None
        self._avg_job_s = 1.0  # EMA of job wall time, for Retry-After

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open the journal, resume pending jobs, start workers + listener."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        if self.spans and obs.active() is None:
            obs.enable()
            self._obs_owner = True
        self.db = CampaignDB(self.db_path)
        self._resume_journal()
        self._workers = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(self.concurrency)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until a drain has fully completed."""
        assert self._stopped is not None, "service not started"
        await self._stopped.wait()

    async def close(self) -> None:
        """Programmatic graceful shutdown (tests, bench): drain and wait."""
        self.begin_drain()
        await self.wait_closed()
        if self.db is not None:
            self.db.close()
        if self._obs_owner:
            obs.disable()
            self._obs_owner = False

    def begin_drain(self) -> None:
        """Enter drain mode; idempotent, safe to call from a signal handler."""
        if self._draining:
            return
        self._draining = True
        self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        # Checkpoint still-queued jobs: their journal rows stay 'queued'
        # so the next start re-queues them; only the in-memory queue is
        # emptied.  No await between get_nowait calls, so no worker can
        # interleave and steal one mid-checkpoint.
        checkpointed: list[str] = []
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if job is not None and job.state == QUEUED:
                self._c_drained.incr()
                checkpointed.append(job.id)
                # Each checkpointed job gets a final span so the drain is
                # visible in its trace, not just in the journal.
                self._emit_job_span(job, "checkpointed",
                                    kind="job.checkpoint",
                                    reason="graceful drain")
        for _ in self._workers:
            self._queue.put_nowait(_STOP)
        done, still_running = await asyncio.wait(
            self._workers, timeout=self.drain_grace
        )
        if still_running:
            # Grace expired: ask in-flight engines to stop scheduling and
            # finish cooperatively, then give them one more grace period.
            for engine in list(self._running.values()):
                engine.request_stop()
            done, still_running = await asyncio.wait(
                still_running, timeout=self.drain_grace
            )
        for task in still_running:
            task.cancel()
        self.drain_report = {
            "event": "drain",
            "checkpointed": len(checkpointed),
            "checkpointed_jobs": checkpointed,
            "forced_stop": len(still_running),
            "grace_s": self.drain_grace,
        }
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    def drain_summary_line(self) -> str:
        """Structured one-line drain summary (grep ``drain:`` in logs)."""
        report = self.drain_report or {
            "event": "drain", "checkpointed": 0, "checkpointed_jobs": [],
            "forced_stop": 0, "grace_s": self.drain_grace,
        }
        return "drain: " + json.dumps(report, sort_keys=True)

    def _resume_journal(self) -> None:
        """Re-queue every journalled job that never reached a terminal state."""
        assert self.db is not None
        for row in self.db.journal_pending():
            try:
                spec = json.loads(row.spec)
            except json.JSONDecodeError:
                spec = {}
            # A resumed job keeps the trace id minted at its original
            # admission; pre-v3 rows (no trace) mint one now.
            trace = row.trace or obs.new_trace_id()
            job = Job(
                id=row.id, kind=row.kind, spec=spec, state=QUEUED,
                submitted=row.submitted, attempts=row.attempts, resumed=True,
                trace_id=trace,
            )
            self.db.journal_update(row.id, state=QUEUED, resumed=1,
                                   trace=trace)
            self._remember(job)
            self._queue.put_nowait(job)
            self._c_resumed.incr()

    # -- job execution -----------------------------------------------------

    def _queue_depth(self) -> int:
        return self._queue.qsize()

    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is _STOP:
                return
            if job.state == CANCELLED:
                continue
            if job.cancel_requested:
                job.advance(CANCELLED)
                self._journal_terminal(job)
                self._emit_job_span(job, "cancelled")
                continue
            job.advance(RUNNING)
            job.attempts += 1
            self.db.journal_update(
                job.id, state=RUNNING, attempts=job.attempts
            )
            # Root span of the job's trace: covers admission (queue-wait
            # becomes an explicit child phase) through the terminal state.
            job_span: Any = obs.NULL_SPAN
            recorder = obs.active()
            if recorder is not None and job.trace_id:
                job_span = recorder.start_span(
                    "service.job", kind="service.job",
                    trace_id=job.trace_id, start_at=job.submitted,
                    attrs={"job": job.id, "kind": job.kind,
                           "resumed": job.resumed, "attempt": job.attempts},
                )
                recorder.start_span(
                    "job.queue", kind="job.queue", parent=job_span,
                    start_at=job.submitted, attrs={"job": job.id},
                ).end("ok")
            span_parent = (
                job_span.context if job_span is not obs.NULL_SPAN else None
            )
            started = self._loop.time()
            try:
                state, summary, error = await self._loop.run_in_executor(
                    None, self._execute_job, job, span_parent
                )
            except Exception as exc:  # noqa: BLE001 - job isolation
                state, summary, error = (
                    FAILED, None, f"{type(exc).__name__}: {exc}"
                )
            finally:
                self._running.pop(job.id, None)
            elapsed = self._loop.time() - started
            self._avg_job_s = 0.8 * self._avg_job_s + 0.2 * max(0.01, elapsed)
            job.error = error
            job.result = summary
            if summary is not None:
                job.cached = (
                    summary["ok"] > 0 and summary["cached"] == summary["ok"]
                    and summary["failed"] == summary["timeout"] == 0
                )
            job.advance(state)
            self._journal_terminal(job)
            job_span.set_many({"state": job.state, "cached": job.cached})
            if job.error:
                job_span.set("error", job.error[:200])
            job_span.end("ok" if job.state == DONE else job.state)
            self._persist_spans(job.trace_id)

    def _execute_job(
        self, job: Job, span_parent: "obs.SpanContext | None" = None
    ) -> tuple[str, dict[str, Any] | None, str]:
        """Run one job through a fresh campaign engine (executor thread).

        ``span_parent`` is passed explicitly because ``run_in_executor``
        does not propagate the event loop's context vars into executor
        threads — the job span would otherwise be lost here.
        """
        _, tasks = build_job_tasks(job.kind, job.spec)
        run_span: Any = obs.NULL_SPAN
        if span_parent is not None:
            run_span = obs.start_span(
                "job.run", kind="job.run", parent=span_parent,
                attrs={"job": job.id, "kind": job.kind,
                       "tasks": len(tasks)},
            )
        engine = CampaignEngine(
            jobs=self.engine_jobs,
            timeout=self.job_timeout,
            retries=self.retries,
            backoff=self.backoff,
            reseed_base=job.spec.get("seed"),
            db=self.db_path,
            use_cache=True,
            git_rev=self.git_rev,
            span_parent=(
                run_span.context if run_span is not obs.NULL_SPAN else None
            ),
        )
        self._running[job.id] = engine
        if job.cancel_requested:
            engine.request_stop()
        try:
            report = engine.run(tasks)
        except BaseException:
            run_span.end("failed")
            raise
        finally:
            engine.db.close()
        outcome = summarize_records(report.records)
        run_span.end("ok" if outcome[0] == DONE else outcome[0])
        return outcome

    def _persist_spans(self, trace_id: str) -> None:
        """Move a trace's finished spans from the recorder into the DB."""
        recorder = obs.active()
        if recorder is None or self.db is None or not trace_id:
            return
        spans = recorder.drain(trace_id=trace_id)
        if spans:
            self.db.span_put_many(spans)

    def _emit_job_span(self, job: Job, outcome: str, *,
                       kind: str = "service.job", **attrs: Any) -> None:
        """Synthesize + persist a job-level span for jobs that never ran
        (dedup hits, queue cancels, drain checkpoints)."""
        recorder = obs.active()
        if recorder is None or not job.trace_id:
            return
        span = recorder.start_span(
            kind, kind=kind, trace_id=job.trace_id, start_at=job.submitted,
            attrs={"job": job.id, "kind": job.kind, **attrs},
        )
        span.end(outcome)
        self._persist_spans(job.trace_id)

    def _journal_terminal(self, job: Job) -> None:
        result_text = (
            json.dumps(job.result, sort_keys=True)
            if job.result is not None else None
        )
        self.db.journal_update(
            job.id, state=job.state, error=job.error, result=result_text,
        )
        counter = {
            DONE: self._c_done, FAILED: self._c_failed,
            TIMEOUT: self._c_timeout, CANCELLED: self._c_cancelled,
        }.get(job.state)
        if counter is not None:
            counter.incr()

    # -- admission ---------------------------------------------------------

    def _retry_after_s(self) -> int:
        backlog = self._queue_depth() + len(self._running)
        estimate = backlog * self._avg_job_s / max(1, self.concurrency)
        return max(1, min(120, int(estimate) + 1))

    def _try_cache_serve(
        self, tasks: list[CampaignTask]
    ) -> dict[str, Any] | None:
        """Admission-time dedup: serve the whole job from the campaign DB.

        Only complete hits count — if any task misses (or is uncacheable)
        the job is queued normally and the engine re-checks per task.
        """
        entries = []
        for task in tasks:
            if not _fn_resolvable(task.fn):
                return None
            row = self.db.lookup(task.config_hash, self.git_rev)
            if row is None:
                return None
            try:
                result = json.loads(row.payload)
            except (json.JSONDecodeError, TypeError):
                return None
            entries.append({
                "name": task.name, "status": "ok", "attempts": row.attempts,
                "elapsed": row.elapsed, "cached": True, "result": result,
            })
        return {
            "tasks": entries, "ok": len(entries), "cached": len(entries),
            "failed": 0, "timeout": 0, "cancelled": 0,
        }

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) <= _MEMORY_JOBS:
            return
        for job_id, old in list(self._jobs.items()):
            if old.terminal:
                del self._jobs[job_id]
                if len(self._jobs) <= _MEMORY_JOBS:
                    break

    def _submit(self, body: bytes) -> tuple[int, Any, dict[str, str]]:
        if self._draining:
            return 503, {"error": "service is draining; not admitting jobs"}, {
                "Retry-After": "30"
            }
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._c_rejected.incr()
            return 400, {"error": "request body must be a JSON object"}, {}
        if not isinstance(data, dict):
            self._c_rejected.incr()
            return 400, {"error": "request body must be a JSON object"}, {}
        kind = data.get("kind")
        spec = data.get("spec", {})
        try:
            normalized, tasks = build_job_tasks(kind, spec)
        except ValueError as error:
            self._c_rejected.incr()
            return 400, {"error": str(error)}, {}
        if self._queue_depth() >= self.capacity:
            self._c_shed.incr()
            retry_after = self._retry_after_s()
            return 429, {
                "error": "job queue is full",
                "queue_depth": self._queue_depth(),
                "capacity": self.capacity,
                "retry_after_s": retry_after,
            }, {"Retry-After": str(retry_after)}

        # The trace id is minted here, at admission — the outermost entry
        # point of the job's life — and journalled with it, so every
        # later attempt (including after a kill -9 resume) shares it.
        job = Job(id=uuid.uuid4().hex[:12], kind=kind, spec=normalized,
                  trace_id=obs.new_trace_id())
        cached = self._try_cache_serve(tasks)
        if cached is not None:
            # Dedup hit: journal the job already-terminal and reply 200
            # without ever queueing work.
            self.db.journal_put(
                job_id=job.id, kind=job.kind,
                spec=json.dumps(normalized, sort_keys=True),
                state=DONE, result=json.dumps(cached, sort_keys=True),
                trace=job.trace_id,
            )
            job.advance(DONE)
            job.cached = True
            job.result = cached
            self._remember(job)
            self._c_admitted.incr()
            self._c_dedup.incr()
            self._c_done.incr()
            self._emit_job_span(job, "ok", cache="hit", dedup=True)
            return 200, job.to_dict(), {}
        # Write-ahead: the journal row commits before the client hears
        # "accepted", so a crash after this line can only re-run the job,
        # never forget it.
        self.db.journal_put(
            job_id=job.id, kind=job.kind,
            spec=json.dumps(normalized, sort_keys=True), state=QUEUED,
            trace=job.trace_id,
        )
        self._remember(job)
        self._queue.put_nowait(job)
        self._c_admitted.incr()
        return 202, job.to_dict(), {}

    def _cancel(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        job = self._jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        if job.terminal:
            return 409, {
                "error": f"job already terminal ({job.state})",
                "job": job.to_dict(brief=True),
            }, {}
        job.cancel_requested = True
        if job.state == QUEUED:
            job.advance(CANCELLED)
            self._journal_terminal(job)
            self._emit_job_span(job, "cancelled")
            return 200, job.to_dict(), {}
        engine = self._running.get(job_id)
        if engine is not None:
            engine.request_stop()
        return 202, job.to_dict(), {}

    def _job_status(self, job_id: str) -> tuple[int, Any, dict[str, str]]:
        job = self._jobs.get(job_id)
        if job is not None:
            return 200, job.to_dict(), {}
        assert self.db is not None
        row = self.db.journal_get(job_id)
        if row is None:
            return 404, {"error": f"unknown job {job_id!r}"}, {}
        return 200, _row_to_dict(row), {}

    def _job_list(self) -> tuple[int, Any, dict[str, str]]:
        jobs = [job.to_dict(brief=True) for job in self._jobs.values()]
        by_state: dict[str, int] = {}
        for job in jobs:
            by_state[job["state"]] = by_state.get(job["state"], 0) + 1
        return 200, {
            "jobs": jobs,
            "by_state": by_state,
            "queue_depth": self._queue_depth(),
            "capacity": self.capacity,
            "draining": self._draining,
        }, {}

    # -- HTTP plumbing -----------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Any, dict[str, str], str]:
        """Dispatch one request; returns (status, payload, headers, ctype)."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}, {}, "application/json"
            return 200, {"status": "ok"}, {}, "application/json"
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "GET only"}, {}, "application/json"
            if self._draining:
                return 503, {"status": "draining"}, {}, "application/json"
            return 200, {
                "status": "ready",
                "queue_depth": self._queue_depth(),
                "capacity": self.capacity,
            }, {}, "application/json"
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}, {}, "application/json"
            text = prometheus_text(self.registry, namespace="repro_service")
            recorder = obs.active()
            if recorder is not None:
                # Fleet telemetry over the recent span window rides along
                # under its own repro_obs_* namespace.
                text += fleet_prometheus_text(summarize(recorder.recent()))
            return 200, text, {}, "text/plain; version=0.0.4"
        if path == "/debug/spans":
            if method != "GET":
                return 405, {"error": "GET only"}, {}, "application/json"
            recorder = obs.active()
            if recorder is None:
                return 200, {
                    "enabled": False, "active": 0, "recorded": 0,
                    "dropped": 0, "recent": [],
                }, {}, "application/json"
            return 200, {
                "enabled": True,
                "active": recorder.active,
                "recorded": recorder.recorded,
                "dropped": recorder.dropped,
                "recent": recorder.recent(200),
            }, {}, "application/json"
        if path == "/jobs":
            if method == "POST":
                status, payload, headers = self._submit(body)
                return status, payload, headers, "application/json"
            if method == "GET":
                status, payload, headers = self._job_list()
                return status, payload, headers, "application/json"
            return 405, {"error": "GET or POST"}, {}, "application/json"
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if method == "GET":
                status, payload, headers = self._job_status(job_id)
                return status, payload, headers, "application/json"
            if method == "DELETE":
                status, payload, headers = self._cancel(job_id)
                return status, payload, headers, "application/json"
            return 405, {"error": "GET or DELETE"}, {}, "application/json"
        return 404, {"error": f"no route for {path!r}"}, {}, "application/json"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_requests.incr()
        status, payload, headers, ctype = (
            400, {"error": "malformed request"}, {}, "application/json"
        )
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=_IO_TIMEOUT_S
            )
            parts = request_line.decode("latin-1").split()
            if len(parts) >= 2:
                method, path = parts[0].upper(), parts[1]
                req_headers: dict[str, str] = {}
                for _ in range(100):
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=_IO_TIMEOUT_S
                    )
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    req_headers[name.strip().lower()] = value.strip()
                try:
                    length = int(req_headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > _MAX_BODY:
                    status, payload = 413, {"error": "body too large"}
                else:
                    body = b""
                    if length:
                        body = await asyncio.wait_for(
                            reader.readexactly(length), timeout=_IO_TIMEOUT_S
                        )
                    try:
                        status, payload, headers, ctype = self._route(
                            method, path, body
                        )
                    except Exception as exc:  # noqa: BLE001 - keep serving
                        status, payload = 500, {
                            "error": f"{type(exc).__name__}: {exc}"
                        }
        except (
            asyncio.TimeoutError, asyncio.IncompleteReadError,
            ConnectionError, UnicodeDecodeError,
        ):
            pass
        try:
            if isinstance(payload, str):
                raw = payload.encode("utf-8")
            else:
                raw = (json.dumps(payload, sort_keys=True) + "\n").encode()
            reason = _REASONS.get(status, "Unknown")
            head_lines = [
                f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(raw)}",
                "Connection: close",
            ]
            head_lines += [f"{k}: {v}" for k, v in headers.items()]
            writer.write(
                ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + raw
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- reporting ---------------------------------------------------------

    def summary_line(self) -> str:
        """One-line service tally for CLI output (and CI grepping)."""
        snap = self.registry.snapshot()
        parts = [
            f"service: {int(snap['admitted'])} admitted, "
            f"{int(snap['done'])} done, {int(snap['failed'])} failed, "
            f"{int(snap['timeout'])} timeout, "
            f"{int(snap['cancelled'])} cancelled"
        ]
        if snap["dedup_hits"]:
            parts.append(f"{int(snap['dedup_hits'])} dedup-served")
        if snap["resumed"]:
            parts.append(f"{int(snap['resumed'])} resumed from journal")
        if snap["shed"]:
            parts.append(f"{int(snap['shed'])} shed (queue full)")
        if snap["drained"]:
            parts.append(f"{int(snap['drained'])} checkpointed at drain")
        return "; ".join(parts)


def _row_to_dict(row: JobRow) -> dict[str, Any]:
    """Journal row -> status-endpoint shape (for jobs evicted from memory)."""
    try:
        spec = json.loads(row.spec)
    except json.JSONDecodeError:
        spec = {}
    result = None
    if row.result:
        try:
            result = json.loads(row.result)
        except json.JSONDecodeError:
            result = None
    return {
        "id": row.id,
        "kind": row.kind,
        "state": row.state,
        "submitted": row.submitted,
        "updated": row.updated,
        "attempts": row.attempts,
        "resumed": bool(row.resumed),
        "cached": False,
        "spec": spec,
        "error": row.error,
        "result": result,
    }
