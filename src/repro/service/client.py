"""Stdlib asyncio HTTP client + load generator for the leakcheck service.

Two layers:

* :func:`http_request` — a minimal one-shot HTTP/1.1 JSON client over
  ``asyncio.open_connection`` (the service speaks one request per
  connection, so this is all a client needs).
* :func:`run_load` — the ``repro service-load`` engine: submit ``jobs``
  job specs with bounded client-side concurrency, honour 429 shedding by
  sleeping the server's ``Retry-After`` and resubmitting, poll each
  accepted job to a terminal state, and fold everything into a
  :class:`LoadReport` (sustained jobs/sec, state tally, dedup hits).

The load generator is also what the ``service_jobs`` bench scenario and
the CI smoke job run, so its report fields are part of the measured
surface — keep them stable.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.service.jobs import CANCELLED, DONE, FAILED, TERMINAL_STATES, TIMEOUT


class ServiceClientError(RuntimeError):
    """The service could not be reached or spoke something unexpected."""


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict[str, Any] | None = None,
    *,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], Any]:
    """One HTTP/1.1 request; returns ``(status, headers, decoded_body)``."""
    raw = b""
    if body is not None:
        raw = json.dumps(body, sort_keys=True).encode("utf-8")
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError) as error:
        raise ServiceClientError(
            f"cannot connect to {host}:{port}: {error}"
        ) from error
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(raw)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + raw)
        await writer.drain()
        status_line = await asyncio.wait_for(
            reader.readline(), timeout=timeout
        )
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceClientError(
                f"malformed status line {status_line!r} from {host}:{port}"
            )
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        payload = await asyncio.wait_for(reader.read(), timeout=timeout)
        if headers.get("content-type", "").startswith("application/json"):
            try:
                decoded: Any = json.loads(payload.decode("utf-8") or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ServiceClientError(
                    f"undecodable JSON body from {host}:{port}: {error}"
                ) from error
        else:
            decoded = payload.decode("utf-8", errors="replace")
        return status, headers, decoded
    except (asyncio.TimeoutError, ConnectionError, asyncio.IncompleteReadError) as error:
        raise ServiceClientError(
            f"request {method} {path} to {host}:{port} failed: {error}"
        ) from error
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class LoadReport:
    """Outcome of one ``run_load`` campaign against a running service."""

    jobs: int = 0
    accepted: int = 0
    shed: int = 0
    rejected: int = 0
    states: dict[str, int] = field(default_factory=dict)
    cached: int = 0
    elapsed_s: float = 0.0
    retries_after_shed: int = 0

    @property
    def completed(self) -> int:
        return sum(self.states.get(state, 0) for state in TERMINAL_STATES)

    @property
    def jobs_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def ok(self) -> bool:
        """Every submitted job reached ``done`` (possibly via the cache)."""
        bad = (
            self.rejected
            + self.states.get(FAILED, 0)
            + self.states.get(TIMEOUT, 0)
            + self.states.get(CANCELLED, 0)
        )
        return bad == 0 and self.states.get(DONE, 0) == self.jobs

    def to_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "accepted": self.accepted,
            "shed": self.shed,
            "rejected": self.rejected,
            "retries_after_shed": self.retries_after_shed,
            "states": dict(sorted(self.states.items())),
            "cached": self.cached,
            "completed": self.completed,
            "elapsed_s": round(self.elapsed_s, 6),
            "jobs_per_second": round(self.jobs_per_second, 3),
            "ok": self.ok,
        }


def format_load_report(report: LoadReport) -> str:
    lines = [
        "service load report",
        f"  submitted          {report.jobs}",
        f"  accepted           {report.accepted}"
        + (f" ({report.cached} dedup-served)" if report.cached else ""),
        f"  shed (429)         {report.shed}"
        + (
            f" -> {report.retries_after_shed} resubmitted"
            if report.retries_after_shed else ""
        ),
        f"  rejected (4xx)     {report.rejected}",
    ]
    for state, count in sorted(report.states.items()):
        lines.append(f"  {state:<19}{count}")
    lines.append(f"  elapsed            {report.elapsed_s:.3f} s")
    lines.append(f"  throughput         {report.jobs_per_second:.2f} jobs/s")
    lines.append(f"  verdict            {'OK' if report.ok else 'DEGRADED'}")
    return "\n".join(lines)


async def _drive_one(
    host: str,
    port: int,
    spec: dict[str, Any],
    kind: str,
    report: LoadReport,
    lock: asyncio.Lock,
    *,
    poll_interval: float,
    job_deadline: float,
    max_shed_retries: int,
) -> None:
    """Submit one job (retrying shed submissions) and poll it terminal."""
    job: dict[str, Any] | None = None
    for attempt in range(max_shed_retries + 1):
        status, headers, data = await http_request(
            host, port, "POST", "/jobs", {"kind": kind, "spec": spec}
        )
        if status in (200, 202):
            job = data
            async with lock:
                report.accepted += 1
            break
        if status == 429:
            async with lock:
                report.shed += 1
            if attempt == max_shed_retries:
                async with lock:
                    report.states["shed_gave_up"] = (
                        report.states.get("shed_gave_up", 0) + 1
                    )
                return
            retry_after = 1.0
            try:
                retry_after = float(headers.get("retry-after", "1"))
            except ValueError:
                pass
            async with lock:
                report.retries_after_shed += 1
            # Cap the honoured delay: the point is back-pressure, not a
            # stalled load test when the server estimates a long queue.
            await asyncio.sleep(min(retry_after, 2.0))
            continue
        async with lock:
            report.rejected += 1
        return
    assert job is not None
    if job.get("state") in TERMINAL_STATES:
        async with lock:
            report.states[job["state"]] = report.states.get(job["state"], 0) + 1
            if job.get("cached"):
                report.cached += 1
        return
    deadline = time.monotonic() + job_deadline
    while time.monotonic() < deadline:
        await asyncio.sleep(poll_interval)
        status, _, data = await http_request(
            host, port, "GET", f"/jobs/{job['id']}"
        )
        if status != 200:
            async with lock:
                report.states["lost"] = report.states.get("lost", 0) + 1
            return
        if data.get("state") in TERMINAL_STATES:
            async with lock:
                report.states[data["state"]] = (
                    report.states.get(data["state"], 0) + 1
                )
                if data.get("cached"):
                    report.cached += 1
            return
    async with lock:
        report.states["poll_deadline"] = (
            report.states.get("poll_deadline", 0) + 1
        )


async def run_load(
    host: str,
    port: int,
    *,
    jobs: int,
    concurrency: int = 8,
    kind: str = "probe",
    spec: dict[str, Any] | None = None,
    distinct_seeds: bool = True,
    poll_interval: float = 0.05,
    job_deadline: float = 120.0,
    max_shed_retries: int = 50,
) -> LoadReport:
    """Submit ``jobs`` jobs with bounded concurrency; poll all terminal.

    With ``distinct_seeds`` each job gets ``spec["seed"] = base + i`` so
    the run measures real executions; with it off every job is identical
    and everything after the first is a dedup hit — useful for measuring
    the warm-cache fast path.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    base_spec = dict(spec or {})
    base_seed = int(base_spec.get("seed", 0))
    report = LoadReport(jobs=jobs)
    lock = asyncio.Lock()
    sem = asyncio.Semaphore(concurrency)

    async def one(i: int) -> None:
        job_spec = dict(base_spec)
        if distinct_seeds:
            job_spec["seed"] = base_seed + i
        async with sem:
            await _drive_one(
                host, port, job_spec, kind, report, lock,
                poll_interval=poll_interval, job_deadline=job_deadline,
                max_shed_retries=max_shed_retries,
            )

    started = time.monotonic()
    await asyncio.gather(*(one(i) for i in range(jobs)))
    report.elapsed_s = time.monotonic() - started
    return report
