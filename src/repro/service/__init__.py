"""Fault-tolerant leakcheck-as-a-service layer over the campaign engine.

``repro serve`` runs :class:`LeakcheckService` — a stdlib-only asyncio
HTTP job server with bounded admission (429 + ``Retry-After`` when the
queue is full), a write-ahead job journal in the campaign sqlite DB
(accepted jobs survive ``kill -9`` and resume on restart), dedup of
repeat submissions via the campaign result cache, and SIGTERM/SIGINT
graceful drain.  ``repro service-load`` is the matching load generator.
See ``docs/service.md``.
"""

from repro.service.client import (
    LoadReport,
    ServiceClientError,
    format_load_report,
    http_request,
    run_load,
)
from repro.service.jobs import (
    ALL_STATES,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    Job,
    JobStateError,
    build_job_tasks,
    job_kinds,
    run_probe,
    summarize_records,
)
from repro.service.server import LeakcheckService

__all__ = [
    "ALL_STATES",
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "TIMEOUT",
    "Job",
    "JobStateError",
    "LeakcheckService",
    "LoadReport",
    "ServiceClientError",
    "build_job_tasks",
    "format_load_report",
    "http_request",
    "job_kinds",
    "run_load",
    "run_probe",
    "summarize_records",
]
