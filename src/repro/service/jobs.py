"""Service job model: state machine, specs, and campaign-task mapping.

A *job* is what the HTTP server accepts: a kind (``probe``,
``leakcheck``, ``bench``, ``synth``), a JSON spec, and a
server-assigned id.  A job
expands into one or more :class:`~repro.campaign.CampaignTask` — the
unit the campaign engine executes, retries, and caches — via
:func:`build_job_tasks`; the task names and kwargs match what the CLI
subcommands submit, so the service and ``python -m repro leakcheck``
share one result cache.

The state machine is strict::

    queued ──► running ──► done | failed | timeout | cancelled
       │                                      ▲
       ├──────────────────────────────────────┘   (cancelled in queue)
       └──► done                                  (served from cache)

Invalid transitions raise :class:`JobStateError` instead of silently
corrupting the journal, and terminal states never change again.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.engine import CampaignTask
from repro.campaign.payload import PayloadError, encode_payload
from repro.runner.core import STATUS_OK, STATUS_SKIPPED, STATUS_TIMEOUT

# -- job states ------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})

#: Every state, for validation when rows come back from the journal.
ALL_STATES = frozenset({QUEUED, RUNNING}) | TERMINAL_STATES

_ALLOWED: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED, DONE}),
    RUNNING: frozenset({DONE, FAILED, TIMEOUT, CANCELLED}),
}

#: Guardrail on probe work so a single load-test job cannot wedge a
#: worker for minutes; real workloads go through leakcheck/bench kinds.
MAX_PROBE_OPS = 1_000_000


class JobStateError(RuntimeError):
    """An illegal job state transition (or an unknown state)."""


@dataclass
class Job:
    """One accepted service job and its lifecycle bookkeeping."""

    id: str
    kind: str
    spec: dict[str, Any]
    state: str = QUEUED
    submitted: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)
    attempts: int = 0
    resumed: bool = False
    cached: bool = False
    cancel_requested: bool = False
    error: str = ""
    result: dict[str, Any] | None = None
    #: Fleet-tracing trace id, minted once at admission and preserved by
    #: journal resume — the same id spans every attempt of this job.
    trace_id: str = ""

    def advance(self, new_state: str) -> None:
        """Transition to ``new_state``; raises JobStateError if illegal."""
        if new_state not in ALL_STATES:
            raise JobStateError(f"unknown job state {new_state!r}")
        allowed = _ALLOWED.get(self.state, frozenset())
        if new_state not in allowed:
            raise JobStateError(
                f"job {self.id}: illegal transition "
                f"{self.state!r} -> {new_state!r}"
            )
        self.state = new_state
        self.updated = time.time()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, *, brief: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted": self.submitted,
            "updated": self.updated,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "cached": self.cached,
            "trace_id": self.trace_id,
        }
        if brief:
            return out
        out["spec"] = self.spec
        out["error"] = self.error
        out["result"] = self.result
        return out


# -- probe workload --------------------------------------------------------


def run_probe(*, preset: str = "sct", ops: int = 400, seed: int = 0) -> dict:
    """A small seeded steady-state workload: the service's load-test job.

    Runs ``ops`` mixed accesses (reads, writes, occasional flushes) on a
    deliberately small machine so the job finishes in tens of
    milliseconds.  The simulated columns are deterministic per
    ``(preset, ops, seed)``, which makes probe jobs ideal both for the
    sustained-jobs/sec bench scenario and for exercising the campaign
    cache (an identical resubmission is a dedup hit).
    """
    from random import Random

    from repro.config import MIB, PAGE_SIZE, preset_config
    from repro.os.page_alloc import PageAllocator
    from repro.proc.processor import SecureProcessor

    overrides: dict[str, object] = {
        "functional_crypto": False, "timer_jitter_sigma": 0.0,
    }
    if preset != "sgx":
        overrides["protected_size"] = 8 * MIB
    config = preset_config(preset, **overrides)
    proc = SecureProcessor(config)
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    rng = Random(seed)
    frames = allocator.alloc_many(8, core=0)
    addrs = [
        frame * PAGE_SIZE + 64 * rng.randrange(PAGE_SIZE // 64)
        for frame in frames for _ in range(4)
    ]
    for i in range(ops):
        addr = rng.choice(addrs)
        roll = rng.random()
        if roll < 0.72:
            proc.read(addr, core=0)
        elif roll < 0.94:
            proc.write(addr, i.to_bytes(8, "little"), core=0)
        else:
            proc.flush(addr)
    proc.drain_writes()
    return {
        "preset": preset,
        "ops": ops,
        "seed": seed,
        "simulated_cycles": proc.cycle,
        "accesses": ops + 1,
    }


# -- spec validation and task expansion ------------------------------------


def _require_int(spec: dict, key: str, default: int, *, lo: int | None = None,
                 hi: int | None = None) -> int:
    value = spec.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"spec[{key!r}] must be an integer, got {value!r}")
    if lo is not None and value < lo:
        raise ValueError(f"spec[{key!r}] must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ValueError(f"spec[{key!r}] must be <= {hi}, got {value}")
    return value


def build_job_tasks(
    kind: str, spec: dict[str, Any]
) -> tuple[dict[str, Any], list[CampaignTask]]:
    """Validate a job spec and expand it into campaign tasks.

    Returns ``(normalized_spec, tasks)``; raises :class:`ValueError` for
    anything malformed, which the server maps to HTTP 400.  Task names
    and kwargs deliberately mirror the equivalent CLI invocations so the
    campaign cache is shared between the service and the CLI.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"job spec must be a JSON object, got {type(spec).__name__}")

    if kind == "probe":
        from repro.config import preset_names

        preset = spec.get("preset", "sct")
        if preset not in preset_names():
            raise ValueError(
                f"unknown preset {preset!r}; choose from {list(preset_names())}"
            )
        ops = _require_int(spec, "ops", 400, lo=1, hi=MAX_PROBE_OPS)
        seed = _require_int(spec, "seed", 0)
        normalized = {"preset": preset, "ops": ops, "seed": seed}
        task = CampaignTask(
            name=f"probe_{preset}_o{ops}_s{seed}",
            fn=run_probe,
            kwargs=normalized,
        )
        return normalized, [task]

    if kind == "leakcheck":
        from repro.leakcheck import run_leakcheck
        from repro.leakcheck.victims import victim_names

        victim = spec.get("victim")
        if victim not in victim_names():
            raise ValueError(
                f"unknown leakcheck victim {victim!r}; "
                f"choose from {victim_names()}"
            )
        seed = _require_int(spec, "seed", 0)
        seeds = _require_int(spec, "seeds", 1, lo=1, hi=64)
        alpha = spec.get("alpha", 0.01)
        if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
            raise ValueError(f"spec['alpha'] must be a number, got {alpha!r}")
        if not 0 < alpha < 1:
            raise ValueError(f"spec['alpha'] must be in (0, 1), got {alpha}")
        normalized = {
            "victim": victim, "seed": seed, "seeds": seeds,
            "alpha": float(alpha),
        }
        tasks = [
            CampaignTask(
                name=f"leakcheck_{victim}_s{seed + offset}",
                fn=run_leakcheck,
                kwargs={
                    "victim": victim, "seed": seed + offset,
                    "alpha": float(alpha),
                },
            )
            for offset in range(seeds)
        ]
        return normalized, tasks

    if kind == "bench":
        from repro.perf import bench

        scenario = spec.get("scenario")
        if scenario not in bench.scenario_names():
            raise ValueError(
                f"unknown bench scenario {scenario!r}; "
                f"choose from {bench.scenario_names()}"
            )
        seed = _require_int(spec, "seed", 0)
        quick = spec.get("quick", False)
        if not isinstance(quick, bool):
            raise ValueError(f"spec['quick'] must be a boolean, got {quick!r}")
        normalized = {"scenario": scenario, "seed": seed, "quick": quick}
        task = CampaignTask(
            name=f"bench_{scenario}",
            fn=bench.run_scenario,
            kwargs={"name": scenario, "seed": seed, "quick": quick},
        )
        return normalized, [task]

    if kind == "synth":
        from repro.config import preset_names
        from repro.synth import DEFENSES, GenConfig, generate_batch
        from repro.synth.fuzz import task_name
        from repro.synth.runner import evaluate_program

        preset = spec.get("preset", "sct")
        if preset not in preset_names():
            raise ValueError(
                f"unknown preset {preset!r}; choose from {list(preset_names())}"
            )
        defense = spec.get("defense", "none")
        if defense not in DEFENSES:
            raise ValueError(
                f"unknown defense {defense!r}; choose from {list(DEFENSES)}"
            )
        seed = _require_int(spec, "seed", 0)
        budget = _require_int(spec, "budget", 16, lo=1, hi=256)
        alpha = spec.get("alpha", 0.01)
        if isinstance(alpha, bool) or not isinstance(alpha, (int, float)):
            raise ValueError(f"spec['alpha'] must be a number, got {alpha!r}")
        if not 0 < alpha < 1:
            raise ValueError(f"spec['alpha'] must be in (0, 1), got {alpha}")
        normalized = {
            "preset": preset, "defense": defense, "seed": seed,
            "budget": budget, "alpha": float(alpha),
        }
        tasks = [
            CampaignTask(
                name=task_name(preset, defense, gen_seed),
                fn=evaluate_program,
                kwargs={
                    "program": program, "preset": preset, "defense": defense,
                    "alpha": float(alpha), "gen_seed": gen_seed,
                },
            )
            for gen_seed, program in generate_batch(seed, budget, GenConfig())
        ]
        return normalized, tasks

    raise ValueError(
        f"unknown job kind {kind!r}; "
        f"choose from ['probe', 'leakcheck', 'bench', 'synth']"
    )


def job_kinds() -> list[str]:
    return ["probe", "leakcheck", "bench", "synth"]


# -- outcome summarisation -------------------------------------------------


def summarize_records(records: list[Any]) -> tuple[str, dict[str, Any], str]:
    """Fold task records into ``(job_state, result_summary, error)``.

    Severity order: any ``failed`` task fails the job, else any
    ``timeout`` times it out, else any cancelled/skipped task marks it
    cancelled (a drain checkpointed it mid-run), else it is done.
    """
    tasks: list[dict[str, Any]] = []
    errors: list[str] = []
    n_ok = n_cached = n_failed = n_timeout = n_skipped = 0
    for record in records:
        entry: dict[str, Any] = {
            "name": record.name,
            "status": record.status,
            "attempts": record.attempts,
            "elapsed": round(record.elapsed, 6),
            "cached": record.cached,
        }
        if record.error:
            entry["error"] = record.error
            errors.append(f"{record.name}: {record.error}")
        if record.status == STATUS_OK:
            n_ok += 1
            if record.cached:
                n_cached += 1
            try:
                entry["result"] = json.loads(encode_payload(record.result))
            except PayloadError:
                entry["result"] = None
                entry["result_note"] = "result not serialisable"
        elif record.status == STATUS_TIMEOUT:
            n_timeout += 1
        elif record.status == STATUS_SKIPPED:
            n_skipped += 1
        else:
            n_failed += 1
        tasks.append(entry)
    if n_failed:
        state = FAILED
    elif n_timeout:
        state = TIMEOUT
    elif n_skipped:
        state = CANCELLED
    else:
        state = DONE
    summary = {
        "tasks": tasks,
        "ok": n_ok,
        "cached": n_cached,
        "failed": n_failed,
        "timeout": n_timeout,
        "cancelled": n_skipped,
    }
    return state, summary, "; ".join(errors)
