"""Regenerate every evaluation table and figure of the paper.

Each function runs the full experiment behind one figure and returns a
:class:`~repro.analysis.report.FigureResult` carrying measured values next
to the paper's reported numbers.  Absolute cycle counts will not match the
authors' gem5/testbed values; the claims under reproduction are the
*shapes*: ordering and separability of the latency bands, who wins each
covert/side-channel experiment, and roughly by how much.

Jitter settings: experiments on the simulated academic designs add a
sigma≈11-cycle timer noise; SGX experiments use sigma≈88, modelling the far
messier real machine (prefetchers, SMIs, ring contention) — calibrated so
the headline accuracies land near the paper's.
"""

from __future__ import annotations

from repro.analysis.jpeg_attack import run_jpeg_metaleak_c, run_jpeg_metaleak_t
from repro.analysis.kvstore_attack import run_kvstore_attack
from repro.analysis.mbedtls_attack import run_mbedtls_attack
from repro.analysis.report import FigureResult
from repro.analysis.rsa_attack import run_rsa_attack
from repro.analysis.sweeps import sweep_noise_ecc
from repro.attacks.covert import CovertChannelC, CovertChannelT
from repro.attacks.metaleak_t import MetaLeakT
from repro.config import (
    MIB,
    PAGE_SIZE,
    CounterScheme,
    SecureProcessorConfig,
    TreeUpdatePolicy,
    preset_config,
)
from repro.defenses.isolation import isolated_tree_config
from repro.defenses.mirage_study import mirage_eviction_curve
from repro.defenses.partition import partitioned_llc_config
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.rng import derive_rng
from repro.utils.stats import summarize

SCT_JITTER = 11.0
SGX_JITTER = 88.0

_DEFAULT_SIZE = 256 * MIB


def _machine(
    preset: str = "sct", *, jitter: float = 0.0, **overrides: object
) -> tuple[SecureProcessor, PageAllocator]:
    size = overrides.pop("protected_size", _DEFAULT_SIZE)
    if preset != "sgx":
        # The SGX preset derives its protected size from the EPC model.
        overrides["protected_size"] = size
    config = preset_config(
        preset,
        functional_crypto=False,
        timer_jitter_sigma=jitter,
        **overrides,
    )
    proc = SecureProcessor(config)
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    return proc, allocator


# ----------------------------------------------------------------------
# Figures 6 & 7: access-path latency distributions
# ----------------------------------------------------------------------


def _path_latency_samples(
    proc: SecureProcessor, samples: int, *, stride_pages: int = 3
) -> dict[str, list[int]]:
    """Collect per-path latency samples by steering metadata cache state."""
    layout = proc.layout
    buckets: dict[str, list[int]] = {
        "Path-1 (L1)": [],
        "Path-1 (LLC)": [],
        "Path-2 (ctr hit)": [],
        "Path-3 (tree leaf hit)": [],
        "Path-4 (1 level missed)": [],
        "Path-4 (all levels missed)": [],
    }
    levels = len(layout.levels)
    for i in range(samples):
        addr = (8 + i * stride_pages) * PAGE_SIZE
        counter_addr = layout.counter_block_addr(addr)
        node_addrs = [layout.node_addr_for_data(addr, lv) for lv in range(levels)]

        proc.quiesce()
        buckets["Path-4 (all levels missed)"].append(proc.read(addr).latency)
        buckets["Path-1 (L1)"].append(proc.read(addr).latency)
        proc.caches.core_caches[0].l1.invalidate(addr)
        proc.caches.core_caches[0].l2.invalidate(addr)
        buckets["Path-1 (LLC)"].append(proc.read(addr).latency)
        proc.flush(addr)
        proc.quiesce()
        buckets["Path-2 (ctr hit)"].append(proc.read(addr).latency)
        proc.flush(addr)
        proc.mee.invalidate_metadata(counter_addr)
        proc.quiesce()
        buckets["Path-3 (tree leaf hit)"].append(proc.read(addr).latency)
        proc.flush(addr)
        proc.mee.invalidate_metadata(counter_addr)
        proc.mee.invalidate_metadata(node_addrs[0])
        proc.quiesce()
        buckets["Path-4 (1 level missed)"].append(proc.read(addr).latency)
        proc.flush(addr)
        proc.mee.flush_metadata_cache(proc.cycle)
    return buckets


def fig6_access_paths(samples: int = 40) -> FigureResult:
    """Figure 6: read-latency distribution across access paths (SCT)."""
    proc, _ = _machine("sct")
    buckets = _path_latency_samples(proc, samples)
    result = FigureResult(
        figure="Figure 6",
        title="Latency distribution across access paths (simulated SCT)",
        notes=(
            "paper reports 30-400 cycles across paths, ~450 when all tree "
            "levels miss; shape to match: strictly increasing, separable "
            "bands"
        ),
    )
    paper = {
        "Path-1 (L1)": "~1-4",
        "Path-1 (LLC)": "~30-40",
        "Path-2 (ctr hit)": "~150-200",
        "Path-3 (tree leaf hit)": "~250-300",
        "Path-4 (1 level missed)": "~300-350",
        "Path-4 (all levels missed)": "~450",
    }
    for label, latencies in buckets.items():
        result.add(label, summarize(latencies).median, paper[label], "cycles")
    return result


def fig7_sgx_paths(samples: int = 40) -> FigureResult:
    """Figure 7: read-latency distributions on the SGX model."""
    proc, _ = _machine("sgx")
    buckets = _path_latency_samples(proc, samples)
    result = FigureResult(
        figure="Figure 7",
        title="Latency distributions across access paths (SGX / SIT)",
        notes="paper: 150-700 cycles; leaf-hit ~250, all-miss ~650",
    )
    paper = {
        "Path-1 (L1)": "~1-4",
        "Path-1 (LLC)": "~40-60",
        "Path-2 (ctr hit)": "~150-200",
        "Path-3 (tree leaf hit)": "~250",
        "Path-4 (1 level missed)": "~400",
        "Path-4 (all levels missed)": "~650",
    }
    for label, latencies in buckets.items():
        result.add(label, summarize(latencies).median, paper[label], "cycles")
    return result


# ----------------------------------------------------------------------
# Figure 8: counter-overflow latency bands
# ----------------------------------------------------------------------


def fig8_overflow_bands(cycles: int = 3) -> FigureResult:
    """Figure 8: observable read latency with and without overflow.

    The paper's microbenchmark: perform ``2^n - 1`` writes that update one
    *leaf* tree counter node (rotating across the page's blocks so no
    encryption counter overflows), then keep writing; a concurrently timed
    read lands in the quiet band except when the 128th update fires the
    leaf-minor overflow and its subtree re-hash burst.
    """
    from repro.attacks.mapping import MetadataEvictor

    proc, allocator = _machine("sct")
    page = allocator.alloc_specific(64)
    base = page * PAGE_SIZE
    cb_addr = proc.layout.counter_block_addr(base)
    evictor = MetadataEvictor(proc, allocator, core=0)
    quiet: list[int] = []
    overflow: list[int] = []
    overflows_seen = 0
    for i in range(cycles * 130):
        proc.write_through(base + (i % 64) * 64, b"z")
        proc.drain_writes()
        # Write back the counter block: the leaf minor absorbs the update.
        evictor.evict((cb_addr,))
        latency = evictor.last_max_read_latency
        # Trailing timed read (same-bank observer of Figure 8).
        proc.flush(base + ((i + 7) % 64) * 64)
        latency = max(
            latency, proc.read(base + ((i + 7) % 64) * 64, core=1).latency
        )
        if proc.mee.stats.tree_counter_overflows > overflows_seen:
            overflows_seen = proc.mee.stats.tree_counter_overflows
            overflow.append(latency)
        else:
            quiet.append(latency)
        if len(overflow) >= cycles:
            break
    result = FigureResult(
        figure="Figure 8",
        title="Memory latency impacted by tree-counter overflow",
        notes=(
            "paper: two distinct latency bands ~2000 cycles apart; "
            "shape to match: clean bimodal separation"
        ),
    )
    result.add("no-overflow band (median)", summarize(quiet).median, "~500", "cycles")
    result.add("no-overflow band (max)", summarize(quiet).maximum, None, "cycles")
    result.add(
        "overflow band (median)", summarize(overflow).median, "~2500", "cycles"
    )
    result.add(
        "band separation",
        summarize(overflow).minimum - summarize(quiet).maximum,
        "~2000",
        "cycles",
    )
    return result


# ----------------------------------------------------------------------
# Figures 11 & 14: covert channels
# ----------------------------------------------------------------------


def _random_bits(count: int, seed: int = 11) -> list[int]:
    rng = derive_rng(seed, "covert-bits")
    return [rng.randint(0, 1) for _ in range(count)]


def fig11_covert_t(bits: int = 1000) -> FigureResult:
    """Figure 11: MetaLeak-T covert channel accuracy (SCT and SIT)."""
    payload = _random_bits(bits)

    proc, allocator = _machine("sct", jitter=SCT_JITTER)
    sct_report = CovertChannelT(proc, allocator).transmit(payload)

    proc, allocator = _machine("sgx", jitter=SGX_JITTER)
    sit_report = CovertChannelT(proc, allocator, level=1).transmit(payload)

    result = FigureResult(
        figure="Figure 11",
        title="MetaLeak-T covert channel (1000-bit transmissions)",
    )
    result.add("SCT bit accuracy", sct_report.accuracy, 0.993)
    result.add("SIT (SGX) bit accuracy", sit_report.accuracy, 0.943)
    result.add(
        "SCT throughput", sct_report.bits_per_kilocycle(), None, "bits/kcycle"
    )
    result.add(
        "SIT throughput", sit_report.bits_per_kilocycle(), None, "bits/kcycle"
    )
    return result


def fig14_covert_c(symbols: int = 200) -> FigureResult:
    """Figure 14: MetaLeak-C covert channel (7-bit symbols)."""
    rng = derive_rng(14, "covert-symbols")
    proc, allocator = _machine("sct", jitter=SCT_JITTER)
    channel = CovertChannelC(proc, allocator)
    payload = [rng.randint(0, channel.max_symbol) for _ in range(symbols)]
    report = channel.transmit(payload)
    exact = report.accuracy
    result = FigureResult(
        figure="Figure 14",
        title="MetaLeak-C covert channel (7-bit symbol transmissions)",
    )
    result.add("symbol accuracy", exact, 0.997)
    result.add(
        "throughput",
        report.bits_per_kilocycle(bits_per_symbol=7),
        None,
        "bits/kcycle",
    )
    return result


# ----------------------------------------------------------------------
# Figure 12: resolution/coverage vs tree level
# ----------------------------------------------------------------------


def fig12_tree_levels(
    levels: tuple[int, ...] = (0, 1, 2, 3), rounds: int = 25
) -> FigureResult:
    """Figure 12: mEvict+mReload interval and coverage per tree level."""
    result = FigureResult(
        figure="Figure 12",
        title="mEvict+mReload interval & spatial coverage vs tree level",
        notes=(
            "shape to match: interval (temporal resolution cost) grows "
            "with level while coverage grows exponentially"
        ),
    )
    # A level-3 node covers 512 MiB, so this experiment runs on a larger
    # protected region (all simulator structures are sparse).
    proc, allocator = _machine("sct", protected_size=2 * 1024 * MIB)
    victim_frame = allocator.alloc_specific(7 * 32 * 16)
    attack = MetaLeakT(proc, allocator, core=1)
    previous_interval = None
    for level in levels:
        monitor = attack.monitor_for_page(victim_frame, level=level)
        start = proc.cycle
        for _ in range(rounds):
            monitor.m_evict()
            monitor.m_reload()
        interval = (proc.cycle - start) / rounds
        coverage_pages = len(proc.layout.pages_sharing_node(victim_frame, level))
        result.add(
            f"L{level} interval",
            round(interval, 1),
            None if previous_interval is None else ">= previous",
            "cycles/round",
        )
        result.add(
            f"L{level} coverage",
            coverage_pages * PAGE_SIZE // 1024,
            f"grows x{proc.layout.levels[level].arity}" if level else "128 (32 pages)",
            "KiB",
        )
        previous_interval = interval
    return result


# ----------------------------------------------------------------------
# Figure 15: image stealing
# ----------------------------------------------------------------------


def fig15_jpeg(
    images: tuple[str, ...] = ("circles", "stripes", "text"),
    *,
    size: int = 32,
    noise_reads: int = 2,
    include_metaleak_c: bool = True,
    save_dir: str | None = None,
) -> FigureResult:
    """Figure 15 + Section VIII-A2: image reconstruction case study.

    ``save_dir`` writes original/stolen/oracle PGM triples per image —
    the visual part of the paper's Figure 15.
    """
    result = FigureResult(
        figure="Figure 15",
        title="libjpeg image stealing (MetaLeak-T) and zero-element "
        "recovery (MetaLeak-C)",
    )
    config = SecureProcessorConfig.sct_default(
        protected_size=_DEFAULT_SIZE,
        functional_crypto=False,
        timer_jitter_sigma=SCT_JITTER,
    )
    accuracies = []
    for name in images:
        outcome = run_jpeg_metaleak_t(
            name, size=size, config=config, noise_reads=noise_reads
        )
        if save_dir is not None:
            import pathlib

            from repro.victims.jpeg.reconstruct import save_pgm

            directory = pathlib.Path(save_dir)
            directory.mkdir(parents=True, exist_ok=True)
            save_pgm(outcome.original, str(directory / f"{name}_original.pgm"))
            save_pgm(outcome.reconstructed, str(directory / f"{name}_stolen.pgm"))
            save_pgm(outcome.oracle, str(directory / f"{name}_oracle.pgm"))
        accuracies.append(outcome.stealing_accuracy)
        result.add(f"{name}: stealing accuracy", outcome.stealing_accuracy, None)
        result.add(
            f"{name}: feature correlation vs oracle",
            outcome.reconstruction_correlation,
            None,
        )
    result.add(
        "MetaLeak-T mean stealing accuracy",
        sum(accuracies) / len(accuracies),
        0.943,
    )
    if include_metaleak_c:
        outcome_c = run_jpeg_metaleak_c(images[0], size=16, config=None)
        result.add(
            "MetaLeak-C zero-element recovery", outcome_c.zero_accuracy, 0.972
        )
    return result


# ----------------------------------------------------------------------
# Figures 16 & 17: cryptographic case studies
# ----------------------------------------------------------------------


def fig16_rsa(exponent_bits: int = 128) -> FigureResult:
    """Figure 16: RSA exponent recovery from libgcrypt square-and-multiply."""
    sgx_config = SecureProcessorConfig.sgx_default(
        epc_size=64 * MIB, functional_crypto=False, timer_jitter_sigma=SGX_JITTER
    )
    sct_config = SecureProcessorConfig.sct_default(
        protected_size=_DEFAULT_SIZE,
        functional_crypto=False,
        timer_jitter_sigma=SCT_JITTER,
    )
    sgx = run_rsa_attack("sgx", exponent_bits=exponent_bits, config=sgx_config)
    sct = run_rsa_attack("sct", exponent_bits=exponent_bits, config=sct_config)
    result = FigureResult(
        figure="Figure 16",
        title="Secret-exponent recovery from square-and-multiply",
    )
    result.add("SGX exponent bit accuracy", sgx.bit_accuracy, 0.912)
    result.add("SGX per-op detection", sgx.op_accuracy, None)
    result.add("SCT exponent bit accuracy", sct.bit_accuracy, 0.951)
    result.add("SCT per-op detection", sct.op_accuracy, None)
    return result


def fig17_mbedtls(
    secret_bits: int = 128, *, recover: bool = True, max_runs: int = 11
) -> FigureResult:
    """Figure 17: shift/sub access detection during mbedTLS key loading.

    Goes one step further than the paper's detection metric: with operand
    -buffer attribution and majority voting over repeated key loads, the
    secret phi is recovered *exactly* and verified against the public
    modulus (the computational recovery the paper cites as [91],[93],[94]).
    """
    config = SecureProcessorConfig.sgx_default(
        epc_size=64 * MIB, functional_crypto=False, timer_jitter_sigma=SGX_JITTER
    )
    outcome = run_mbedtls_attack(
        secret_bits=secret_bits, config=config, recover=recover, max_runs=max_runs
    )
    result = FigureResult(
        figure="Figure 17",
        title="mbedTLS key-loading shift/sub access detection (SGX)",
    )
    result.add("overall detection accuracy", outcome.op_accuracy, 0.907)
    result.add("shift detection", outcome.shift_accuracy, None)
    result.add("sub detection", outcome.sub_accuracy, None)
    if recover:
        result.add(
            "exact phi recovery (majority-voted)",
            "yes" if outcome.recovery_correct else "no",
            "computationally recoverable [91],[93],[94]",
        )
        result.add("key-load repetitions used", outcome.runs_used, None)
    return result


def case_kvstore(puts: int = 6, buckets: int = 4) -> FigureResult:
    """Persistent key-value store recovery (MetaLeak-C write monitoring).

    The threat model's persistent-memory target made concrete: every
    ``put`` write-throughs a log record and a bucket page, and shared
    tree minors reveal which bucket — leaking the keys' hash
    distribution — plus the operation count from the log counter.
    """
    keys = [f"user:{index:04d}" for index in range(puts)]
    outcome = run_kvstore_attack(keys, buckets=buckets)
    result = FigureResult(
        figure="Case study: kvstore",
        title="Key-value store bucket recovery via shared tree minors",
        notes="write-through persistence means every put bumps counters; "
        "confidence is per-put (1.0 = exactly one counter fired)",
    )
    result.add("bucket recovery accuracy", outcome.bucket_accuracy, ">= 0.95")
    result.add("mean per-put confidence", round(outcome.mean_confidence, 3), None)
    result.add(
        "log-write count recovered",
        outcome.puts_observed,
        outcome.puts_true,
    )
    result.add(
        "degraded",
        ", ".join(outcome.degraded_reasons) if outcome.degraded else "no",
        "no",
    )
    return result


# ----------------------------------------------------------------------
# Figure 18: MIRAGE randomized-cache study
# ----------------------------------------------------------------------


def fig18_mirage(
    access_counts: tuple[int, ...] = (1000, 3000, 5000, 7000, 9000, 12000),
    trials: int = 30,
) -> FigureResult:
    """Figure 18: eviction accuracy vs number of random accesses."""
    points = mirage_eviction_curve(access_counts, trials=trials)
    result = FigureResult(
        figure="Figure 18",
        title="Target eviction accuracy under MIRAGE randomization",
        notes=(
            "paper: ~7000 random accesses evict the target with >90% "
            "probability (16-way 256KB metadata cache); shape to match: "
            "monotone rise crossing ~0.9 in the thousands"
        ),
    )
    for point in points:
        paper = 0.9 if point.accesses == 7000 else None
        result.add(f"{point.accesses} accesses", point.accuracy, paper)
    return result


# ----------------------------------------------------------------------
# Ablations (design-space points the paper discusses)
# ----------------------------------------------------------------------


def ablation_counter_schemes() -> FigureResult:
    """VUL-1 scope: blocks re-encrypted per overflow, by counter scheme."""
    result = FigureResult(
        figure="Ablation A1",
        title="Encryption-counter overflow cost by scheme (Algorithm 1)",
        notes="GC/MoC re-encrypt all written memory; SC only one page group",
    )
    from repro.config import CounterConfig

    for scheme, bits, paper in (
        (CounterScheme.GLOBAL, 7, "all written blocks"),
        (CounterScheme.MONOLITHIC, 7, "all written blocks"),
        (CounterScheme.SPLIT, 7, "one page group"),
    ):
        config = SecureProcessorConfig.sct_default(
            protected_size=64 * MIB,
            functional_crypto=False,
        ).with_overrides(
            counters=CounterConfig(scheme=scheme, minor_bits=7, monolithic_bits=bits)
        )
        proc = SecureProcessor(config)
        # Eight writes to distant pages, three to neighbours of the block
        # that will overflow: GC/MoC must re-encrypt all eleven, SC only
        # the three sharing the spun block's page group.
        for page in range(4, 68, 8):
            proc.write_through(page * PAGE_SIZE, b"x")
        spin = 100 * PAGE_SIZE
        for neighbor in range(1, 4):
            proc.write_through(spin + neighbor * 64, b"n")
        proc.drain_writes()
        while proc.mee.stats.enc_counter_overflows == 0:
            proc.write_through(spin, b"y")
            proc.drain_writes()
        result.add(
            f"{scheme.value} re-encrypted blocks",
            proc.mee.stats.reencrypted_blocks,
            paper,
        )
    return result


def ablation_update_policy(bits: int = 60) -> FigureResult:
    """Lazy vs eager tree update: the covert channel works under both."""
    payload = _random_bits(bits)
    result = FigureResult(
        figure="Ablation A2",
        title="MetaLeak-T covert accuracy: lazy vs eager tree updates",
    )
    for policy in (TreeUpdatePolicy.LAZY, TreeUpdatePolicy.EAGER):
        proc, allocator = _machine("sct", tree_update_policy=policy)
        report = CovertChannelT(proc, allocator).transmit(payload)
        result.add(f"{policy.value} policy accuracy", report.accuracy, 1.0)
    return result


def ablation_defenses(bits: int = 60) -> FigureResult:
    """Which defenses stop MetaLeak-T? (Sections IX-A/IX-C)."""
    payload = _random_bits(bits)
    result = FigureResult(
        figure="Ablation A3",
        title="MetaLeak-T covert accuracy under defenses",
        notes=(
            "data-cache partitioning (disjoint LLCs) does not help; only "
            "per-domain isolated trees collapse the channel to chance"
        ),
    )
    proc, allocator = _machine("sct")
    baseline = CovertChannelT(proc, allocator).transmit(payload)
    result.add("baseline (no defense)", baseline.accuracy, "~1.0")

    config = partitioned_llc_config(protected_size=_DEFAULT_SIZE)
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    cross = CovertChannelT(
        proc, allocator, trojan_core=0, spy_core=2
    ).transmit(payload)
    result.add("disjoint LLCs (cross-socket)", cross.accuracy, "~1.0 (ineffective)")

    config = isolated_tree_config(protected_size=_DEFAULT_SIZE)
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    channel = CovertChannelT(proc, allocator)
    # Trojan pages belong to domain 1, spy (and its probes) to domain 0.
    proc.mee.set_page_domain(channel._trojan_tx, 1)
    proc.mee.set_page_domain(channel._trojan_bd, 1)
    isolated = channel.transmit(payload)
    result.add("per-domain isolated trees", isolated.accuracy, "~0.5 (chance)")
    return result


def ablation_tree_designs(bits: int = 60) -> FigureResult:
    """MetaLeak-T across all three integrity-tree designs.

    Section V notes "similar latency distributions in a simulated HT-based
    design"; the channel is a property of tree-node *sharing*, present in
    HT, SCT and SIT alike.
    """
    payload = _random_bits(bits)
    result = FigureResult(
        figure="Ablation A4",
        title="MetaLeak-T covert accuracy across integrity-tree designs",
    )
    for preset, level, label in (
        ("sct", 0, "SCT (split-counter tree)"),
        ("ht", 0, "HT (hash tree / BMT)"),
        ("sgx", 1, "SIT (SGX tree)"),
    ):
        proc, allocator = _machine(preset)
        report = CovertChannelT(proc, allocator, level=level).transmit(payload)
        result.add(label, report.accuracy, ">= 0.95")
    return result


def ablation_mac_placement(bits: int = 40) -> FigureResult:
    """MAC-in-ECC (Synergy) vs classical separate MAC reads.

    Section IV-B: authentication latency is constant either way, so the
    MAC design neither creates nor removes the metadata channel — only
    the latency baseline shifts.
    """
    from repro.config import CryptoConfig

    payload = _random_bits(bits)
    result = FigureResult(
        figure="Ablation A5",
        title="MetaLeak-T accuracy vs MAC placement (constant-latency MACs)",
    )
    for mac_in_ecc, label in ((True, "MAC in ECC (Synergy)"), (False, "separate MAC read")):
        proc, allocator = _machine(
            "sct", crypto=CryptoConfig(mac_in_ecc=mac_in_ecc)
        )
        # Path-2 baseline (counter cached): here the data+MAC fetch is the
        # critical path, so the extra MAC read is visible.
        proc.read(0x40000)
        proc.flush(0x40000)
        proc.quiesce()
        baseline = proc.read(0x40000).latency
        report = CovertChannelT(proc, allocator).transmit(payload)
        result.add(f"{label}: accuracy", report.accuracy, ">= 0.95")
        result.add(f"{label}: Path-2 baseline", baseline, None, "cycles")
    return result


def ablation_split_caches(bits: int = 40) -> FigureResult:
    """Combined vs split counter/tree metadata caches (VAULT organisation).

    With split caches, counter-block fills can no longer evict tree nodes,
    so the attacker switches to leaf-node-aliasing eviction sets (pages a
    full tree-cache period apart).  The channel survives unchanged; only
    the attacker's address-space reach grows.
    """
    from repro.config import GIB, KIB, CacheConfig

    payload = _random_bits(bits)
    result = FigureResult(
        figure="Ablation A6",
        title="MetaLeak-T under combined vs split metadata caches",
    )
    combined = SecureProcessorConfig.sct_default(
        protected_size=1 * GIB, functional_crypto=False
    )
    split = combined.with_overrides(
        split_metadata_caches=True,
        metadata_cache=CacheConfig("CtrCache", 128 * KIB, 8, 2),
        tree_cache=CacheConfig("TreeCache", 128 * KIB, 8, 2),
    )
    for label, config in (("combined 256K", combined), ("split 128K+128K", split)):
        proc = SecureProcessor(config)
        allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
        channel = CovertChannelT(proc, allocator)
        report = channel.transmit(payload)
        result.add(f"{label}: accuracy", report.accuracy, ">= 0.95")
        rounds = max(1, channel.tx_monitor.stats.rounds)
        result.add(
            f"{label}: evict accesses/round",
            round(channel.tx_monitor.stats.evict_accesses / rounds, 1),
            None,
        )
    return result


def leakcheck_matrix(
    victims: tuple[str, ...] = ("rsa", "mbedtls", "kvstore", "jpeg", "const"),
    seed: int = 0,
) -> FigureResult:
    """Automated leakage detection across the victim registry.

    Not a paper figure per se — it is the paper's Table-II-style claim
    ("metadata operations are secret-dependent for these workloads")
    rediscovered mechanically by the paired-secret trace differ.  The
    "paper" column is the expected verdict: every real victim leaks
    through metadata; the constant-time reference must come back clean.
    """
    from repro.leakcheck import run_leakcheck

    result = FigureResult(
        figure="leakcheck",
        title="Automated metadata-leakage detection (paired-secret traces)",
        notes="flagged kinds counted per victim; expected column is the "
        "ground-truth verdict",
    )
    for name in victims:
        report = run_leakcheck(name, seed=seed)
        expected = "clean" if name == "const" else "leaky"
        result.add(
            f"{name}: verdict",
            "leaky" if report.leaky else "clean",
            expected,
        )
        result.add(
            f"{name}: flagged event kinds",
            len(report.flagged_findings),
            None,
        )
        metadata_kinds = sum(
            1
            for finding in report.flagged_findings
            if finding.component in ("mee", "tree")
            or finding.component.startswith("cache.Meta")
        )
        result.add(f"{name}: metadata kinds flagged", metadata_kinds, None)
    return result


def perf_attribution(samples: int = 20) -> FigureResult:
    """Cycle-attribution profile across the paper's access paths.

    Attaches the :class:`~repro.perf.CycleAttributor` to the Figure-6
    path-steering workload and reports where each path's cycles went.
    Conservation (attributed == end-to-end) is verified, and the
    metadata-plus-crypto share must grow from Path-2 to Path-4 — the
    same structural fact the MetaLeak timing channels exploit.
    """
    from repro.perf import CycleAttributor

    proc, _ = _machine("sct")
    attributor = CycleAttributor()
    proc.attach_profiler(attributor)
    _path_latency_samples(proc, samples)
    attributor.verify()
    result = FigureResult(
        figure="Perf",
        title="Cycle attribution across access paths (simulated SCT)",
        notes=(
            "conservation-checked: component cycles sum exactly to "
            "end-to-end latency; metadata+crypto share grows as the "
            "metadata walk deepens (Path-2 -> Path-4)"
        ),
    )
    result.add("accesses attributed", attributor.accesses, None)
    result.add("cycles attributed (conserved)", attributor.cycles, None)
    for profile in attributor.profiles():
        if profile.op != "read" or profile.path is None:
            continue
        security = sum(
            value for key, value in profile.parts.items()
            if key.startswith(("meta.", "mee."))
        )
        share = security / profile.cycles if profile.cycles else 0.0
        result.add(
            f"{profile.path}: metadata+crypto share",
            f"{share:.1%}",
            None,
        )
    return result


ALL_FIGURES = {
    "fig6": fig6_access_paths,
    "fig7": fig7_sgx_paths,
    "fig8": fig8_overflow_bands,
    "fig11": fig11_covert_t,
    "fig12": fig12_tree_levels,
    "fig14": fig14_covert_c,
    "fig15": fig15_jpeg,
    "fig16": fig16_rsa,
    "fig17": fig17_mbedtls,
    "fig18": fig18_mirage,
    "case_kvstore": case_kvstore,
    "ablation_counters": ablation_counter_schemes,
    "ablation_policy": ablation_update_policy,
    "ablation_defenses": ablation_defenses,
    "ablation_trees": ablation_tree_designs,
    "ablation_mac": ablation_mac_placement,
    "ablation_split": ablation_split_caches,
    "sweep_ecc": sweep_noise_ecc,
    "leakcheck": leakcheck_matrix,
    "perf_attribution": perf_attribution,
}
