"""Two-page access classification from paired tree-node monitors.

The case studies all share one shape: the victim touches exactly one of
two pages per step (zero vs non-zero coefficient, square vs multiply,
shift vs sub), and the attacker runs one :class:`TreeNodeMonitor` per page.
``classify_pair`` fuses the two reload observations into a per-step label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.metaleak_t import TreeNodeMonitor


@dataclass(frozen=True)
class PairObservation:
    label: str  # name_a | name_b | "none" | "both"
    latency_a: int
    latency_b: int
    hit_a: bool
    hit_b: bool
    # How much the label deserves to be believed: the margin-scaled
    # calibration confidence of the deciding monitor(s); halved when both
    # monitors hit and the call fell back to comparing margins.
    confidence: float = 1.0


class PairClassifier:
    """Monitors two pages and labels which one the victim touched."""

    def __init__(
        self,
        monitor_a: TreeNodeMonitor,
        monitor_b: TreeNodeMonitor,
        *,
        name_a: str = "a",
        name_b: str = "b",
    ) -> None:
        self.monitor_a = monitor_a
        self.monitor_b = monitor_b
        self.name_a = name_a
        self.name_b = name_b
        self.observations: list[PairObservation] = []

    def m_evict(self) -> None:
        self.monitor_a.m_evict()
        self.monitor_b.m_evict()

    def m_reload(self) -> str:
        latency_a, hit_a = self.monitor_a.m_reload()
        conf_a = self.monitor_a.last_confidence
        latency_b, hit_b = self.monitor_b.m_reload()
        conf_b = self.monitor_b.last_confidence
        if hit_a and not hit_b:
            label = self.name_a
            confidence = conf_a
        elif hit_b and not hit_a:
            label = self.name_b
            confidence = conf_b
        elif hit_a and hit_b:
            # Both nodes look cached: pick the stronger (faster relative to
            # its own threshold) signal — and mark the call as ambiguous.
            margin_a = self.monitor_a.threshold - latency_a
            margin_b = self.monitor_b.threshold - latency_b
            label = self.name_a if margin_a >= margin_b else self.name_b
            confidence = 0.5 * (conf_a if margin_a >= margin_b else conf_b)
        else:
            # Two clean misses are a reading too ("neither page touched"):
            # believe it as much as the weaker of the two miss margins.
            label = "none"
            confidence = min(conf_a, conf_b)
        self.observations.append(
            PairObservation(
                label=label,
                latency_a=latency_a,
                latency_b=latency_b,
                hit_a=hit_a,
                hit_b=hit_b,
                confidence=confidence,
            )
        )
        return label

    @property
    def calibration_ok(self) -> bool:
        """Did both monitors calibrate to separable latency bands?"""
        return self.monitor_a.calibration.ok and self.monitor_b.calibration.ok

    @property
    def mean_confidence(self) -> float:
        if not self.observations:
            return 0.0
        total = sum(obs.confidence for obs in self.observations)
        return total / len(self.observations)
