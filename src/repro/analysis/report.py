"""Reporting structures shared by the figure-regeneration harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Row:
    """One row/series point of a regenerated figure."""

    label: str
    measured: float | str
    paper: float | str | None = None
    unit: str = ""


@dataclass
class FigureResult:
    """A regenerated table/figure with paper-vs-measured rows."""

    figure: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: str = ""

    def add(
        self,
        label: str,
        measured: float | str,
        paper: float | str | None = None,
        unit: str = "",
    ) -> None:
        self.rows.append(Row(label=label, measured=measured, paper=paper, unit=unit))

    def row(self, label: str) -> Row:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labelled {label!r} in {self.figure}")


def _fmt(value: float | str | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_result(result: FigureResult) -> str:
    """Render a FigureResult as an aligned paper-vs-measured table."""
    header = f"== {result.figure}: {result.title} =="
    label_width = max([len(r.label) for r in result.rows] + [5])
    lines = [header, f"{'series':<{label_width}}  {'measured':>14}  {'paper':>14}  unit"]
    for row in result.rows:
        lines.append(
            f"{row.label:<{label_width}}  {_fmt(row.measured):>14}  "
            f"{_fmt(row.paper):>14}  {row.unit}"
        )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
