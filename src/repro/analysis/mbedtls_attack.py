"""The mbedTLS key-loading case study (Section VIII-B2, Figure 17).

The enclave computes ``d = e^{-1} mod phi`` with a binary extended GCD;
the attacker monitors four pages through L1 tree sharing — the shift and
sub *code* pages (Figure 17's metric: 90.7% detection) and the ``u``/``v``
operand *buffer* pages, which attribute each shift run to its variable.
Attribution completes the trace, and
:func:`repro.victims.mbedtls.recover_secret_from_trace` then recovers the
secret ``phi`` computationally; the public modulus ``n`` verifies it
(``phi`` yields p and q by the factor check).  Noisy traces are cleaned by
majority-voting over repeated runs — key loading recomputes the same
deterministic sequence every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import PairClassifier
from repro.attacks.metaleak_t import MetaLeakT
from repro.config import MIB, SecureProcessorConfig
from repro.sgx.machine import SgxMachine
from repro.sgx.sgx_step import SgxStep
from repro.utils.stats import accuracy
from repro.victims.mbedtls import (
    KeyLoadVictim,
    TraceInconsistent,
    attribute_trace,
    factor_from_phi,
    generate_rsa_key,
    recover_secret_from_trace,
)


@dataclass
class MbedtlsAttackResult:
    op_accuracy: float
    shift_accuracy: float
    sub_accuracy: float
    labels: list[str] = field(repr=False, default_factory=list)
    truth: list[str] = field(repr=False, default_factory=list)
    latency_trace: list[tuple[int, int]] = field(repr=False, default_factory=list)
    steps: int = 0
    # End-to-end key recovery (when recover=True):
    recovered_phi: int | None = None
    recovery_correct: bool = False
    factors_verified: bool = False
    runs_used: int = 0


def _one_run(
    machine: SgxMachine, e: int, phi: int, *, frames: tuple[int, int, int, int]
) -> tuple[list[str], list[str | None], list[str], list[tuple[int, int]]]:
    """Execute key loading once under monitoring.

    Returns (op_labels, operand_labels, truth_details, op_latencies).
    """
    shift_frame, sub_frame, u_frame, v_frame = frames
    enclave = machine.create_enclave(core=0, name="mbedtls-enclave")
    for frame in (v_frame, u_frame, sub_frame, shift_frame):
        machine.allocator.stage_for_next_alloc(frame, core=0)
    victim = KeyLoadVictim(enclave)
    assert victim.shift_frame == shift_frame
    assert victim.v_buffer_frame == v_frame

    attack = MetaLeakT(machine.proc, machine.allocator, core=1)
    op_classifier = PairClassifier(
        attack.monitor_for_page(shift_frame, level=1),
        attack.monitor_for_page(sub_frame, level=1),
        name_a="shift",
        name_b="sub",
    )
    operand_classifier = PairClassifier(
        attack.monitor_for_page(u_frame, level=1),
        attack.monitor_for_page(v_frame, level=1),
        name_a="u",
        name_b="v",
    )

    op_labels: list[str] = []
    operand_labels: list[str | None] = []
    truth: list[str] = []

    def before(step: int, _payload: object) -> None:
        # Force pending victim stores to service *before* the eviction
        # pass: a posted write draining mid-step would re-load its tree
        # node and masquerade as the victim's current access.
        machine.proc.drain_writes()
        op_classifier.m_evict()
        operand_classifier.m_evict()

    def probe(step: int, payload: object) -> None:
        op_labels.append(op_classifier.m_reload())
        operand_labels.append(operand_classifier.m_reload())
        truth.append(payload.detail)

    SgxStep(interval=1).run(
        victim.mod_inverse(e, phi), probe=probe, before_step=before
    )
    latencies = [(o.latency_a, o.latency_b) for o in op_classifier.observations]
    return op_labels, operand_labels, truth, latencies


def _majority(column: list[str | None], fallback: str) -> str:
    counts: dict[str, int] = {}
    for value in column:
        if value is not None and value not in ("none",):
            counts[value] = counts.get(value, 0) + 1
    if not counts:
        return fallback
    return max(counts, key=counts.get)


def _try_recover(
    ops: list[str], operands: list[str | None], e: int, modulus: int
) -> int | None:
    try:
        details = attribute_trace(ops, operands)
        candidate = recover_secret_from_trace(details, e)
    except (TraceInconsistent, ValueError):
        return None
    return candidate if factor_from_phi(modulus, candidate) else None


def _recover_with_repair(
    ops: list[str], operands: list[str | None], e: int, modulus: int
) -> int | None:
    """Recovery with single-label error repair.

    A residual voted misclassification makes the 2-adic constraints
    inconsistent; since the public modulus verifies any candidate, the
    attacker can simply retry with each single shift-operand (and each
    single op label) flipped — O(trace length) cheap recoveries.
    """
    candidate = _try_recover(ops, operands, e, modulus)
    if candidate is not None:
        return candidate
    for index, op in enumerate(ops):
        if op == "shift":
            flipped = list(operands)
            flipped[index] = "v" if operands[index] == "u" else "u"
            candidate = _try_recover(ops, flipped, e, modulus)
        else:
            # A spurious 'sub' (or missed one) cannot be fixed by relabel
            # alone, but flipping it to 'shift' with either operand is the
            # common single-error case.
            for operand in ("u", "v"):
                flipped_ops = list(ops)
                flipped_ops[index] = "shift"
                flipped_operands = list(operands)
                flipped_operands[index] = operand
                candidate = _try_recover(flipped_ops, flipped_operands, e, modulus)
                if candidate is not None:
                    break
        if candidate is not None:
            return candidate
    return None


def run_mbedtls_attack(
    *,
    secret_bits: int = 64,
    seed: int = 5,
    config: SecureProcessorConfig | None = None,
    recover: bool = False,
    max_runs: int = 5,
) -> MbedtlsAttackResult:
    """Detect shift/sub accesses (Figure 17); optionally recover the key.

    With ``recover=True`` the attack repeats the (deterministic) key load,
    majority-votes the traces, attributes shift runs via the operand
    buffers, runs the 2-adic recovery and verifies the candidate ``phi``
    against the public modulus — stopping early once verification passes.
    """
    machine_config = config or SecureProcessorConfig.sgx_default(
        epc_size=64 * MIB, functional_crypto=False
    )
    frames = (96, 192, 288, 384)  # distinct 8-page (L1) groups
    e, phi, modulus = generate_rsa_key(bits=secret_bits, seed=seed)

    all_ops: list[list[str]] = []
    all_operands: list[list[str | None]] = []
    truth: list[str] = []
    latencies: list[tuple[int, int]] = []
    recovered: int | None = None
    runs = 0
    total_runs = max_runs if recover else 1
    for run_index in range(total_runs):
        # Fresh noise per repetition (a fixed seed would replay identical
        # jitter and make majority voting pointless).
        machine = SgxMachine(
            machine_config.with_overrides(seed=machine_config.seed + run_index)
        )
        op_labels, operand_labels, truth, run_latencies = _one_run(
            machine, e, phi, frames=frames
        )
        runs += 1
        all_ops.append(op_labels)
        all_operands.append(operand_labels)
        latencies = run_latencies
        if not recover:
            break
        # Majority-vote the aligned traces, attribute, recover, verify.
        steps = len(truth)
        ops_voted = [
            _majority([run[i] for run in all_ops if i < len(run)], "shift")
            for i in range(steps)
        ]
        operands_voted = [
            _majority([run[i] for run in all_operands if i < len(run)], "u")
            for i in range(steps)
        ]
        recovered = _recover_with_repair(ops_voted, operands_voted, e, modulus)
        if recovered is not None:
            break

    op_labels = all_ops[0]
    truth_ops = [detail.split("_")[0] for detail in truth]

    def per_op(op: str) -> float:
        pairs = [(l, t) for l, t in zip(op_labels, truth_ops) if t == op]
        if not pairs:
            return 1.0
        return sum(1 for l, t in pairs if l == t) / len(pairs)

    return MbedtlsAttackResult(
        op_accuracy=accuracy(op_labels, truth_ops),
        shift_accuracy=per_op("shift"),
        sub_accuracy=per_op("sub"),
        labels=op_labels,
        truth=truth_ops,
        latency_trace=latencies,
        steps=len(truth),
        recovered_phi=recovered,
        recovery_correct=recovered == phi,
        factors_verified=bool(recovered and factor_from_phi(modulus, recovered)),
        runs_used=runs,
    )
