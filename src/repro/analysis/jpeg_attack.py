"""The libjpeg case study (Section VIII-A, Figure 15).

``run_jpeg_metaleak_t`` mounts the MetaLeak-T variant: the attacker
monitors the tree nodes of the victim's ``r`` and ``nbits`` pages and
recovers, per block and coefficient position, whether the coefficient was
zero — then reconstructs the image from the leaked entropy mask.

``run_jpeg_metaleak_c`` mounts the write-observing variant: a shared tree
minor counter on the ``r`` page's path is preset so a single victim write
saturates it; overflow counting reveals the zero positions (VIII-A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.classify import PairClassifier
from repro.attacks.metaleak_c import MetaLeakC
from repro.attacks.metaleak_t import MetaLeakT
from repro.attacks.noise import NoiseProcess
from repro.config import PAGE_SIZE, SecureProcessorConfig
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor
from repro.sgx.sgx_step import SgxStep
from repro.victims.jpeg.encoder import JpegVictim
from repro.victims.jpeg.images import sample_image
from repro.victims.jpeg.reconstruct import (
    feature_correlation,
    mask_accuracy,
    pixel_correlation,
    reconstruct_from_mask,
    zero_recovery_accuracy,
)

# Frames for the victim's two variables: separate leaf groups, "positioned
# sufficiently apart in the SCT" via the free-list staging primitive.
_R_FRAME = 10 * 32
_NBITS_FRAME = 50 * 32


@dataclass
class JpegAttackResult:
    image_name: str
    stealing_accuracy: float
    zero_accuracy: float
    original: np.ndarray = field(repr=False, default=None)
    reconstructed: np.ndarray = field(repr=False, default=None)
    oracle: np.ndarray = field(repr=False, default=None)
    reconstruction_correlation: float = 0.0
    oracle_correlation: float = 0.0
    steps: int = 0
    attacker_cycles: int = 0
    # Per coefficient decision: belief in the underlying reading (0.0 =
    # defaulted, not observed).  ``degraded`` flags runs whose mask is
    # built on guesses or a degenerate calibration.
    confidences: list[float] = field(repr=False, default_factory=list)
    mean_confidence: float = 0.0
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = ()


def _confidence_summary(
    confidences: list[float], extra_reasons: tuple[str, ...] = ()
) -> tuple[float, bool, tuple[str, ...]]:
    mean = sum(confidences) / len(confidences) if confidences else 0.0
    reasons = list(extra_reasons)
    if mean < 0.5:
        reasons.append("low-confidence")
    return mean, bool(reasons), tuple(reasons)


def _build_environment(
    config: SecureProcessorConfig | None,
) -> tuple[SecureProcessor, PageAllocator, Process]:
    proc = SecureProcessor(
        config
        or SecureProcessorConfig.sct_default(
            protected_size=256 * 1024 * 1024, functional_crypto=False
        )
    )
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    victim_process = Process(proc, allocator, core=0, cleanse=True, name="jpeg")
    return proc, allocator, victim_process


def _stage_victim_pages(allocator: PageAllocator) -> None:
    """Free-list massage: the victim's next two allocations land on the
    attacker-chosen frames (r first, nbits second — LIFO order)."""
    allocator.stage_for_next_alloc(_NBITS_FRAME, core=0)
    allocator.stage_for_next_alloc(_R_FRAME, core=0)


def run_jpeg_metaleak_t(
    image_name: str = "circles",
    *,
    size: int = 32,
    quality: int = 50,
    config: SecureProcessorConfig | None = None,
    noise_reads: int = 0,
) -> JpegAttackResult:
    """Full MetaLeak-T image-stealing attack (Figure 15)."""
    proc, allocator, victim_process = _build_environment(config)
    _stage_victim_pages(allocator)
    victim = JpegVictim(victim_process, quality=quality)
    assert victim.r_frame == _R_FRAME and victim.nbits_frame == _NBITS_FRAME

    attack = MetaLeakT(proc, allocator, core=1)
    classifier = PairClassifier(
        attack.monitor_for_page(victim.r_frame, level=0),
        attack.monitor_for_page(victim.nbits_frame, level=0),
        name_a="zero",
        name_b="nonzero",
    )
    noise = (
        NoiseProcess(proc, allocator, reads_per_step=noise_reads)
        if noise_reads
        else None
    )

    image = sample_image(image_name, size)
    decisions: list[bool] = []
    confidences: list[float] = []
    start_cycle = proc.cycle

    def before(step: int, _payload: object) -> None:
        classifier.m_evict()
        if noise is not None:
            noise.step()

    def probe(step: int, _payload: object) -> None:
        label = classifier.m_reload()
        # "none" most often means the zero-path write was merged away;
        # zero runs dominate JPEG AC coefficients, so default to zero.
        decisions.append(label != "nonzero")
        confidences.append(classifier.observations[-1].confidence)

    stepper = SgxStep(interval=1)
    encoded = stepper.run(victim.encode_image(image), probe=probe, before_step=before)

    truth = encoded.zero_masks()
    recovered = _decisions_to_masks(decisions, truth)
    reconstructed = reconstruct_from_mask(
        recovered, encoded.shape, quality=quality
    )
    oracle = reconstruct_from_mask(truth, encoded.shape, quality=quality)
    mean_confidence, degraded, reasons = _confidence_summary(
        confidences,
        () if classifier.calibration_ok else ("degenerate-calibration",),
    )
    return JpegAttackResult(
        image_name=image_name,
        stealing_accuracy=mask_accuracy(recovered, truth),
        zero_accuracy=zero_recovery_accuracy(recovered, truth),
        original=image,
        reconstructed=reconstructed,
        oracle=oracle,
        reconstruction_correlation=feature_correlation(
            recovered, truth, encoded.shape
        ),
        oracle_correlation=pixel_correlation(oracle, reconstructed),
        steps=stepper.trace.steps,
        attacker_cycles=proc.cycle - start_cycle,
        confidences=confidences,
        mean_confidence=mean_confidence,
        degraded=degraded,
        degraded_reasons=reasons,
    )


def _decisions_to_masks(
    decisions: list[bool], truth: list[list[bool]]
) -> list[list[bool]]:
    per_block = len(truth[0])
    masks = []
    for block_index in range(len(truth)):
        chunk = decisions[block_index * per_block : (block_index + 1) * per_block]
        chunk += [True] * (per_block - len(chunk))
        masks.append(chunk)
    return masks


def run_jpeg_metaleak_c(
    image_name: str = "circles",
    *,
    size: int = 16,
    quality: int = 50,
    level: int = 1,
    config: SecureProcessorConfig | None = None,
) -> JpegAttackResult:
    """MetaLeak-C write monitoring of ``r`` (Section VIII-A2).

    Per coefficient step: the shared tree counter on ``r``'s verification
    path is armed one write short of saturation; after the victim's step
    the attacker collects pending metadata updates and counts writes to
    overflow — one bump means the victim wrote ``r`` (a zero coefficient).
    """
    proc, allocator, victim_process = _build_environment(config)
    _stage_victim_pages(allocator)
    victim = JpegVictim(victim_process, quality=quality)

    attack = MetaLeakC(proc, allocator, core=1)
    handle = attack.handle_for_page(victim.r_frame, level=level)
    handle.arm_for_writes(1)
    armed_value = handle.minor_max - 1

    image = sample_image(image_name, size)
    decisions: list[bool] = []
    confidences: list[float] = []
    reasons: set[str] = set()
    start_cycle = proc.cycle

    def probe(step: int, _payload: object) -> None:
        attack.collect_victim_updates(victim.r_frame, level=level)
        scan = handle.scan_to_overflow(max_bumps=3)
        if not scan.fired:
            # The counter is not where arming left it (noise swallowed the
            # overflow tell, or a neighbour reset the node): default to
            # zero (zero runs dominate) at zero confidence and re-arm
            # from scratch rather than trusting the next readings.
            decisions.append(True)
            confidences.append(0.0)
            reasons.add("counter-desync")
            handle.arm_for_writes(1)
            return
        victim_wrote = scan.bumps == 1
        decisions.append(victim_wrote)  # write to r <=> zero coefficient
        confidences.append(1.0)
        handle.preset(armed_value)

    stepper = SgxStep(interval=1)
    encoded = stepper.run(victim.encode_image(image), probe=probe)

    truth = encoded.zero_masks()
    recovered = _decisions_to_masks(decisions, truth)
    reconstructed = reconstruct_from_mask(recovered, encoded.shape, quality=quality)
    oracle = reconstruct_from_mask(truth, encoded.shape, quality=quality)
    mean_confidence, degraded, reason_tuple = _confidence_summary(
        confidences, tuple(sorted(reasons))
    )
    return JpegAttackResult(
        image_name=image_name,
        stealing_accuracy=mask_accuracy(recovered, truth),
        zero_accuracy=zero_recovery_accuracy(recovered, truth),
        original=image,
        reconstructed=reconstructed,
        oracle=oracle,
        reconstruction_correlation=feature_correlation(
            recovered, truth, encoded.shape
        ),
        oracle_correlation=pixel_correlation(oracle, reconstructed),
        steps=stepper.trace.steps,
        attacker_cycles=proc.cycle - start_cycle,
        confidences=confidences,
        mean_confidence=mean_confidence,
        degraded=degraded,
        degraded_reasons=reason_tuple,
    )
