"""Experiment drivers that regenerate every table and figure of the paper.

Each ``fig*`` function in :mod:`repro.analysis.figures` runs the complete
experiment behind one paper figure and returns a :class:`FigureResult`
containing the measured series alongside the paper's reference values, so
benchmarks and EXPERIMENTS.md can report paper-vs-measured directly.
"""

from repro.analysis.report import FigureResult, Row, format_result
from repro.analysis.jpeg_attack import (
    JpegAttackResult,
    run_jpeg_metaleak_c,
    run_jpeg_metaleak_t,
)
from repro.analysis.kvstore_attack import KvAttackResult, run_kvstore_attack
from repro.analysis.rsa_attack import RsaAttackResult, run_rsa_attack
from repro.analysis.mbedtls_attack import (
    MbedtlsAttackResult,
    run_mbedtls_attack,
)
from repro.analysis.overhead import overhead_study
from repro.analysis.traces import (
    classify_by_threshold,
    detect_bands,
    sparkline,
)
from repro.analysis.visualize import figure_bar_chart, histogram, to_csv

__all__ = [
    "FigureResult",
    "Row",
    "format_result",
    "JpegAttackResult",
    "run_jpeg_metaleak_c",
    "run_jpeg_metaleak_t",
    "KvAttackResult",
    "run_kvstore_attack",
    "RsaAttackResult",
    "run_rsa_attack",
    "MbedtlsAttackResult",
    "run_mbedtls_attack",
    "overhead_study",
    "classify_by_threshold",
    "detect_bands",
    "sparkline",
    "figure_bar_chart",
    "histogram",
    "to_csv",
]
