"""Design-space sweeps around the paper's discussion points.

Beyond the headline figures, Sections IV/V/IX make quantitative claims
about *why* the channel exists and what would (not) weaken it.  These
sweeps turn those claims into experiments:

* metadata-cache size — bigger caches slow mEvict (more eviction traffic)
  but never remove the channel;
* metadata-cache replacement policy — randomization raises the eviction
  cost, it does not stop a reload-based channel (same argument as the
  Figure-18 MIRAGE study);
* tree minor-counter width — the overflow period (and thus MetaLeak-C's
  symbol range / preset cost) scales as 2^bits;
* background noise intensity — the channel degrades gracefully.
"""

from __future__ import annotations

from repro.analysis.report import FigureResult
from repro.attacks.covert import CovertChannelC, CovertChannelT
from repro.attacks.framing import BitSymbolAdapter, ReliableChannel
from repro.attacks.metaleak_c import MetaLeakC
from repro.attacks.noise import NoiseProcess, co_located_noise
from repro.config import (
    KIB,
    MIB,
    PAGE_SIZE,
    CacheConfig,
    SecureProcessorConfig,
    TreeConfig,
    TreeKind,
)
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.rng import derive_rng


def _bits(count: int) -> list[int]:
    rng = derive_rng(21, "sweep-bits")
    return [rng.randint(0, 1) for _ in range(count)]


def _machine(config: SecureProcessorConfig) -> tuple[SecureProcessor, PageAllocator]:
    proc = SecureProcessor(config)
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=4)
    return proc, allocator


def sweep_metadata_cache_size(
    sizes_kib: tuple[int, ...] = (64, 128, 256, 512), bits: int = 60
) -> FigureResult:
    """Covert accuracy and mEvict cost vs metadata-cache size."""
    result = FigureResult(
        figure="Sweep S1",
        title="MetaLeak-T vs metadata-cache size",
        notes="bigger caches raise eviction cost; the channel never closes",
    )
    payload = _bits(bits)
    for size_kib in sizes_kib:
        config = SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        ).with_overrides(
            metadata_cache=CacheConfig("MetaCache", size_kib * KIB, 8, 2)
        )
        proc, allocator = _machine(config)
        channel = CovertChannelT(proc, allocator)
        report = channel.transmit(payload)
        evict_cost = channel.tx_monitor.stats.evict_accesses / max(
            1, channel.tx_monitor.stats.rounds
        )
        result.add(f"{size_kib} KiB accuracy", report.accuracy, ">= 0.95")
        result.add(
            f"{size_kib} KiB evict accesses/round", round(evict_cost, 1), None
        )
    return result


def sweep_replacement_policy(bits: int = 60) -> FigureResult:
    """Covert accuracy vs metadata-cache replacement policy."""
    result = FigureResult(
        figure="Sweep S2",
        title="MetaLeak-T vs metadata-cache replacement policy",
        notes=(
            "randomized replacement makes single-pass eviction "
            "probabilistic, not impossible (Section IX-B's argument)"
        ),
    )
    payload = _bits(bits)
    for policy in ("lru", "plru", "random"):
        config = SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        ).with_overrides(
            metadata_cache=CacheConfig(
                "MetaCache", 256 * KIB, 8, 2, replacement=policy
            )
        )
        proc, allocator = _machine(config)
        report = CovertChannelT(proc, allocator).transmit(payload)
        result.add(f"{policy} accuracy", report.accuracy, None)
    return result


def sweep_minor_counter_bits(
    widths: tuple[int, ...] = (5, 6, 7, 8)
) -> FigureResult:
    """Overflow period vs tree minor-counter width (MetaLeak-C economics)."""
    result = FigureResult(
        figure="Sweep S3",
        title="Tree-counter overflow period vs minor width",
        notes="period = 2^bits updates; wider counters slow mPreset "
        "quadratically in symbols/sec but raise the symbol alphabet",
    )
    for bits in widths:
        config = SecureProcessorConfig.sct_default(
            protected_size=128 * MIB, functional_crypto=False
        ).with_overrides(
            tree=TreeConfig(
                kind=TreeKind.SPLIT_COUNTER,
                arities=(32, 16, 16, 16, 16, 16),
                major_bits=56,
                minor_bits=bits,
            )
        )
        proc, allocator = _machine(config)
        attack = MetaLeakC(proc, allocator, core=1)
        handle = attack.handle_for_page(0, level=1)
        spent = handle.reset()
        result.add(f"{bits}-bit reset bumps", spent, f"<= {2 ** bits + 1}")
        # After reset the counter is 1; a full wrap takes 2^bits more.
        wrap = handle.count_to_overflow()
        result.add(f"{bits}-bit wrap bumps", wrap, 2**bits - 1)
    return result


def sweep_step_interval(
    intervals: tuple[int, ...] = (1, 2, 4), exponent_bits: int = 64
) -> FigureResult:
    """RSA recovery vs SGX-Step interrupt granularity.

    The paper interrupts every victim iteration ("every 500 cycles").
    Coarser stepping aggregates several operations per probe window, so
    the attacker sees the union of pages touched — per-op classification
    degrades and with it exponent recovery.  This quantifies why
    fine-grained stepping matters (Section VI-B's synchronization note).
    """
    from repro.analysis.classify import PairClassifier
    from repro.analysis.rsa_attack import decode_exponent_bits, _exponent_bits
    from repro.attacks.metaleak_t import MetaLeakT
    from repro.os.process import Process
    from repro.sgx.sgx_step import SgxStep
    from repro.utils.stats import aligned_accuracy
    from repro.victims.rsa import RsaModexpVictim, generate_test_key

    result = FigureResult(
        figure="Sweep S5",
        title="RSA recovery vs SGX-Step interrupt interval",
        notes="one interrupt per victim operation is what makes the "
        "case studies precise; coarser stepping blurs operations together",
    )
    for interval in intervals:
        config = SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        )
        proc, allocator = _machine(config)
        process = Process(proc, allocator, core=0, cleanse=True)
        allocator.stage_for_next_alloc(50 * 32, core=0)
        allocator.stage_for_next_alloc(10 * 32, core=0)
        victim = RsaModexpVictim(process)
        attack = MetaLeakT(proc, allocator, core=1)
        classifier = PairClassifier(
            attack.monitor_for_page(victim.square_frame, level=0),
            attack.monitor_for_page(victim.multiply_frame, level=0),
            name_a="square",
            name_b="multiply",
        )
        labels: list[str] = []

        def before(step, _payload):
            classifier.m_evict()

        def probe(step, _payload):
            labels.append(classifier.m_reload())

        base, exponent, modulus = generate_test_key(exponent_bits)
        SgxStep(interval=interval).run(
            victim.modexp(base, exponent, modulus), probe=probe, before_step=before
        )
        accuracy = aligned_accuracy(
            decode_exponent_bits(labels), _exponent_bits(exponent)
        )
        result.add(f"interval={interval} bit accuracy", accuracy, None)
    return result


def sweep_noise_intensity(
    intensities: tuple[int, ...] = (0, 4, 16, 48), bits: int = 80
) -> FigureResult:
    """Covert accuracy vs co-running background traffic."""
    result = FigureResult(
        figure="Sweep S4",
        title="MetaLeak-T vs background-noise intensity",
        notes="graceful degradation; errors come from noise evicting the "
        "shared node between victim access and reload",
    )
    payload = _bits(bits)
    for reads_per_step in intensities:
        config = SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        )
        proc, allocator = _machine(config)
        noise = (
            NoiseProcess(proc, allocator, reads_per_step=reads_per_step)
            if reads_per_step
            else None
        )
        report = CovertChannelT(proc, allocator, noise=noise).transmit(payload)
        result.add(f"{reads_per_step} noise reads/step", report.accuracy, None)
    return result


def sweep_noise_ecc(
    intensities: tuple[int, ...] = (0, 1, 2, 4),
    bits: int = 48,
    include_c: bool = True,
) -> FigureResult:
    """Raw vs ECC-framed covert accuracy under a conflicting co-runner.

    The "with ECC" series for the Fig. 11/14 noise story: the co-runner's
    working set conflicts with the transmission node's metadata-cache
    set, so raw accuracy degrades with its intensity while the framed
    channel (sync preambles, Hamming(7,4)+CRC-8, majority votes, bounded
    ARQ) keeps delivering the payload — at a goodput cost, which is the
    honest trade the protocol makes.
    """
    result = FigureResult(
        figure="Sweep S6",
        title="ECC-framed covert channels vs co-runner noise",
        notes="raw BER grows with conflict intensity; framed payload "
        "accuracy holds via Hamming(7,4)+CRC-8 and bounded ARQ",
    )
    payload = _bits(bits)
    for reads_per_step in intensities:
        config = SecureProcessorConfig.sct_default(
            protected_size=128 * MIB, functional_crypto=False
        )
        proc, allocator = _machine(config)
        channel = CovertChannelT(proc, allocator)
        if reads_per_step:
            channel.noise = co_located_noise(
                channel, allocator, reads_per_step=reads_per_step
            )
        raw = channel.transmit(payload)
        framed = ReliableChannel(channel).send(payload, max_retries=8, votes=3)
        label = f"{reads_per_step} conflict reads/step"
        result.add(f"{label}: raw accuracy", round(raw.accuracy, 4), None)
        result.add(f"{label}: raw wire BER", round(framed.raw_ber, 4), None)
        result.add(
            f"{label}: ECC payload accuracy",
            round(framed.payload_accuracy, 4),
            ">= 0.99",
        )
        result.add(
            f"{label}: ECC goodput (bits/kcycle)",
            round(framed.goodput_bits_per_kilocycle, 4),
            None,
        )
    if include_c:
        config = SecureProcessorConfig.sct_default(
            protected_size=128 * MIB, functional_crypto=False
        )
        proc, allocator = _machine(config)
        channel_c = CovertChannelC(proc, allocator)
        framed_c = ReliableChannel(BitSymbolAdapter(channel_c)).send(
            payload[:16], max_retries=2
        )
        result.add(
            "MetaLeak-C framed payload accuracy",
            round(framed_c.payload_accuracy, 4),
            ">= 0.99",
        )
        result.add(
            "MetaLeak-C framed goodput (bits/kcycle)",
            round(framed_c.goodput_bits_per_kilocycle, 4),
            None,
        )
    return result
