"""Terminal-friendly visualisation of experiment data.

No plotting dependency ships offline, so figures are rendered as aligned
ASCII: histograms for latency distributions (Figures 6-8), bar charts for
accuracy series, and CSV export for anyone who wants real plots.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

from repro.analysis.report import FigureResult

_BAR = "█"
_HALF = "▌"


def histogram(
    values: Sequence[float],
    *,
    bins: int = 12,
    width: int = 40,
    label: str = "",
) -> str:
    """Render a latency sample as a vertical-bin ASCII histogram."""
    if not values:
        raise ValueError("cannot histogram an empty sample")
    low = min(values)
    high = max(values)
    if high == low:
        return f"{label + ': ' if label else ''}all {len(values)} samples at {low:g}"
    span = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(int((value - low) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = [f"== {label} ==" if label else "== histogram =="]
    for i, count in enumerate(counts):
        left = low + i * span
        bar_length = int(round(count / peak * width))
        lines.append(
            f"{left:>8.0f}-{left + span:<8.0f} {_BAR * bar_length}{'' if count else ''} {count}"
        )
    return "\n".join(lines)


def grouped_histogram(
    samples: Mapping[str, Sequence[float]], *, width: int = 40
) -> str:
    """Stacked per-series histograms sharing one latency axis.

    This is the Figure-6/7 view: one row per access path, bars positioned
    by latency so band separation is visible at a glance.
    """
    all_values = [v for series in samples.values() for v in series]
    if not all_values:
        raise ValueError("no samples")
    low, high = min(all_values), max(all_values)
    span = max(1.0, high - low)
    label_width = max(len(name) for name in samples)
    lines = [f"{'':{label_width}}  {low:>6.0f} {'·' * width} {high:<6.0f}"]
    for name, series in samples.items():
        row = [" "] * (width + 1)
        for value in series:
            position = int((value - low) / span * width)
            row[position] = _BAR
        lines.append(f"{name:<{label_width}}  {'':6} {''.join(row)}")
    return "\n".join(lines)


def bar_chart(
    entries: Iterable[tuple[str, float]],
    *,
    width: int = 40,
    maximum: float | None = None,
) -> str:
    """Horizontal bar chart for accuracy/throughput series."""
    rows = list(entries)
    if not rows:
        raise ValueError("no entries")
    top = maximum if maximum is not None else max(value for _, value in rows)
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = value / top * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        lines.append(f"{label:<{label_width}}  {bar} {value:g}")
    return "\n".join(lines)


def figure_bar_chart(result: FigureResult, *, width: int = 40) -> str:
    """Bar chart of a FigureResult's numeric rows."""
    entries = [
        (row.label, float(row.measured))
        for row in result.rows
        if isinstance(row.measured, (int, float))
    ]
    return f"== {result.figure}: {result.title} ==\n" + bar_chart(
        entries, width=width
    )


def to_csv(result: FigureResult) -> str:
    """Export a FigureResult as CSV (series,measured,paper,unit)."""
    buffer = io.StringIO()
    buffer.write("series,measured,paper,unit\n")
    for row in result.rows:
        paper = "" if row.paper is None else row.paper
        buffer.write(f'"{row.label}",{row.measured},"{paper}","{row.unit}"\n')
    return buffer.getvalue()
