"""The persistent key-value store case study (MetaLeak-C write monitoring).

The victim is :class:`~repro.victims.kvstore.PersistentKvStore`: every
``put`` persists a write-ahead-log record and then the bucket page of the
key's hash — write-through, so both stores reach the memory controller and
bump tree counters with no cache-eviction games.  The attacker shares one
tree minor per bucket page (the OS staged each bucket into its own
level-0 subtree), arms each counter one write short of saturation, and
after every ``put`` runs mOverflow on each: the bucket whose counter
saturated is the bucket the key hashed to.  The recovered sequence leaks
the keys' hash distribution; the write-ahead log counter leaks the
operation count.

This driver is the robustness showcase for the analysis layer: it never
fabricates certainty.  Every recovered bucket carries a confidence —
1.0 when exactly one counter fired, split across candidates when several
fired (noise or a hash collision with attacker traffic), 0.0 when none
did — and the result carries ``degraded``/``degraded_reasons`` instead of
raising when observations go wrong or the cycle budget expires mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.metaleak_c import MetaLeakC, SharedCounterHandle
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig, TreeConfig, TreeKind
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor
from repro.utils.watchdog import CycleBudget, ensure_budget
from repro.victims.kvstore import PersistentKvStore

# Each monitored page needs its own level-1 *node*, not just its own
# minor slot: a split-counter overflow resets every minor in the node, so
# two armed slots under one node would wipe each other out during
# arming.  A level-1 node covers arities[0] * arities[1] data pages.
_LOG_L1_GROUP = 1
_FIRST_BUCKET_L1_GROUP = 2


@dataclass
class KvAttackResult:
    """Structured outcome of one kvstore recovery run."""

    keys: list[str] = field(repr=False, default_factory=list)
    true_buckets: list[int] = field(repr=False, default_factory=list)
    recovered_buckets: list[int | None] = field(repr=False, default_factory=list)
    confidences: list[float] = field(repr=False, default_factory=list)
    bucket_accuracy: float = 0.0
    puts_true: int = 0
    puts_observed: int = 0
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = ()
    truncated: bool = False
    attacker_cycles: int = 0

    @property
    def mean_confidence(self) -> float:
        if not self.confidences:
            return 0.0
        return sum(self.confidences) / len(self.confidences)


def _default_config() -> SecureProcessorConfig:
    # 5-bit tree minors keep per-put re-arming cheap (the paper's 7-bit
    # default works identically, ~4x slower — Sweep S3 measures the cost
    # curve); the channel itself is width-independent.
    # 256 MiB (not the experiment-default 128) because this attack runs
    # one MetadataEvictor per monitored page: each needs a full set of
    # free same-set pages, which a smaller pool cannot supply.
    return SecureProcessorConfig.sct_default(
        protected_size=256 * MIB, functional_crypto=False
    ).with_overrides(
        tree=TreeConfig(
            kind=TreeKind.SPLIT_COUNTER,
            arities=(32, 16, 16, 16, 16, 16),
            major_bits=56,
            minor_bits=5,
        )
    )


def _default_keys(count: int) -> list[str]:
    return [f"user:{index:04d}" for index in range(count)]


def _rearm(handle: SharedCounterHandle) -> None:
    """Re-arm a handle whose overflow just fired (counter now holds 1)."""
    handle.preset(handle.minor_max - 1)


def run_kvstore_attack(
    keys: list[str] | None = None,
    *,
    buckets: int = 4,
    config: SecureProcessorConfig | None = None,
    budget: CycleBudget | int | None = None,
    monitor_log: bool = True,
) -> KvAttackResult:
    """Recover which bucket each ``put`` touched through shared tree minors.

    Never raises for observation failures: missed writes, ambiguous
    multi-bucket fires, and budget expiry all land in the result's
    confidence vector and ``degraded_reasons`` instead.
    """
    proc = SecureProcessor(config or _default_config())
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    budget = ensure_budget(proc, budget)

    # Free-list staging (LIFO): the store allocates log first, buckets in
    # order, so the log frame is staged last.
    arities = proc.config.tree.arities
    l1_span = arities[0] * arities[1]
    bucket_frames = [
        (_FIRST_BUCKET_L1_GROUP + b) * l1_span for b in range(buckets)
    ]
    log_frame = _LOG_L1_GROUP * l1_span
    if bucket_frames[-1] >= proc.layout.data_size // PAGE_SIZE:
        raise ValueError(
            f"{buckets} buckets need {(buckets + 2) * l1_span} data pages; "
            "use a larger protected_size"
        )
    victim_process = Process(proc, allocator, core=0, cleanse=True, name="kvstore")
    for frame in reversed(bucket_frames):
        allocator.stage_for_next_alloc(frame, core=0)
    allocator.stage_for_next_alloc(log_frame, core=0)

    store = PersistentKvStore(victim_process, buckets=buckets)
    assert store.log_frame == log_frame
    assert [store.bucket_frame(b) for b in range(buckets)] == bucket_frames

    attack = MetaLeakC(proc, allocator, core=1)
    bucket_handles = [
        attack.handle_for_page(frame, level=1) for frame in bucket_frames
    ]
    log_handle = (
        attack.handle_for_page(log_frame, level=1) if monitor_log else None
    )
    start_cycle = proc.cycle

    for handle in bucket_handles:
        handle.arm_for_writes(1)
    if log_handle is not None:
        log_handle.arm_for_writes(1)

    keys = list(keys) if keys is not None else _default_keys(6)
    true_buckets: list[int] = []
    recovered: list[int | None] = []
    confidences: list[float] = []
    puts_observed = 0
    reasons: set[str] = set()
    aborted = False

    for key in keys:
        if budget.expired:
            aborted = True
            break
        # The victim's put: one log write, one bucket write.
        for _step in store.put(key, b"value"):
            pass
        true_buckets.append(store.bucket_of(key))

        # mOverflow each armed counter.  armed_for=1, so 1 extra bump to
        # overflow means the victim wrote; 2 means it did not.
        fired: list[int] = []
        scan_failed = False
        for bucket, handle in enumerate(bucket_handles):
            attack.collect_victim_updates(bucket_frames[bucket], level=1)
            scan = handle.scan_to_overflow(max_bumps=3, budget=budget)
            if scan.aborted:
                aborted = True
                break
            if not scan.fired:
                # Counter is in an unexpected state: re-establish it from
                # scratch rather than trusting any reading this round.
                scan_failed = True
                handle.arm_for_writes(1)
                continue
            if scan.bumps == 1:
                fired.append(bucket)
            _rearm(handle)
        if aborted:
            # The scan loop left this put half-observed; drop it.
            true_buckets.pop()
            break

        if log_handle is not None:
            attack.collect_victim_updates(log_frame, level=1)
            log_scan = log_handle.scan_to_overflow(max_bumps=3, budget=budget)
            if log_scan.fired:
                if log_scan.bumps == 1:
                    puts_observed += 1
                _rearm(log_handle)
            else:
                log_handle.arm_for_writes(1)

        if scan_failed:
            reasons.add("counter-desync")
        if len(fired) == 1:
            recovered.append(fired[0])
            confidences.append(1.0)
        elif not fired:
            recovered.append(None)
            confidences.append(0.0)
            reasons.add("missed-write")
        else:
            # Several counters saturated (noise bumped a neighbour):
            # report the first candidate at split confidence.
            recovered.append(fired[0])
            confidences.append(1.0 / len(fired))
            reasons.add("ambiguous-bucket")

    if aborted:
        reasons.add("budget")
    truncated = len(recovered) < len(keys)
    correct = sum(
        1 for got, want in zip(recovered, true_buckets) if got == want
    )
    scored = len(keys) if keys else 1  # undelivered puts count as errors
    low_confidence = confidences and (
        sum(confidences) / len(confidences) < 0.5
    )
    if low_confidence:
        reasons.add("low-confidence")
    return KvAttackResult(
        keys=keys,
        true_buckets=true_buckets,
        recovered_buckets=recovered,
        confidences=confidences,
        bucket_accuracy=correct / scored,
        puts_true=store.puts,
        puts_observed=puts_observed,
        degraded=bool(reasons),
        degraded_reasons=tuple(sorted(reasons)),
        truncated=truncated,
        attacker_cycles=proc.cycle - start_cycle,
    )
