"""The libgcrypt RSA case study (Section VIII-B1, Figure 16).

The victim runs square-and-multiply modular exponentiation inside an
enclave (SGX preset, SIT, L1 tree sharing via OS frame placement) or on
the simulated academic design (SCT, leaf-level sharing).  The attacker
single-steps the victim with SGX-Step, mEvict+mReloads the square and
multiply code pages each step, and decodes the exponent from the observed
operation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import PairClassifier
from repro.attacks.metaleak_t import MetaLeakT
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor
from repro.sgx.machine import SgxMachine
from repro.sgx.sgx_step import SgxStep
from repro.utils.stats import accuracy, aligned_accuracy
from repro.victims.rsa import RsaModexpVictim, generate_test_key


@dataclass
class RsaAttackResult:
    machine: str
    bit_accuracy: float
    op_accuracy: float
    true_bits: list[int] = field(repr=False, default_factory=list)
    recovered_bits: list[int] = field(repr=False, default_factory=list)
    labels: list[str] = field(repr=False, default_factory=list)
    latency_trace: list[tuple[int, int]] = field(repr=False, default_factory=list)
    steps: int = 0
    # Per recovered bit: how much the underlying monitor readings deserve
    # to be believed (0.0 = the decode guessed).  ``degraded`` marks runs
    # whose output should not be trusted at face value.
    confidences: list[float] = field(repr=False, default_factory=list)
    mean_confidence: float = 0.0
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = ()


def decode_exponent_with_confidence(
    labels: list[str], step_confidences: list[float] | None = None
) -> tuple[list[int], list[float]]:
    """Noise-tolerant square/multiply decode (MSB-first bits).

    Unknown steps are treated as squares (squares dominate), and stray
    multiplies without a preceding square are skipped — local errors stay
    local instead of shifting the whole bitstream.  Each decoded bit
    carries the weakest step confidence it was built from.
    """
    if step_confidences is None:
        step_confidences = [1.0] * len(labels)
    bits: list[int] = []
    confidences: list[float] = []
    index = 0
    while index < len(labels):
        label = labels[index]
        if label == "multiply":
            index += 1  # stray multiply: already folded into previous bit
            continue
        if index + 1 < len(labels) and labels[index + 1] == "multiply":
            bits.append(1)
            confidences.append(
                min(step_confidences[index], step_confidences[index + 1])
            )
            index += 2
        else:
            bits.append(0)
            confidences.append(step_confidences[index])
            index += 1
    return bits, confidences


def decode_exponent_bits(labels: list[str]) -> list[int]:
    """Decode without confidence tracking (see the scored variant above)."""
    bits, _ = decode_exponent_with_confidence(labels)
    return bits


def _exponent_bits(exponent: int) -> list[int]:
    return [int(b) for b in bin(exponent)[2:]]


def _sct_environment(
    config: SecureProcessorConfig | None,
) -> tuple[SecureProcessor, PageAllocator, Process, int]:
    proc = SecureProcessor(
        config
        or SecureProcessorConfig.sct_default(
            protected_size=256 * MIB, functional_crypto=False
        )
    )
    allocator = PageAllocator(proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores)
    process = Process(proc, allocator, core=0, cleanse=True, name="libgcrypt")
    return proc, allocator, process, 0  # monitor at leaf level


def _sgx_environment(
    config: SecureProcessorConfig | None,
) -> tuple[SecureProcessor, PageAllocator, Process, int]:
    machine = SgxMachine(
        config
        or SecureProcessorConfig.sgx_default(
            epc_size=64 * MIB, functional_crypto=False
        )
    )
    enclave = machine.create_enclave(core=0, name="libgcrypt-enclave")
    # L0 in SGX maps to exactly one page and cannot be shared; the attack
    # targets L1 (Section VIII-B), so the OS places the victim's two code
    # pages in distinct 8-page groups.
    return machine.proc, machine.allocator, enclave, 1


def run_rsa_attack(
    machine: str = "sgx",
    *,
    exponent_bits: int = 64,
    seed: int = 99,
    config: SecureProcessorConfig | None = None,
) -> RsaAttackResult:
    """Recover an RSA exponent through MetaLeak-T (Figure 16)."""
    if machine == "sgx":
        proc, allocator, process, level = _sgx_environment(config)
        square_frame, multiply_frame = 80, 160
    elif machine == "sct":
        proc, allocator, process, level = _sct_environment(config)
        square_frame, multiply_frame = 10 * 32, 50 * 32
    else:
        raise ValueError("machine must be 'sgx' or 'sct'")

    # Victim page placement (privileged attacker / free-list staging).
    allocator.stage_for_next_alloc(multiply_frame, core=process.core)
    allocator.stage_for_next_alloc(square_frame, core=process.core)
    victim = RsaModexpVictim(process)
    assert victim.square_frame == square_frame
    assert victim.multiply_frame == multiply_frame

    attack = MetaLeakT(proc, allocator, core=1)
    classifier = PairClassifier(
        attack.monitor_for_page(square_frame, level=level),
        attack.monitor_for_page(multiply_frame, level=level),
        name_a="square",
        name_b="multiply",
    )

    base, exponent, modulus = generate_test_key(exponent_bits, seed=seed)
    labels: list[str] = []
    truth_ops: list[str] = []

    def before(step: int, _payload: object) -> None:
        classifier.m_evict()

    def probe(step: int, payload: object) -> None:
        labels.append(classifier.m_reload())
        truth_ops.append(payload.operation)

    stepper = SgxStep(interval=1)
    stepper.run(victim.modexp(base, exponent, modulus), probe=probe, before_step=before)

    step_confidences = [obs.confidence for obs in classifier.observations]
    recovered_bits, bit_confidences = decode_exponent_with_confidence(
        labels, step_confidences
    )
    true_bits = _exponent_bits(exponent)
    latency_trace = [
        (obs.latency_a, obs.latency_b) for obs in classifier.observations
    ]
    mean_confidence = (
        sum(bit_confidences) / len(bit_confidences) if bit_confidences else 0.0
    )
    reasons: list[str] = []
    if not classifier.calibration_ok:
        reasons.append("degenerate-calibration")
    if mean_confidence < 0.5:
        reasons.append("low-confidence")
    return RsaAttackResult(
        machine=machine,
        # Alignment-tolerant scoring: a single op misclassification costs
        # one bit, not the rest of the positional stream.
        bit_accuracy=aligned_accuracy(recovered_bits, true_bits),
        op_accuracy=accuracy(labels, truth_ops),
        true_bits=true_bits,
        recovered_bits=recovered_bits,
        labels=labels,
        latency_trace=latency_trace,
        steps=stepper.trace.steps,
        confidences=bit_confidences,
        mean_confidence=mean_confidence,
        degraded=bool(reasons),
        degraded_reasons=tuple(reasons),
    )
