"""Latency-trace analysis utilities.

The attacks hand back raw latency sequences; these helpers turn them into
decisions and diagnostics: band detection for multi-modal traces,
windowed bit decoding, run-length segmentation, and a plain-text
"sparkline" renderer for terminal trace snippets (Figures 11/14/16-style
visualisation without a plotting dependency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.stats import otsu_threshold, summarize


@dataclass(frozen=True)
class Band:
    """One latency band of a multi-modal trace."""

    low: float
    high: float
    count: int

    @property
    def center(self) -> float:
        return (self.low + self.high) / 2

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def detect_bands(
    latencies: Sequence[float], *, gap: float = 80.0
) -> list[Band]:
    """Cluster a latency sample into bands separated by ``gap`` cycles.

    Single-pass over the sorted sample: a jump larger than ``gap`` starts
    a new band.  Figures 6-8 are summarised this way.
    """
    if not latencies:
        raise ValueError("empty latency trace")
    if not math.isfinite(gap) or gap <= 0:
        raise ValueError(
            f"gap must be a positive finite number of cycles, got {gap!r}: "
            "a non-positive gap would put every distinct latency in its own "
            "band, and NaN/inf gaps silently merge or never split bands"
        )
    ordered = sorted(float(v) for v in latencies)
    if not all(math.isfinite(v) for v in ordered):
        raise ValueError(
            "latency trace contains NaN or infinite values; filter the "
            "sample before band detection (comparisons against NaN are "
            "always false, which corrupts the band boundaries silently)"
        )
    bands: list[Band] = []
    start = ordered[0]
    previous = ordered[0]
    count = 1
    for value in ordered[1:]:
        if value - previous > gap:
            bands.append(Band(low=start, high=previous, count=count))
            start = value
            count = 0
        previous = value
        count += 1
    bands.append(Band(low=start, high=previous, count=count))
    return bands


def classify_by_threshold(
    latencies: Iterable[float], threshold: float | None = None
) -> tuple[list[int], float]:
    """Binarise a trace: 1 = below threshold (hit), 0 = above (miss).

    With no threshold given, Otsu's cut over the trace itself is used —
    what an attacker does when it cannot calibrate offline.
    """
    values = [float(v) for v in latencies]
    if threshold is None:
        threshold = otsu_threshold(values)
    return [1 if value < threshold else 0 for value in values], threshold


def run_lengths(bits: Sequence[int]) -> list[tuple[int, int]]:
    """Compress a bit sequence into (value, length) runs."""
    runs: list[tuple[int, int]] = []
    for bit in bits:
        if runs and runs[-1][0] == bit:
            runs[-1] = (bit, runs[-1][1] + 1)
        else:
            runs.append((bit, 1))
    return runs


def majority_window_decode(
    bits: Sequence[int], window: int
) -> list[int]:
    """Decode one symbol per ``window`` raw observations by majority vote.

    Used when the attacker oversamples relative to the victim's symbol
    rate (multiple mReload rounds per transmitted bit).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    decoded = []
    for start in range(0, len(bits) - window + 1, window):
        chunk = bits[start : start + window]
        decoded.append(1 if sum(chunk) * 2 >= len(chunk) else 0)
    return decoded


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(latencies: Sequence[float], *, width: int = 64) -> str:
    """Render a latency trace as a unicode sparkline (for examples/logs)."""
    if not latencies:
        return ""
    values = [float(v) for v in latencies]
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        _SPARK_LEVELS[int((value - low) * scale)] for value in values
    )


def describe_trace(latencies: Sequence[float]) -> str:
    """One-line summary + sparkline, used by example scripts."""
    stats = summarize(latencies)
    return f"{sparkline(latencies)}  [{stats}]"
