"""Secure-memory performance overhead study.

The attack exists because secure processors add metadata work to the
memory path; this harness quantifies that cost the same way the secure-
memory literature (VAULT, Synergy, BMT) does: run simple access patterns
on an unprotected baseline and on each protected design, and report the
slowdown.  It doubles as a regression guard on the timing model — if a
change makes Path-2/3/4 costs drift wildly, these ratios move.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import FigureResult
from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
from repro.proc.processor import SecureProcessor
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class WorkloadResult:
    name: str
    cycles: int
    accesses: int

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / max(1, self.accesses)


def _run_workload(
    proc: SecureProcessor, pattern: str, accesses: int, *, seed: int = 9
) -> WorkloadResult:
    """Drive one access pattern; returns consumed cycles.

    Patterns: ``seq-read`` (streaming), ``stride-read`` (page-strided, the
    metadata-unfriendly case), ``rand-read``, ``seq-write``.
    Accesses are cache-cleansed so the memory path is actually exercised
    (cache-hit workloads see no security cost at all).
    """
    rng = derive_rng(seed, "overhead", pattern)
    span_pages = 512
    start = proc.cycle
    for i in range(accesses):
        if pattern == "seq-read":
            addr = (i * 64) % (span_pages * PAGE_SIZE)
            proc.flush(addr)
            proc.read(addr)
        elif pattern == "stride-read":
            addr = ((i * 67) % span_pages) * PAGE_SIZE
            proc.flush(addr)
            proc.read(addr)
        elif pattern == "rand-read":
            addr = rng.randrange(0, span_pages * PAGE_SIZE, 64)
            proc.flush(addr)
            proc.read(addr)
        elif pattern == "seq-write":
            addr = (i * 64) % (span_pages * PAGE_SIZE)
            proc.write_through(addr, b"w")
            if i % 16 == 15:
                proc.drain_writes()
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
    return WorkloadResult(name=pattern, cycles=proc.cycle - start, accesses=accesses)


class _InsecureBaseline:
    """The same machine with the security engine's costs zeroed out."""

    @staticmethod
    def config() -> SecureProcessorConfig:
        from repro.config import CryptoConfig

        return SecureProcessorConfig.sct_default(
            protected_size=64 * MIB, functional_crypto=False
        ).with_overrides(
            crypto=CryptoConfig(aes_latency=0, hash_latency=0, mac_latency=0),
            # A huge metadata cache makes every counter access a hit, so
            # no verification walks happen after warm-up: this approximates
            # a conventional (unprotected) memory system.
            metadata_cache=SecureProcessorConfig.sct_default().metadata_cache.__class__(
                "MetaCache", 16 * MIB, 16, 0
            ),
        )


def overhead_study(
    accesses: int = 400,
    patterns: tuple[str, ...] = ("seq-read", "stride-read", "rand-read", "seq-write"),
) -> FigureResult:
    """Slowdown of HT and SCT designs vs an (approximated) insecure base."""
    result = FigureResult(
        figure="Overhead",
        title="Secure-memory slowdown vs insecure baseline "
        "(cache-cleansed access patterns)",
        notes=(
            "context for the secure-memory literature: protection costs "
            "tens of percent on memory-bound patterns; the channel exists "
            "because this work is state-dependent"
        ),
    )
    baseline_proc = SecureProcessor(_InsecureBaseline.config())
    designs = {
        "HT": SecureProcessorConfig.ht_default(
            protected_size=64 * MIB, functional_crypto=False
        ),
        "SCT": SecureProcessorConfig.sct_default(
            protected_size=64 * MIB, functional_crypto=False
        ),
    }
    for pattern in patterns:
        base = _run_workload(baseline_proc, pattern, accesses)
        result.add(
            f"baseline {pattern}",
            round(base.cycles_per_access, 1),
            None,
            "cycles/access",
        )
        for name, config in designs.items():
            proc = SecureProcessor(config)
            run = _run_workload(proc, pattern, accesses)
            slowdown = run.cycles / max(1, base.cycles)
            result.add(
                f"{name} {pattern} slowdown",
                round(slowdown, 3),
                "> 1.0",
                "x",
            )
    return result
