"""Configuration dataclasses and the Table-I presets from the paper.

Every component of the simulated secure processor is parameterised through
these frozen dataclasses.  The two headline presets mirror Table I of the
paper:

* :func:`SecureProcessorConfig.sct_default` — the simulated academic design
  with split-counter encryption (SC) and a split-counter integrity tree
  (SCT, VAULT-style: 32-ary L0, 16-ary L1..L5).
* :func:`SecureProcessorConfig.ht_default` — the same machine with an 8-ary
  Bonsai-Merkle hash tree (HT).
* :func:`SecureProcessorConfig.sgx_default` — the SGX hardware model: 56-bit
  monolithic encryption counters and the 8-ary 4-level SGX integrity tree
  (SIT) with its distinct (higher) latency profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

BLOCK_SIZE = 64
PAGE_SIZE = 4096
BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class CounterScheme(enum.Enum):
    """Encryption-counter organisations of Section IV-A / Figure 3."""

    GLOBAL = "GC"
    MONOLITHIC = "MoC"
    SPLIT = "SC"


class TreeKind(enum.Enum):
    """Integrity-tree designs of Section IV-C / Figure 4."""

    HASH = "HT"
    SPLIT_COUNTER = "SCT"
    SGX = "SIT"


class TreeUpdatePolicy(enum.Enum):
    """When tree nodes absorb counter updates (Section V).

    ``EAGER`` updates the whole verification path when the memory controller
    services a data write; ``LAZY`` is the paper's default scheme where only
    the leaf is updated when a dirty encryption-counter block is evicted from
    the metadata cache, and higher levels on dirty node eviction.
    """

    EAGER = "eager"
    LAZY = "lazy"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry, hit latency and replacement policy of one cache."""

    name: str
    size_bytes: int
    ways: int
    hit_latency: int
    block_size: int = BLOCK_SIZE
    replacement: str = "lru"  # "lru" | "plru" | "random"

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.ways

    def __post_init__(self) -> None:
        if self.size_bytes % (self.block_size * self.ways) != 0:
            raise ValueError(
                f"cache {self.name}: size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_size})"
            )


@dataclass(frozen=True)
class DramConfig:
    """Main-memory timing: open-row banks behind a shared bus."""

    banks: int = 16
    row_size: int = 8 * KIB
    row_hit_latency: int = 90
    row_miss_latency: int = 130
    bus_latency: int = 10


@dataclass(frozen=True)
class MemCtrlConfig:
    """Memory-controller queues (Table I: 64 RD & WR queue, FR-FCFS)."""

    read_queue_entries: int = 64
    write_queue_entries: int = 64
    write_merge: bool = True
    # Fraction of the write queue that, once exceeded, forces a drain burst
    # (FR-FCFS write-drain high watermark).
    drain_watermark: float = 0.75


@dataclass(frozen=True)
class CryptoConfig:
    """Latencies of the on-chip security engine (Table I: 20-cycle AES).

    ``hash_latency`` is per tree-level verification; at 40 cycles, one
    missed tree level costs bus + hash = 50 cycles on the parallel-fetch
    path, keeping the Figure-6 bands separated beyond DRAM row-state
    variance (±40 cycles).
    """

    aes_latency: int = 20
    hash_latency: int = 40
    mac_latency: int = 16
    # True (Synergy [15]) stores the MAC in repurposed ECC bits so data and
    # MAC arrive in one memory read; False models the classical design
    # where every data read issues a second, separate MAC read.  Both are
    # constant-latency per access (Section IV-B: authentication itself
    # leaks nothing) — the flag only shifts the baseline.
    mac_in_ecc: bool = True


@dataclass(frozen=True)
class CounterConfig:
    """Encryption-counter scheme parameters (Section IV-A)."""

    scheme: CounterScheme = CounterScheme.SPLIT
    major_bits: int = 64
    minor_bits: int = 7
    # Blocks sharing one major counter in SC mode: one physical page.
    group_blocks: int = BLOCKS_PER_PAGE
    # Width of the single counter in GC/MoC mode.
    monolithic_bits: int = 64

    @property
    def minor_max(self) -> int:
        return (1 << self.minor_bits) - 1


@dataclass(frozen=True)
class TreeConfig:
    """Integrity-tree geometry (Section IV-C, Table I).

    ``arities[i]`` is the fan-in of level-``i`` node blocks; the level above
    ``len(arities)-1`` is the on-chip root array (trusted, free to access).
    """

    kind: TreeKind = TreeKind.SPLIT_COUNTER
    arities: tuple[int, ...] = (32, 16, 16, 16, 16, 16)
    major_bits: int = 56
    minor_bits: int = 7
    monolithic_bits: int = 56  # SIT node counters

    @property
    def levels(self) -> int:
        return len(self.arities)

    @property
    def minor_max(self) -> int:
        return (1 << self.minor_bits) - 1


@dataclass(frozen=True)
class NoiseConfig:
    """Background interference injected between attack rounds.

    ``meta_disturb_rate`` is the per-round probability that co-running
    traffic touches the metadata-cache set (or counter) the attacker relies
    on, flipping one observation.  ``jitter_cycles`` adds symmetric timing
    noise to every measured latency.  Defaults are calibrated so the headline
    experiments land near the paper's reported accuracies.
    """

    meta_disturb_rate: float = 0.0
    jitter_cycles: int = 0
    seed_label: str = "noise"


@dataclass(frozen=True)
class SecureProcessorConfig:
    """Top-level machine description (Table I)."""

    name: str
    cores: int = 4
    sockets: int = 1
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", 32 * KIB, 8, 1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 1 * MIB, 4, 10)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 8 * MIB, 16, 40)
    )
    metadata_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("MetaCache", 256 * KIB, 8, 2)
    )
    # Table I reads "counter & Tree cache" as one structure (default).
    # Setting split_metadata_caches gives tree nodes their own cache of
    # ``tree_cache`` geometry (defaults to the metadata cache's) — the
    # VAULT-style organisation.  The attack adapts: eviction sets for tree
    # nodes are then built from pages whose *leaf nodes* alias the target
    # set (see repro.attacks.mapping).
    split_metadata_caches: bool = False
    tree_cache: CacheConfig | None = None
    dram: DramConfig = field(default_factory=DramConfig)
    memctrl: MemCtrlConfig = field(default_factory=MemCtrlConfig)
    crypto: CryptoConfig = field(default_factory=CryptoConfig)
    counters: CounterConfig = field(default_factory=CounterConfig)
    tree: TreeConfig = field(default_factory=TreeConfig)
    protected_size: int = 64 * GIB
    tree_update_policy: TreeUpdatePolicy = TreeUpdatePolicy.LAZY
    # Academic MEEs issue the (address-computable) tree-level fetches in
    # parallel; the SGX MEE walk is modelled serial, which is what stretches
    # its Figure-7 latency range to ~700 cycles.
    parallel_tree_fetch: bool = True
    # Per-domain isolated integrity trees (the Section IX-C mitigation).
    isolated_trees: bool = False
    functional_crypto: bool = True
    # Gaussian sigma (cycles) added to *reported* access latencies, modeling
    # real-machine timer and interconnect noise.  0 = deterministic (tests).
    # Experiments reproducing paper accuracies set ~10 (simulated designs)
    # and ~50 (SGX hardware messiness).
    timer_jitter_sigma: float = 0.0
    seed: int = 2024

    @property
    def protected_pages(self) -> int:
        return self.protected_size // PAGE_SIZE

    @property
    def protected_blocks(self) -> int:
        return self.protected_size // BLOCK_SIZE

    def with_overrides(self, **kwargs: object) -> "SecureProcessorConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Table-I presets
    # ------------------------------------------------------------------

    @staticmethod
    def sct_default(
        protected_size: int = 256 * MIB, **overrides: object
    ) -> "SecureProcessorConfig":
        """Simulated academic design with the split-counter tree (VAULT).

        Table I geometry.  The default protected size is scaled down from
        64 GiB so experiments stay laptop-fast; pass
        ``protected_size=64 * GIB`` for the full Table-I footprint (all
        structures are sparse, so this works, just with deeper effective
        trees).
        """
        config = SecureProcessorConfig(
            name="SCT",
            counters=CounterConfig(scheme=CounterScheme.SPLIT),
            tree=TreeConfig(
                kind=TreeKind.SPLIT_COUNTER,
                arities=(32, 16, 16, 16, 16, 16),
                major_bits=56,
                minor_bits=7,
            ),
            protected_size=protected_size,
        )
        return config.with_overrides(**overrides) if overrides else config

    @staticmethod
    def ht_default(
        protected_size: int = 256 * MIB, **overrides: object
    ) -> "SecureProcessorConfig":
        """Simulated academic design with an 8-ary Bonsai Merkle hash tree."""
        config = SecureProcessorConfig(
            name="HT",
            counters=CounterConfig(scheme=CounterScheme.SPLIT),
            tree=TreeConfig(kind=TreeKind.HASH, arities=(8,) * 6),
            protected_size=protected_size,
        )
        return config.with_overrides(**overrides) if overrides else config

    @staticmethod
    def sgx_default(
        epc_size: int = 93 * MIB + 512 * KIB, **overrides: object
    ) -> "SecureProcessorConfig":
        """SGX hardware model: i7-9700K-style MEE with the SIT.

        56-bit monolithic encryption counters, an 8-ary 4-level counter tree
        whose top (L3) is on-chip, and the higher latency profile observed in
        Figure 7 (reads between ~150 and ~700 cycles).
        """
        config = SecureProcessorConfig(
            name="SGX",
            cores=8,
            l2=CacheConfig("L2", 256 * KIB, 4, 12),
            l3=CacheConfig("L3", 12 * MIB, 16, 42),
            metadata_cache=CacheConfig("MEECache", 64 * KIB, 8, 2),
            dram=DramConfig(
                row_hit_latency=80, row_miss_latency=110, bus_latency=14
            ),
            crypto=CryptoConfig(aes_latency=40, hash_latency=30, mac_latency=30),
            parallel_tree_fetch=False,
            counters=CounterConfig(
                scheme=CounterScheme.MONOLITHIC, monolithic_bits=56
            ),
            tree=TreeConfig(
                kind=TreeKind.SGX, arities=(8, 8, 8), monolithic_bits=56
            ),
            protected_size=epc_size - (epc_size % PAGE_SIZE),
        )
        return config.with_overrides(**overrides) if overrides else config


# Named machine presets.  The single source of truth for every consumer
# that accepts a ``--preset``-style name (CLI, figure harness, fault
# campaigns); look up through :func:`preset_config` for a friendly error
# instead of a bare ``KeyError``.
PRESET_FACTORIES: dict[str, "staticmethod"] = {
    "sct": SecureProcessorConfig.sct_default,
    "ht": SecureProcessorConfig.ht_default,
    "sgx": SecureProcessorConfig.sgx_default,
}


def preset_names() -> tuple[str, ...]:
    return tuple(PRESET_FACTORIES)


def preset_config(name: str, **overrides: object) -> SecureProcessorConfig:
    """Build the named preset, forwarding ``overrides`` to its factory."""
    factory = PRESET_FACTORIES.get(name)
    if factory is None:
        valid = ", ".join(sorted(PRESET_FACTORIES))
        raise ValueError(f"unknown preset {name!r} (valid presets: {valid})")
    return factory(**overrides)
