"""Keyed PRF primitives standing in for AES / GHASH hardware."""

from __future__ import annotations

import hashlib


def _encode_part(part: bytes | int | str) -> bytes:
    """Canonical length-prefixed encoding of one PRF input component."""
    if isinstance(part, int):
        raw = part.to_bytes((max(part.bit_length(), 1) + 7) // 8, "little", signed=False)
    elif isinstance(part, str):
        raw = part.encode()
    else:
        raw = bytes(part)
    return len(raw).to_bytes(4, "little") + raw


def keyed_prf(key: bytes, *parts: bytes | int | str, out_len: int = 64) -> bytes:
    """Pseudo-random function over a tuple of components.

    Components are length-prefixed before hashing so that no two distinct
    tuples can collide by concatenation (e.g. (1, 23) vs (12, 3)).
    """
    if not 1 <= out_len <= 64:
        raise ValueError("BLAKE2b supports digests of 1..64 bytes")
    h = hashlib.blake2b(key=key[:64], digest_size=out_len)
    for part in parts:
        h.update(_encode_part(part))
    return h.digest()


def node_hash(key: bytes, *parts: bytes | int | str) -> int:
    """64-bit embedded hash used inside integrity-tree node blocks."""
    return int.from_bytes(keyed_prf(key, *parts, out_len=8), "little")
