"""Counter-mode encryption of 64-byte memory blocks (Section IV-A).

The seed for each 16-byte chunk combines the chunk address and the block's
counter, giving both spatial uniqueness (address component) and temporal
uniqueness (counter component), exactly as the paper describes:
``seed = addr_ck || ctr``.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE
from repro.core import Component
from repro.crypto.prf import keyed_prf
from repro.trace.counters import CounterRegistry

CHUNK_SIZE = 16  # AES-128 block
CHUNKS_PER_BLOCK = BLOCK_SIZE // CHUNK_SIZE


class CounterModeEngine(Component):
    """One-time-pad encryption keyed by (address, counter).

    ``encrypt`` and ``decrypt`` are the same XOR operation; decryption with
    a stale counter yields garbage rather than plaintext, which is what lets
    the integrity machinery (and tests) observe replay/splice attempts.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("encryption key must be non-empty")
        self._key = bytes(key)
        self.counters = CounterRegistry()
        self._pads = self.counters.counter("pads_generated")
        self._block_ops = self.counters.counter("block_ops")
        # Instrument slots are created detached by the component graph.
        self.init_component("crypto")

    def one_time_pad(self, block_addr: int, counter: int) -> bytes:
        """The 64-byte OTP for a block under a given counter value."""
        self._pads.value += 1
        pad = bytearray()
        for chunk in range(CHUNKS_PER_BLOCK):
            chunk_addr = block_addr + chunk * CHUNK_SIZE
            pad += keyed_prf(
                self._key, "otp", chunk_addr, counter, out_len=CHUNK_SIZE
            )
        return bytes(pad)

    def encrypt(self, plaintext: bytes, block_addr: int, counter: int) -> bytes:
        """Encrypt one 64-byte block."""
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(plaintext)}")
        self._block_ops.value += 1
        if self.tracer is not None:
            self.tracer.emit("crypto", "block_op", addr=block_addr)
        pad = self.one_time_pad(block_addr, counter)
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    def decrypt(self, ciphertext: bytes, block_addr: int, counter: int) -> bytes:
        """Decrypt one 64-byte block (XOR is involutive)."""
        return self.encrypt(ciphertext, block_addr, counter)
