"""Functional cryptography for the simulated security engine.

Real secure processors use AES-CTR and GHASH; the attack surface studied by
the paper depends only on *when* these operations run and on counter state,
never on cipher internals.  We therefore substitute a keyed BLAKE2b PRF:
encryption still actually round-trips bytes (so tamper-detection tests are
meaningful), while latency is modelled separately in ``repro.config``.
"""

from repro.crypto.mac import MacEngine
from repro.crypto.engine import CounterModeEngine
from repro.crypto.prf import keyed_prf, node_hash

__all__ = ["MacEngine", "CounterModeEngine", "keyed_prf", "node_hash"]
