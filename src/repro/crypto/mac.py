"""Keyed-MAC authentication of memory blocks (Section IV-B).

``MAC = MAC_k(C, ctr, addr_b)`` — the counter is folded into the MAC so the
integrity tree only has to cover encryption counters (the Bonsai Merkle
Tree construction of [12]); the address component defeats splicing.
MAC verification has *constant* latency by design, so it contributes no
timing channel — the simulator charges a fixed ``mac_latency``.
"""

from __future__ import annotations

from repro.crypto.prf import keyed_prf

MAC_SIZE = 8


class MacEngine:
    """Computes and checks per-block MACs."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("MAC key must be non-empty")
        self._key = bytes(key)

    def compute(self, ciphertext: bytes, counter: int, block_addr: int) -> bytes:
        """MAC over (ciphertext, counter, block address)."""
        return keyed_prf(
            self._key, "mac", ciphertext, counter, block_addr, out_len=MAC_SIZE
        )

    def verify(
        self, mac: bytes, ciphertext: bytes, counter: int, block_addr: int
    ) -> bool:
        """Constant-latency authentication check."""
        return mac == self.compute(ciphertext, counter, block_addr)
