"""Fault-injection campaigns: sweep sites, assert detection coverage.

A campaign builds one machine per preset (``sct`` / ``ht`` / ``sgx``,
with *functional* crypto so MACs and tree hashes are real), seeds a
working set of written blocks, then walks hundreds of deterministic
injection sites.  For every corruption of protected state — ciphertext
bits, MAC bits, encryption counters, tree nodes, corrupted metadata
fills — the next read of the affected block must raise
:class:`~repro.secmem.engine.IntegrityViolation`.  Write-queue faults
(drop / reorder) are checked for *graceful degradation* instead: a
reorder must be architecturally invisible, a dropped posted write must
silently keep the previous value (the integrity machinery by design
covers spoofing/splicing/replay, not availability).

Every site is undone after its check and followed by a fault-free
control read, so one campaign both measures detection coverage and
verifies the machine returns to a consistent state — 0 false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import FigureResult
from repro.config import BLOCK_SIZE, PAGE_SIZE, preset_config, preset_names
from repro.faults.injector import (
    PROTECTED_SITES,
    QUEUE_SITES,
    FaultInjector,
    FaultSite,
)
from repro.proc.processor import SecureProcessor
from repro.secmem.engine import IntegrityViolation
from repro.utils.rng import derive_rng

_CAMPAIGN_SIZE = 4 * 1024 * 1024  # 4 MiB protected region — laptop-fast


@dataclass(frozen=True)
class SiteOutcome:
    """What one injection did and whether the machine reacted correctly."""

    index: int
    site: FaultSite
    description: str
    detected: bool  # IntegrityViolation raised where one was required
    ok: bool  # behaviour matched the expectation for this site kind
    note: str = ""


@dataclass
class CampaignReport:
    """Detection-coverage matrix of one campaign run."""

    preset: str
    seed: int
    outcomes: list[SiteOutcome] = field(default_factory=list)
    control_reads: int = 0
    false_positives: int = 0

    def injected(self, site: FaultSite) -> int:
        return sum(1 for o in self.outcomes if o.site is site)

    def detected(self, site: FaultSite) -> int:
        return sum(1 for o in self.outcomes if o.site is site and o.detected)

    def ok_count(self, site: FaultSite) -> int:
        return sum(1 for o in self.outcomes if o.site is site and o.ok)

    @property
    def sites(self) -> int:
        return len(self.outcomes)

    @property
    def protected_injected(self) -> int:
        return sum(self.injected(site) for site in PROTECTED_SITES)

    @property
    def protected_detected(self) -> int:
        return sum(self.detected(site) for site in PROTECTED_SITES)

    @property
    def detection_rate(self) -> float:
        """Fraction of protected-state corruptions that raised a violation."""
        injected = self.protected_injected
        return self.protected_detected / injected if injected else 1.0

    @property
    def fully_detected(self) -> bool:
        """100% detection, all site behaviours as expected, no false alarms."""
        return (
            self.detection_rate == 1.0
            and all(o.ok for o in self.outcomes)
            and self.false_positives == 0
        )

    def failures(self) -> list[SiteOutcome]:
        return [o for o in self.outcomes if not o.ok]


class _Campaign:
    """One preset's sweep: machine, working set, site loop."""

    def __init__(self, preset: str, *, seed: int, pages: int) -> None:
        self.preset = preset
        self.seed = seed
        config = preset_config(
            preset, protected_size=_CAMPAIGN_SIZE, functional_crypto=True
        )
        self.proc = SecureProcessor(config)
        self.layout = self.proc.layout
        self.injector = FaultInjector(self.proc, seed=seed)
        self.rng = derive_rng(seed, "campaign", preset)
        self.report = CampaignReport(preset=preset, seed=seed)
        # Working set: a few blocks on each of ``pages`` spread-out pages.
        self.expected: dict[int, bytes] = {}
        total_pages = config.protected_size // PAGE_SIZE
        stride = max(1, total_pages // (pages + 1))
        for p in range(pages):
            base = (1 + p * stride) * PAGE_SIZE
            for blk in (0, 5):
                addr = base + blk * BLOCK_SIZE
                payload = f"seed:{p}:{blk}".encode()
                self.proc.write_through(addr, payload)
                self.expected[addr] = payload
        self.proc.drain_writes()
        self.proc.mee.flush_metadata_cache(self.proc.cycle)
        self.addrs = sorted(self.expected)

    # -- plumbing ----------------------------------------------------------

    def _clean_read(self, addr: int):
        """Read ``addr`` with cold data caches and a cold metadata path."""
        self.proc.flush(addr)
        self.proc.mee.flush_metadata_cache(self.proc.cycle)
        return self.proc.read(addr)

    def _control_read(self, addr: int) -> bool:
        """Fault-free read; records a false positive if it trips."""
        self.report.control_reads += 1
        try:
            result = self._clean_read(addr)
        except IntegrityViolation:
            self.report.false_positives += 1
            return False
        expected = self.expected[addr]
        return result.data[: len(expected)] == expected

    def control_sweep(self) -> None:
        for addr in self.addrs:
            self._control_read(addr)

    def _record(self, index: int, site: FaultSite, description: str,
                detected: bool, ok: bool, note: str = "") -> None:
        self.report.outcomes.append(
            SiteOutcome(
                index=index,
                site=site,
                description=description,
                detected=detected,
                ok=ok,
                note=note,
            )
        )

    # -- site kinds --------------------------------------------------------

    def _protected_site(self, index: int, site: FaultSite, addr: int) -> None:
        block = addr // BLOCK_SIZE
        layout = self.layout
        if site is FaultSite.DATA_BIT:
            handle = self.injector.flip_data_bit(addr)
        elif site is FaultSite.MAC_BIT:
            handle = self.injector.flip_mac_bit(addr)
        elif site is FaultSite.COUNTER:
            handle = self.injector.corrupt_counter(block)
        elif site is FaultSite.TREE_NODE:
            level = self.rng.randrange(len(layout.levels))
            node_index = layout.node_index(level, layout.counter_block_index(addr))
            slot = self.rng.randrange(layout.levels[level].arity)
            handle = self.injector.corrupt_tree_node(level, node_index, slot)
        else:  # META_FILL
            handle = self.injector.arm_meta_fill_corruption(
                layout.counter_block_index(addr), block
            )
        detected = False
        note = ""
        try:
            self._clean_read(addr)
            note = "corruption read back without a violation"
        except IntegrityViolation as exc:
            detected = True
            note = str(exc)
        finally:
            handle.undo()
        recovered = self._control_read(addr)
        self._record(
            index,
            site,
            handle.description,
            detected,
            ok=detected and recovered,
            note=note if detected else note or "undetected",
        )

    def _drop_site(self, index: int, addr: int) -> None:
        stale = self.expected[addr]
        new_payload = f"drop:{index}".encode()
        handle = self.injector.arm_write_drop(addr)
        self.proc.write_through(addr, new_payload)
        self.proc.drain_writes()
        violation = False
        stale_served = False
        try:
            result = self._clean_read(addr)
            stale_served = result.data[: len(stale)] == stale
        except IntegrityViolation:
            violation = True
        handle.undo()
        # Repair: rewrite the architectural value through the normal path.
        self.proc.write_through(addr, stale)
        self.proc.drain_writes()
        self.proc.mee.flush_metadata_cache(self.proc.cycle)
        recovered = self._control_read(addr)
        self._record(
            index,
            FaultSite.WQ_DROP,
            handle.description,
            detected=violation,
            # A dropped posted write is an availability fault: expected to
            # be architecturally silent (stale data, no violation).
            ok=handle.fired and not violation and stale_served and recovered,
            note="silent stale read (by design)" if stale_served else "anomaly",
        )

    def _reorder_site(self, index: int, addrs: list[int]) -> None:
        handle = self.injector.arm_write_reorder()
        payloads = {}
        for j, addr in enumerate(addrs):
            payloads[addr] = f"ro:{index}:{j}".encode()
            self.proc.write_through(addr, payloads[addr])
        self.proc.drain_writes()
        self.expected.update(payloads)
        self.proc.mee.flush_metadata_cache(self.proc.cycle)
        violation = False
        correct = True
        try:
            for addr in addrs:
                result = self._clean_read(addr)
                if result.data[: len(payloads[addr])] != payloads[addr]:
                    correct = False
        except IntegrityViolation:
            violation = True
        handle.undo()
        self._record(
            index,
            FaultSite.WQ_REORDER,
            handle.description,
            detected=violation,
            # Service order is a timing property: must be invisible.
            ok=not violation and correct,
            note="reorder architecturally invisible" if correct else "anomaly",
        )

    # -- the sweep ---------------------------------------------------------

    def run(self, sites: int) -> CampaignReport:
        self.control_sweep()
        kinds = list(PROTECTED_SITES) + list(QUEUE_SITES)
        for index in range(sites):
            site = kinds[index % len(kinds)]
            addr = self.rng.choice(self.addrs)
            if site is FaultSite.WQ_DROP:
                self._drop_site(index, addr)
            elif site is FaultSite.WQ_REORDER:
                others = self.rng.sample(self.addrs, k=min(3, len(self.addrs)))
                self._reorder_site(index, others)
            else:
                self._protected_site(index, site, addr)
        self.control_sweep()
        self.injector.detach()
        return self.report


def run_campaign(
    preset: str = "sct", *, sites: int = 200, seed: int = 2024, pages: int = 12
) -> CampaignReport:
    """Sweep ``sites`` seeded fault injections against one preset."""
    if sites <= 0:
        raise ValueError("sites must be positive")
    return _Campaign(preset, seed=seed, pages=pages).run(sites)


def run_all_campaigns(
    *, sites: int = 200, seed: int = 2024
) -> dict[str, CampaignReport]:
    return {name: run_campaign(name, sites=sites, seed=seed) for name in preset_names()}


def campaign_figure_result(reports: dict[str, CampaignReport]) -> FigureResult:
    """Render campaign reports as the detection-coverage matrix."""
    result = FigureResult(
        figure="Fault campaign",
        title="Tamper-detection coverage by preset and fault site",
        notes=(
            "protected-state corruptions must be 100% detected; wq-drop is "
            "an availability fault (silent by design), wq-reorder must be "
            "architecturally invisible"
        ),
    )
    for preset, report in reports.items():
        for site in PROTECTED_SITES:
            injected = report.injected(site)
            if injected:
                result.add(
                    f"{preset}: {site.value} detected",
                    f"{report.detected(site)}/{injected}",
                    "all",
                )
        for site in QUEUE_SITES:
            injected = report.injected(site)
            if injected:
                result.add(
                    f"{preset}: {site.value} graceful",
                    f"{report.ok_count(site)}/{injected}",
                    "all",
                )
        result.add(
            f"{preset}: false positives",
            report.false_positives,
            0,
            f"of {report.control_reads} control reads",
        )
    return result
