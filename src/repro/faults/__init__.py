"""Deterministic fault injection for the secure-processor model.

The paper's trust argument rests on the metadata machinery *detecting*
off-chip tampering; this package provides the adversarial counterpart to
the happy-path simulator: a seeded fault-injection engine
(:mod:`repro.faults.injector`) whose hooks are threaded through the
memory system (DRAM, memory controller, caches) and the security engine
(counters, trees, metadata fills), plus a campaign driver
(:mod:`repro.faults.campaign`) that sweeps hundreds of injection sites
per machine preset and asserts that every corruption of protected state
raises :class:`~repro.secmem.engine.IntegrityViolation`.
"""

from repro.faults.campaign import (
    CampaignReport,
    SiteOutcome,
    campaign_figure_result,
    run_all_campaigns,
    run_campaign,
)
from repro.faults.hooks import FaultHook
from repro.faults.injector import FaultInjector, FaultSite

__all__ = [
    "CampaignReport",
    "FaultHook",
    "FaultInjector",
    "FaultSite",
    "SiteOutcome",
    "campaign_figure_result",
    "run_all_campaigns",
    "run_campaign",
]
