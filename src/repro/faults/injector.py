"""Seeded fault injection against a live :class:`SecureProcessor`.

The injector is the privileged adversary of the paper's threat model made
executable: it flips bits in DRAM-resident ciphertext, MACs, encryption
counters and integrity-tree nodes, corrupts metadata-cache fills, and
drops or reorders memory-controller write-queue entries.  Every mutation
is deterministic (all randomness flows from one seed) and reversible —
each injection returns an undo handle — so a campaign can sweep hundreds
of sites on one machine instance, checking detection after each.

The injector *is* a :class:`~repro.faults.hooks.FaultHook`: armed faults
(corrupt-on-fill, queue perturbations) fire from the hook callbacks the
memory layers invoke, while direct state corruptions apply immediately
through the tamper APIs of the engine, counter store and trees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.faults.hooks import FaultHook
from repro.proc.processor import SecureProcessor
from repro.utils.rng import DeterministicRng, derive_rng


class FaultSite(enum.Enum):
    """Where a fault lands (Section IV's metadata taxonomy + the MC)."""

    DATA_BIT = "data-bit"  # ciphertext block in DRAM
    MAC_BIT = "mac-bit"  # stored MAC word
    COUNTER = "counter"  # encryption-counter state
    TREE_NODE = "tree-node"  # integrity-tree node block
    META_FILL = "meta-fill"  # counter corrupted on metadata-cache fill
    WQ_DROP = "wq-drop"  # write-queue entry lost before service
    WQ_REORDER = "wq-reorder"  # drain burst serviced out of order


# Corruptions of protected state: the integrity machinery MUST detect
# every one of these on the next read.  Queue faults perturb ordering /
# availability instead and are checked for graceful degradation.
PROTECTED_SITES = (
    FaultSite.DATA_BIT,
    FaultSite.MAC_BIT,
    FaultSite.COUNTER,
    FaultSite.TREE_NODE,
    FaultSite.META_FILL,
)
QUEUE_SITES = (FaultSite.WQ_DROP, FaultSite.WQ_REORDER)


@dataclass
class InjectionHandle:
    """One injected (or armed) fault and how to take it back."""

    site: FaultSite
    description: str
    fired: bool = True
    _undo: Callable[[], None] | None = None

    def undo(self) -> None:
        """Restore the corrupted state (or disarm an unfired fault)."""
        if self._undo is not None:
            self._undo()
            self._undo = None


@dataclass
class InjectorStats:
    dram_accesses: int = 0
    cache_fills: int = 0
    counter_increments: int = 0
    meta_fetches: int = 0
    injected: dict[FaultSite, int] = field(default_factory=dict)

    def count(self, site: FaultSite) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1


class FaultInjector(FaultHook):
    """Deterministic fault-injection engine bound to one processor."""

    def __init__(self, proc: SecureProcessor, *, seed: int = 0) -> None:
        self.proc = proc
        self.mee = proc.mee
        self.rng: DeterministicRng = derive_rng(seed, "fault-injector")
        self.stats = InjectorStats()
        # Armed (deferred) faults, consumed by hook callbacks.
        self._meta_fill_faults: dict[int, InjectionHandle] = {}
        self._meta_fill_actions: dict[int, Callable[[], None]] = {}
        self._drop_blocks: dict[int, InjectionHandle] = {}
        self._reorder_next: InjectionHandle | None = None
        self.mee.install_fault_hook(self)

    def detach(self) -> None:
        """Unhook from every layer (armed faults are discarded)."""
        self.mee.install_fault_hook(None)

    # ------------------------------------------------------------------
    # Immediate corruptions (DRAM-resident state)
    # ------------------------------------------------------------------

    def flip_data_bit(self, addr: int, bit: int | None = None) -> InjectionHandle:
        """Flip one ciphertext bit of the block at ``addr``."""
        if bit is None:
            bit = self.rng.randrange(8 * 64)
        self.mee.tamper_flip_data_bit(addr, bit)
        self.stats.count(FaultSite.DATA_BIT)
        return InjectionHandle(
            site=FaultSite.DATA_BIT,
            description=f"data bit {bit} @ {addr:#x}",
            _undo=lambda: self.mee.tamper_flip_data_bit(addr, bit),
        )

    def flip_mac_bit(self, addr: int, bit: int | None = None) -> InjectionHandle:
        """Flip one bit of the stored MAC of the block at ``addr``."""
        if bit is None:
            bit = self.rng.randrange(8 * 8)
        self.mee.tamper_flip_mac_bit(addr, bit)
        self.stats.count(FaultSite.MAC_BIT)
        return InjectionHandle(
            site=FaultSite.MAC_BIT,
            description=f"MAC bit {bit} @ {addr:#x}",
            _undo=lambda: self.mee.tamper_flip_mac_bit(addr, bit),
        )

    def corrupt_counter(self, block: int, delta: int | None = None) -> InjectionHandle:
        """Perturb the DRAM-resident encryption counter of a data block."""
        if not delta:
            delta = 1 + self.rng.randrange(7)
        counters = self.mee.counters
        old = counters.tamper_counter(block, 0)
        counters.tamper_counter(block, old + delta)
        self.stats.count(FaultSite.COUNTER)
        return InjectionHandle(
            site=FaultSite.COUNTER,
            description=f"counter of block {block} += {delta}",
            _undo=lambda: counters.tamper_counter(block, old),
        )

    def corrupt_tree_node(
        self, level: int, index: int, slot: int, delta: int | None = None
    ) -> InjectionHandle:
        """Perturb one stored word of an integrity-tree node block."""
        if not delta:
            delta = 1 + self.rng.randrange(7)
        tree = self.mee.tree
        old = tree.tamper_node(level, index, slot, 0)
        tree.tamper_node(level, index, slot, old + delta)
        self.stats.count(FaultSite.TREE_NODE)
        return InjectionHandle(
            site=FaultSite.TREE_NODE,
            description=f"tree L{level}[{index}] slot {slot} += {delta}",
            _undo=lambda: tree.tamper_node(level, index, slot, old),
        )

    # ------------------------------------------------------------------
    # Armed corruptions (fire from hook callbacks)
    # ------------------------------------------------------------------

    def arm_meta_fill_corruption(
        self, cb_index: int, block: int, delta: int | None = None
    ) -> InjectionHandle:
        """Corrupt ``block``'s counter the next time counter block
        ``cb_index`` is fetched from memory (a corrupted cache fill)."""
        if not delta:
            delta = 1 + self.rng.randrange(7)
        counters = self.mee.counters
        handle = InjectionHandle(
            site=FaultSite.META_FILL,
            description=f"fill of counter block {cb_index} corrupts block {block}",
            fired=False,
        )
        undo_state: dict[str, int] = {}

        def apply() -> None:
            undo_state["old"] = counters.tamper_counter(block, 0)
            counters.tamper_counter(block, undo_state["old"] + delta)
            handle.fired = True
            self.stats.count(FaultSite.META_FILL)

        def undo() -> None:
            self._meta_fill_faults.pop(cb_index, None)
            self._meta_fill_actions.pop(cb_index, None)
            if "old" in undo_state:
                counters.tamper_counter(block, undo_state["old"])

        handle._undo = undo
        self._meta_fill_faults[cb_index] = handle
        self._meta_fill_actions[cb_index] = apply
        return handle

    def arm_write_drop(self, addr: int) -> InjectionHandle:
        """Lose the pending write of ``addr`` at the next drain burst.

        Models a posted write dropped before it reaches the encryption
        pipeline: both the queue entry and the pending plaintext vanish,
        so the block silently keeps its previous architectural value.
        """
        block = addr - addr % 64
        handle = InjectionHandle(
            site=FaultSite.WQ_DROP,
            description=f"drop queued write @ {block:#x}",
            fired=False,
            _undo=lambda: self._drop_blocks.pop(block, None),
        )
        self._drop_blocks[block] = handle
        return handle

    def arm_write_reorder(self) -> InjectionHandle:
        """Shuffle the service order of the next drain burst."""
        handle = InjectionHandle(
            site=FaultSite.WQ_REORDER,
            description="reorder next drain burst",
            fired=False,
            _undo=self._disarm_reorder,
        )
        self._reorder_next = handle
        return handle

    def _disarm_reorder(self) -> None:
        self._reorder_next = None

    # ------------------------------------------------------------------
    # FaultHook callbacks
    # ------------------------------------------------------------------

    def on_dram_access(self, addr: int, now: int, *, is_write: bool) -> None:
        self.stats.dram_accesses += 1

    def on_cache_fill(self, cache_name: str, block_addr: int) -> None:
        self.stats.cache_fills += 1

    def on_counter_increment(self, block: int) -> None:
        self.stats.counter_increments += 1

    def on_meta_fetch(self, kind: str, level: int, index: int) -> None:
        self.stats.meta_fetches += 1
        if kind == "counter":
            action = self._meta_fill_actions.pop(index, None)
            if action is not None:
                self._meta_fill_faults.pop(index, None)
                action()

    def on_write_drain(self, entries: list) -> list:
        if self._reorder_next is not None:
            handle = self._reorder_next
            self._reorder_next = None
            self.rng.shuffle(entries)
            handle.fired = True
            self.stats.count(FaultSite.WQ_REORDER)
        if self._drop_blocks:
            kept = []
            for entry in entries:
                handle = self._drop_blocks.pop(entry.addr, None)
                if handle is None:
                    kept.append(entry)
                else:
                    # The write is lost before encryption: discard the
                    # pending plaintext so nothing forwards it later.
                    self.mee._pending_plain.pop(entry.addr, None)
                    handle.fired = True
                    self.stats.count(FaultSite.WQ_DROP)
            entries = kept
        return entries
