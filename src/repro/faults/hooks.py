"""The observer protocol threaded through the memory and security layers.

``repro.mem`` and ``repro.secmem`` components each carry a ``fault_hook``
attribute (``None`` by default, so the hot paths pay one attribute test).
:meth:`~repro.secmem.engine.MemoryEncryptionEngine.install_fault_hook`
wires a single hook object into all of them at once.  The lower layers
never import this module — any object with these methods works — but
:class:`FaultHook` is the canonical base class: subclass it and override
the events you care about.

Events
------

``on_dram_access(addr, now, is_write)``
    Every DRAM block access (data, counters, MACs, tree nodes).

``on_write_drain(entries) -> entries``
    A memory-controller drain burst is about to service ``entries``
    (list of ``WriteQueueEntry``).  Return the (possibly reordered or
    shortened) list actually serviced — the drop/reorder fault surface.

``on_cache_fill(cache_name, block_addr)``
    A set-associative cache filled a block on a miss.

``on_counter_increment(block)``
    An encryption counter is about to be bumped for a serviced write.

``on_meta_fetch(kind, level, index)``
    The engine fetched metadata from memory and is about to verify it:
    ``kind`` is ``"node"`` (tree node ``level``/``index``) or
    ``"counter"`` (counter block ``index``).  Corrupting state here
    models a corrupted metadata-cache fill.
"""

from __future__ import annotations


class FaultHook:
    """No-op base observer; subclass and override selectively."""

    #: Component-graph slot this instrument occupies (``repro.core``).
    instrument_slot = "fault_hook"

    def on_dram_access(self, addr: int, now: int, *, is_write: bool) -> None:
        """One DRAM access is being performed."""

    def on_write_drain(self, entries: list) -> list:
        """A drain burst is about to service ``entries``; return the list
        to actually service (same list for a no-op)."""
        return entries

    def on_cache_fill(self, cache_name: str, block_addr: int) -> None:
        """A cache filled ``block_addr`` on a miss."""

    def on_counter_increment(self, block: int) -> None:
        """The encryption counter of data block ``block`` is being bumped."""

    def on_meta_fetch(self, kind: str, level: int, index: int) -> None:
        """Fetched metadata is about to be verified."""
