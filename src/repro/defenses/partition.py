"""Data-cache partitioning stand-ins (shown ineffective, Section IX-A).

Way/set partitioning of the data caches (DAWG, CATalyst) blocks data-cache
contention channels but leaves the metadata cache and integrity tree fully
shared at the memory controller — which is where MetaLeak lives.  The
strongest version of data-cache isolation is physically separate LLCs,
i.e. placing attacker and victim on different sockets; the covert channel
still works there (Section VI-A), which is what the ablation benchmark
demonstrates.
"""

from __future__ import annotations

from repro.config import MIB, SecureProcessorConfig


def partitioned_llc_config(
    protected_size: int = 128 * MIB, **overrides: object
) -> SecureProcessorConfig:
    """Fully disjoint LLCs for attacker and victim: a 2-socket machine.

    Stronger than any way-partitioning scheme — there is literally no
    shared data cache — yet the metadata channel persists.
    """
    return SecureProcessorConfig.sct_default(
        protected_size=protected_size,
        cores=4,
        sockets=2,
        functional_crypto=False,
        **overrides,
    )
