"""Figure-18 study: MetaLeak-style eviction vs a MIRAGE randomized cache.

MIRAGE defeats eviction-*set* construction (Prime+Probe), but MetaLeak-T
only needs the target metadata block gone from the cache.  With global
random eviction, every fill evicts a uniformly random resident block, so
``P(target evicted after N fills) = 1 - (1 - 1/capacity)^N`` — thousands of
arbitrary accesses suffice, no eviction set required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.mirage import MirageCache
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class EvictionPoint:
    accesses: int
    accuracy: float


def mirage_eviction_curve(
    access_counts: tuple[int, ...] = (1000, 3000, 5000, 7000, 9000, 12000),
    *,
    trials: int = 40,
    cache_size: int = 256 * 1024,
    base_ways: int = 8,
    extra_ways: int = 6,
    seed: int = 3,
) -> list[EvictionPoint]:
    """Probability the target block is evicted after N random accesses.

    Mirrors the paper's experiment against the MIRAGE open-source model:
    default secure configuration, two skews, 8+6 ways per skew, 256 KiB.
    """
    rng = derive_rng(seed, "mirage-study")
    points = []
    for accesses in access_counts:
        evicted = 0
        for trial in range(trials):
            cache = MirageCache(
                cache_size,
                base_ways=base_ways,
                extra_ways=extra_ways,
                seed=seed * 1000 + trial,
            )
            # Warm the data store to capacity (a cold cache absorbs fills
            # without evicting anything).
            for _ in range(cache.data_capacity + 64):
                cache.access(rng.randrange(1, 1 << 34) * 64)
            target = 0x123400
            cache.access(target)
            for _ in range(accesses):
                cache.access(rng.randrange(1, 1 << 34) * 64)
            if not cache.contains(target):
                evicted += 1
        points.append(EvictionPoint(accesses=accesses, accuracy=evicted / trials))
    return points
