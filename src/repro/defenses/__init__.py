"""Defense studies (Sections IX-B and IX-C).

* :mod:`repro.defenses.mirage_study` — eviction probability under a
  MIRAGE-style randomized cache (Figure 18): randomization stops
  conflict-based *set* attacks but cannot stop an attacker that only needs
  the target evicted eventually.
* :mod:`repro.defenses.isolation` — per-domain isolated integrity trees,
  the paper's suggested direction: removes the shared-node channel.
* :mod:`repro.defenses.partition` — data-cache partitioning/isolation
  stand-ins, shown *not* to help because the channel lives in the metadata
  path, not the data caches.
"""

from repro.defenses.isolation import isolated_tree_config, assign_domains
from repro.defenses.mirage_study import mirage_eviction_curve
from repro.defenses.partition import partitioned_llc_config

__all__ = [
    "isolated_tree_config",
    "assign_domains",
    "mirage_eviction_curve",
    "partitioned_llc_config",
]
