"""Per-domain isolated integrity trees (the Section IX-C mitigation).

Mutually distrusting domains get disjoint trees (and disjoint node address
spaces), so no non-root tree node is ever shared: MetaLeak-T's mReload of
an attacker probe can no longer observe a victim-domain node, and
MetaLeak-C's counters are never shared.  The cost discussion (dynamic
per-domain trees, re-hashing on growth) is in the paper; this module
provides the functional mechanism for the ablation benchmark.
"""

from __future__ import annotations

from repro.config import MIB, SecureProcessorConfig
from repro.proc.processor import SecureProcessor


def isolated_tree_config(
    protected_size: int = 128 * MIB, **overrides: object
) -> SecureProcessorConfig:
    """An SCT machine with per-domain isolated trees enabled."""
    return SecureProcessorConfig.sct_default(
        protected_size=protected_size,
        isolated_trees=True,
        functional_crypto=False,
        **overrides,
    )


def assign_domains(
    proc: SecureProcessor, frames_by_domain: dict[int, list[int]]
) -> None:
    """Tag page frames with their security domains."""
    for domain, frames in frames_by_domain.items():
        for frame in frames:
            proc.mee.set_page_domain(frame, domain)
