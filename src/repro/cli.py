"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info [--preset sct|ht|sgx]``
    Print the machine configuration and metadata layout of a preset.

``list``
    List every regenerable figure/ablation and its paper reference.

``figures [NAME ...] [--quick] [--out DIR]``
    Regenerate paper figures (all by default).  ``--quick`` runs each at
    reduced scale for a fast sanity pass; ``--out`` also writes the
    tables to files.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis.report import FigureResult, format_result

_FIGURE_DOC = {
    "fig6": "Fig. 6  — access-path latency bands (SCT)",
    "fig7": "Fig. 7  — SGX latency profile (SIT)",
    "fig8": "Fig. 8  — counter-overflow latency bands",
    "fig11": "Fig. 11 — MetaLeak-T covert channel",
    "fig12": "Fig. 12 — resolution/coverage vs tree level",
    "fig14": "Fig. 14 — MetaLeak-C covert channel",
    "fig15": "Fig. 15 — libjpeg image stealing",
    "fig16": "Fig. 16 — RSA exponent recovery",
    "fig17": "Fig. 17 — mbedTLS shift/sub detection",
    "fig18": "Fig. 18 — MIRAGE randomized-cache study",
    "ablation_counters": "Abl. A1 — counter-scheme overflow scope",
    "ablation_policy": "Abl. A2 — lazy vs eager tree updates",
    "ablation_defenses": "Abl. A3 — defenses vs MetaLeak-T",
    "ablation_trees": "Abl. A4 — MetaLeak-T across HT/SCT/SIT",
    "ablation_mac": "Abl. A5 — MAC placement (Synergy vs classical)",
    "ablation_split": "Abl. A6 — combined vs split metadata caches",
}

# Reduced-scale keyword arguments for --quick runs.
_QUICK_KWARGS = {
    "fig6": {"samples": 10},
    "fig7": {"samples": 10},
    "fig8": {"cycles": 1},
    "fig11": {"bits": 120},
    "fig12": {"rounds": 8},
    "fig14": {"symbols": 12},
    "fig15": {"images": ("circles",), "size": 16, "include_metaleak_c": False},
    "fig16": {"exponent_bits": 48},
    "fig17": {"secret_bits": 48},
    "fig18": {"access_counts": (2000, 8000), "trials": 8},
    "ablation_policy": {"bits": 16},
    "ablation_defenses": {"bits": 16},
}


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.config import SecureProcessorConfig
    from repro.proc import SecureProcessor

    presets = {
        "sct": SecureProcessorConfig.sct_default,
        "ht": SecureProcessorConfig.ht_default,
        "sgx": SecureProcessorConfig.sgx_default,
    }
    config = presets[args.preset]()
    proc = SecureProcessor(config)
    print(f"preset          : {config.name}")
    print(f"cores/sockets   : {config.cores}/{config.sockets}")
    print(f"integrity tree  : {config.tree.kind.value} arities={config.tree.arities}")
    print(f"counter scheme  : {config.counters.scheme.value}")
    print(f"update policy   : {config.tree_update_policy.value}")
    print(f"metadata cache  : {config.metadata_cache.size_bytes // 1024} KiB, "
          f"{config.metadata_cache.ways}-way, {config.metadata_cache.replacement}")
    print()
    print(proc.layout.describe())
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, doc in _FIGURE_DOC.items():
        print(f"{name:<20} {doc}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import ALL_FIGURES

    names = args.names or list(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {unknown}; see 'python -m repro list'",
              file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name in names:
        kwargs = _QUICK_KWARGS.get(name, {}) if args.quick else {}
        started = time.time()
        try:
            result: FigureResult = ALL_FIGURES[name](**kwargs)
        except Exception as error:  # surface, keep going
            print(f"!! {name} failed: {error}", file=sys.stderr)
            failures += 1
            continue
        text = format_result(result)
        print(text)
        print(f"   [{time.time() - started:.1f}s]\n")
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MetaLeak reproduction: secure-processor metadata "
        "side channels (ISCA 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a machine preset")
    info.add_argument("--preset", choices=("sct", "ht", "sgx"), default="sct")
    info.set_defaults(func=_cmd_info)

    listing = commands.add_parser("list", help="list regenerable figures")
    listing.set_defaults(func=_cmd_list)

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="*", help="figure names (default: all)")
    figures.add_argument("--quick", action="store_true", help="reduced scale")
    figures.add_argument("--out", help="directory for result tables")
    figures.set_defaults(func=_cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
