"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info [--preset sct|ht|sgx]``
    Print the machine configuration and metadata layout of a preset.

``list``
    List every regenerable figure/ablation and its paper reference.

``figures [NAME ...] [--quick] [--out DIR] [--jobs N] [--no-cache]
[--campaign-db FILE] [--timeout S] [--retries N] [--manifest FILE]
[--resume] [--fail-fast]``
    Regenerate paper figures (all by default) through the crash-isolated
    campaign engine: figures fan out across ``--jobs`` worker processes
    (0 = one per CPU core), each gets a wall-clock budget and bounded
    retries, a crashing or hung worker is reaped and its figure retried
    on a fresh worker, and successful results are memoised in the
    campaign DB so an unchanged re-run is served from cache.  Completed
    figures are also checkpointed to a JSON manifest so ``--resume``
    reruns only what failed.

``faults [--preset sct|ht|sgx|all] [--sites N] [--seed S] [--jobs N]
[--no-cache] [--campaign-db FILE] [--timeout S] [--retries N]``
    Sweep seeded fault-injection campaigns against the functional-crypto
    machines (one campaign task per preset, sharded across ``--jobs``
    workers) and print the tamper-detection coverage matrix.  Exits
    non-zero unless every protected-state corruption was detected with
    zero false positives.

``channel [--bits N] [--noise READS] [--votes V] [--retries R]
[--budget CYCLES] [--gate ACC] [--seed S]``
    One ECC-framed covert transmission under a conflicting co-runner:
    the noisy-channel smoke test.  Prints raw vs post-ECC accuracy,
    goodput and degradation flags; exits non-zero if the framed payload
    accuracy falls below ``--gate``.

``trace --victim NAME [--secret a|b] [--seed S] [--out FILE]
[--chrome FILE] [--capacity N]``
    Run one leakcheck victim under the structured event tracer and
    export the metadata event stream as JSONL and/or Chrome
    ``trace_event`` JSON (loadable in Perfetto / chrome://tracing).
    Prints per-kind event counts and the machine counter snapshot.

``leakcheck --victim NAME [--seed S] [--seeds N] [--alpha P]
[--json FILE] [--expect leaky|clean] [--jobs N] [--no-cache]
[--campaign-db FILE] [--timeout S] [--retries N]``
    Automated leakage detection: run the victim twice under paired
    secrets with identical public inputs and diff the metadata event
    streams (count + KS tests per event kind).  ``--seeds N`` sweeps N
    consecutive seeds (sharded across ``--jobs`` workers); ``--expect``
    requires every swept seed to match and turns the verdict into an
    exit code for CI gating.

``bench [SCENARIO ...] [--out DIR] [--seed S] [--quick] [--repeats N]
[--compare DIR] [--threshold F] [--min-ratio X] [--list] [--jobs N]
[--no-cache] [--campaign-db FILE] [--timeout S] [--retries N]``
    Run the benchmark scenario suite (all scenarios by default) and
    write one ``BENCH_<scenario>.json`` per scenario.  Each scenario
    runs ``--repeats`` times and reports the fastest wall time (the
    simulated columns are asserted identical across repeats).
    ``--compare`` checks throughput against baseline JSONs in a
    directory, printing the old→new ratio per scenario, and exits
    non-zero on a regression beyond ``--threshold``; ``--min-ratio X``
    additionally requires every ``steady_*`` scenario to reach X times
    its baseline throughput (the batching speedup gate).  Note that
    cached bench results replay the stored measurement; pass
    ``--no-cache`` when you want fresh host-throughput numbers.

``serve [--host H] [--port P] [--capacity N] [--concurrency N]
[--jobs N] [--timeout S] [--retries N] [--backoff S] [--drain-grace S]
[--campaign-db FILE] [--no-spans]``
    Run the fault-tolerant leakcheck job service: an HTTP server that
    accepts probe/leakcheck/bench jobs as JSON, journals every accepted
    job in the campaign DB before acknowledging it (jobs survive
    ``kill -9`` and resume on restart), dedups repeat submissions via
    the campaign result cache, sheds overload with 429 +
    ``Retry-After``, and drains gracefully on SIGTERM/SIGINT (exit 0).
    See ``docs/service.md``.

``spans {report,export,tail} [SOURCE]``
    Fleet telemetry over recorded span logs (docs/observability.md).
    SOURCE is a span JSONL file (from ``--spans``) or a campaign DB
    (``repro serve`` persists job traces there); default is the
    resolved campaign DB.  ``report`` prints per-kind latency
    percentiles, outcome/retry/straggler and queue-wait summaries
    (``--strict`` validates the log and gates CI); ``export`` rewrites
    a trace as JSONL / Chrome ``trace_event`` / Prometheus text;
    ``tail`` prints the most recent spans.

``service-load --port P [-n N] [--concurrency N] [--kind K]
[--spec JSON] [--same-seed] [--json FILE]``
    Load-generate against a running service: submit N jobs, honour 429
    back-pressure, poll all jobs to a terminal state, and report
    sustained jobs/sec.  Exits non-zero unless every job reached
    ``done``.

``profile (--victim NAME | --scenario NAME) [--preset sct|ht|sgx]
[--seed S] [--quick] [--collapsed FILE] [--prom FILE] [--min-share F]``
    Run one victim — or one processor-backed bench scenario — under the
    cycle-attribution profiler and print the hierarchical
    where-did-the-cycles-go report (conservation-checked).  With the
    profiler attached the batch API takes the scalar reference path, so
    scenario profiles attribute the same event stream the benchmark
    simulates.  ``--collapsed`` exports flamegraph-ready collapsed
    stacks; ``--prom`` exports the counter registry in Prometheus text
    format.

``synth {generate,run,minimize,corpus,verify}``
    Attack-synthesis fuzzer (docs/synth.md).  ``generate`` prints seeded
    random IR programs; ``run`` fans a fuzz batch through the campaign
    engine against the leakcheck oracle and folds leaking programs into
    the persistent corpus (``--expect-leaky N`` turns the tally into a
    CI gate); ``minimize`` delta-debugs corpus finds (or a ``--program``
    JSON) into minimal witnesses per channel target; ``corpus`` prints
    per-(component, kind) coverage; ``verify`` re-runs checked-in
    witness files against the oracle and exits non-zero on any that
    went stale.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.analysis.report import format_result

#: Default campaign DB location; override per-invocation with
#: ``--campaign-db`` or globally with ``REPRO_CAMPAIGN_DB``.
_DEFAULT_CAMPAIGN_DB = ".repro-campaign.sqlite"

#: Default synth corpus location; override per-invocation with
#: ``--corpus`` or globally with ``REPRO_SYNTH_CORPUS``.
_DEFAULT_CORPUS = ".repro-corpus.sqlite"

_FIGURE_DOC = {
    "fig6": "Fig. 6  — access-path latency bands (SCT)",
    "fig7": "Fig. 7  — SGX latency profile (SIT)",
    "fig8": "Fig. 8  — counter-overflow latency bands",
    "fig11": "Fig. 11 — MetaLeak-T covert channel",
    "fig12": "Fig. 12 — resolution/coverage vs tree level",
    "fig14": "Fig. 14 — MetaLeak-C covert channel",
    "fig15": "Fig. 15 — libjpeg image stealing",
    "fig16": "Fig. 16 — RSA exponent recovery",
    "fig17": "Fig. 17 — mbedTLS shift/sub detection",
    "fig18": "Fig. 18 — MIRAGE randomized-cache study",
    "case_kvstore": "Case study — kvstore bucket recovery (MetaLeak-C)",
    "ablation_counters": "Abl. A1 — counter-scheme overflow scope",
    "ablation_policy": "Abl. A2 — lazy vs eager tree updates",
    "ablation_defenses": "Abl. A3 — defenses vs MetaLeak-T",
    "ablation_trees": "Abl. A4 — MetaLeak-T across HT/SCT/SIT",
    "ablation_mac": "Abl. A5 — MAC placement (Synergy vs classical)",
    "ablation_split": "Abl. A6 — combined vs split metadata caches",
    "sweep_ecc": "Sweep S6 — raw vs ECC-framed covert channels under noise",
    "leakcheck": "Leakcheck — automated paired-secret leakage detection matrix",
    "perf_attribution": "Perf — cycle attribution across access paths",
}

# Reduced-scale keyword arguments for --quick runs.
_QUICK_KWARGS = {
    "fig6": {"samples": 10},
    "fig7": {"samples": 10},
    "fig8": {"cycles": 1},
    "fig11": {"bits": 120},
    "fig12": {"rounds": 8},
    "fig14": {"symbols": 12},
    "fig15": {"images": ("circles",), "size": 16, "include_metaleak_c": False},
    "fig16": {"exponent_bits": 48},
    "fig17": {"secret_bits": 48},
    "fig18": {"access_counts": (2000, 8000), "trials": 8},
    "case_kvstore": {"puts": 4, "buckets": 3},
    "ablation_policy": {"bits": 16},
    "ablation_defenses": {"bits": 16},
    "sweep_ecc": {"intensities": (0, 2), "bits": 16, "include_c": False},
    "leakcheck": {"victims": ("rsa", "const")},
    "perf_attribution": {"samples": 5},
}


# -- shared option validation (consistent across subcommands) -------------


def _jobs_count(value: str) -> int:
    """``--jobs``: positive worker count; 0 means one per CPU core."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be an integer, got {value!r}"
        ) from None
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = one worker per CPU core), got {jobs}"
        )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def _retries_count(value: str) -> int:
    """``--retries``: a non-negative integer."""
    try:
        retries = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--retries must be an integer, got {value!r}"
        ) from None
    if retries < 0:
        raise argparse.ArgumentTypeError(
            f"--retries must be non-negative, got {retries}"
        )
    return retries


def _timeout_seconds(value: str) -> float:
    """``--timeout``: a positive number of seconds."""
    try:
        timeout = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--timeout must be a number of seconds, got {value!r}"
        ) from None
    if not timeout > 0:
        raise argparse.ArgumentTypeError(
            f"--timeout must be positive, got {timeout!r}"
        )
    return timeout


def _positive_int(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {number}"
        )
    return number


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    """The campaign-engine flags shared by figures/faults/leakcheck/bench."""
    parser.add_argument(
        "--jobs", type=_jobs_count, default=1, metavar="N",
        help="worker processes (0 = one per CPU core; default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not serve results from the campaign DB (still records runs)",
    )
    parser.add_argument(
        "--campaign-db", metavar="FILE", default=None,
        help="persistent campaign DB path (default: env REPRO_CAMPAIGN_DB, "
        f"else OUT/campaign.sqlite when --out is given, else "
        f"{_DEFAULT_CAMPAIGN_DB})",
    )
    parser.add_argument(
        "--timeout", type=_timeout_seconds, default=None, metavar="S",
        help="wall-clock budget per task in seconds (default: none)",
    )
    parser.add_argument(
        "--retries", type=_retries_count, default=0, metavar="N",
        help="retry failed/crashed tasks up to N times with backoff",
    )
    parser.add_argument(
        "--spans", metavar="FILE", default=None,
        help="trace this invocation and export the span tree as JSONL "
        "(plus FILE.chrome.json and FILE.prom; default: env REPRO_SPANS)",
    )


def _resolve_campaign_db(
    args: argparse.Namespace,
    out_dir: str | os.PathLike[str] | None = None,
) -> str | pathlib.Path:
    """``--campaign-db`` > ``REPRO_CAMPAIGN_DB`` > OUT dir > cwd default."""
    if args.campaign_db:
        return args.campaign_db
    env = os.environ.get("REPRO_CAMPAIGN_DB")
    if env:
        return env
    if out_dir is not None:
        return pathlib.Path(out_dir) / "campaign.sqlite"
    return _DEFAULT_CAMPAIGN_DB


def _campaign_engine(
    args: argparse.Namespace,
    *,
    out_dir: str | os.PathLike[str] | None = None,
    reseed_base: int | None = None,
    manifest_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    fail_fast: bool = False,
):
    from repro.campaign import CampaignEngine

    return CampaignEngine(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        reseed_base=reseed_base,
        db=_resolve_campaign_db(args, out_dir),
        use_cache=not args.no_cache,
        manifest_path=manifest_path,
        resume=resume,
        fail_fast=fail_fast,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.config import preset_config
    from repro.proc import SecureProcessor

    config = preset_config(args.preset)
    proc = SecureProcessor(config)
    print(f"preset          : {config.name}")
    print(f"cores/sockets   : {config.cores}/{config.sockets}")
    print(f"integrity tree  : {config.tree.kind.value} arities={config.tree.arities}")
    print(f"counter scheme  : {config.counters.scheme.value}")
    print(f"update policy   : {config.tree_update_policy.value}")
    print(f"metadata cache  : {config.metadata_cache.size_bytes // 1024} KiB, "
          f"{config.metadata_cache.ways}-way, {config.metadata_cache.replacement}")
    print()
    print(proc.layout.describe())
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, doc in _FIGURE_DOC.items():
        print(f"{name:<20} {doc}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import ALL_FIGURES
    from repro.campaign import CampaignTask
    from repro.perf import prometheus_text

    names = args.names or list(ALL_FIGURES)
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure(s): {unknown}; see 'python -m repro list'",
              file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = args.manifest
    if manifest_path is None and out_dir:
        manifest_path = out_dir / "manifest.json"
    if args.resume and manifest_path is None:
        print("--resume needs a manifest: pass --manifest FILE or --out DIR",
              file=sys.stderr)
        return 2

    tasks = [
        CampaignTask(
            name=name,
            fn=ALL_FIGURES[name],
            kwargs=_QUICK_KWARGS.get(name, {}) if args.quick else {},
        )
        for name in names
    ]

    def _on_record(record) -> None:
        if record.cached and record.result is None:
            print(f"-- {record.name}: ok from manifest (resume)\n")
            return
        if record.status == "skipped":
            print(f"-- {record.name}: {record.error}\n")
            return
        if not record.ok:
            print(f"!! {record.name} failed: {record.error}", file=sys.stderr)
            return
        text = format_result(record.result)
        print(text)
        if record.cached:
            print("   [campaign cache]\n")
        else:
            print(f"   [{record.elapsed:.1f}s]\n")
        if out_dir:
            (out_dir / f"{record.name}.txt").write_text(text + "\n")

    engine = _campaign_engine(
        args,
        out_dir=out_dir,
        reseed_base=args.seed,
        manifest_path=manifest_path,
        resume=args.resume,
        fail_fast=args.fail_fast,
    )
    report = engine.run(tasks, on_record=_on_record)
    print(report.summary())
    print(engine.summary_line())
    if out_dir:
        (out_dir / "campaign_metrics.prom").write_text(
            prometheus_text(engine.registry, namespace="repro_campaign")
        )
    return 0 if report.status == "pass" else 1


def _cmd_channel(args: argparse.Namespace) -> int:
    from repro.attacks.covert import CovertChannelT
    from repro.attacks.framing import ReliableChannel
    from repro.attacks.noise import co_located_noise
    from repro.config import MIB, PAGE_SIZE, SecureProcessorConfig
    from repro.os import PageAllocator
    from repro.proc import SecureProcessor
    from repro.utils.rng import derive_rng

    rng = derive_rng(args.seed, "cli-channel")
    payload = [rng.randint(0, 1) for _ in range(args.bits)]
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(
            protected_size=128 * MIB, functional_crypto=False
        )
    )
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    channel = CovertChannelT(proc, allocator)
    if args.noise:
        channel.noise = co_located_noise(
            channel, allocator, reads_per_step=args.noise
        )
    raw = channel.transmit(payload)
    framed = ReliableChannel(channel).send(
        payload,
        max_retries=args.retries,
        votes=args.votes,
        budget=args.budget,
    )
    print(f"payload bits     : {args.bits}")
    print(f"noise reads/step : {args.noise}")
    print(f"raw accuracy     : {raw.accuracy:.4f}")
    print(f"raw wire BER     : {framed.raw_ber:.4f}")
    print(f"ECC accuracy     : {framed.payload_accuracy:.4f}")
    print(f"goodput          : {framed.goodput_bits_per_kilocycle:.4f} bits/kcycle")
    print(f"frames delivered : {framed.frames_delivered}/{len(framed.delivered)} "
          f"(retransmissions={framed.retransmissions}, "
          f"corrected bits={framed.corrected_bits})")
    if framed.degraded:
        print(f"degraded         : {', '.join(framed.degraded_reasons)}")
    if framed.payload_accuracy < args.gate:
        print(
            f"FAIL: ECC payload accuracy {framed.payload_accuracy:.4f} "
            f"below gate {args.gate}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignTask
    from repro.config import preset_names
    from repro.faults import campaign_figure_result, run_campaign

    if args.sites <= 0:
        raise ValueError(f"--sites must be a positive integer, got {args.sites}")
    presets = list(preset_names()) if args.preset == "all" else [args.preset]
    tasks = [
        CampaignTask(
            name=f"faults_{preset}",
            fn=run_campaign,
            kwargs={"preset": preset, "sites": args.sites, "seed": args.seed},
        )
        for preset in presets
    ]
    engine = _campaign_engine(args)
    batch = engine.run(tasks)
    reports = {
        preset: record.result
        for preset, record in zip(presets, batch.records)
        if record.ok
    }
    if reports:
        print(format_result(campaign_figure_result(reports)))
    print(engine.summary_line())
    for preset, record in zip(presets, batch.records):
        if not record.ok:
            print(f"!! {preset}: campaign task {record.status}: "
                  f"{record.error}", file=sys.stderr)
    all_detected = bool(reports) and all(
        report.fully_detected for report in reports.values()
    )
    for preset, report in reports.items():
        if not report.fully_detected:
            for outcome in report.failures():
                print(
                    f"!! {preset}: site {outcome.index} ({outcome.site.value}) "
                    f"{outcome.description}: {outcome.note}",
                    file=sys.stderr,
                )
    return 0 if all_detected and len(reports) == len(presets) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.config import SecureProcessorConfig
    from repro.leakcheck import get_victim
    from repro.proc import SecureProcessor
    from repro.trace import Tracer, write_chrome_trace, write_jsonl

    spec = get_victim(args.victim)
    secrets = spec.secrets(args.seed)
    secret = secrets[0] if args.secret == "a" else secrets[1]
    proc = SecureProcessor(
        SecureProcessorConfig.sct_default(functional_crypto=False)
    )
    tracer = Tracer(capacity=args.capacity)
    proc.attach_tracer(tracer)
    spec.run(proc, secret)
    events = tracer.events()
    print(f"victim={spec.name} secret={args.secret} seed={args.seed}: "
          f"{len(events)} events ({tracer.dropped} dropped)")
    for (component, kind), count in sorted(tracer.counts().items()):
        print(f"  {component:<18} {kind:<16} {count}")
    if args.out:
        written = write_jsonl(events, args.out)
        print(f"wrote {written} events to {args.out}")
    if args.chrome:
        write_chrome_trace(events, args.chrome)
        print(f"wrote Chrome trace_event JSON to {args.chrome}")
    snapshot = proc.registry.snapshot()
    print("counters (non-zero):")
    for path in sorted(snapshot):
        if snapshot[path]:
            print(f"  {path:<28} {snapshot[path]:g}")
    return 0


def _cmd_leakcheck(args: argparse.Namespace) -> int:
    import json as _json
    import pathlib as _pathlib

    from repro.campaign import CampaignTask
    from repro.leakcheck import list_victims, run_leakcheck

    if args.list:
        for spec in list_victims():
            print(f"{spec.name:<10} {spec.description}")
        return 0
    if args.victim is None:
        print("error: --victim is required (or --list to enumerate)",
              file=sys.stderr)
        return 2
    seeds = [args.seed + offset for offset in range(args.seeds)]
    tasks = [
        CampaignTask(
            name=f"leakcheck_{args.victim}_s{seed}",
            fn=run_leakcheck,
            kwargs={"victim": args.victim, "seed": seed, "alpha": args.alpha},
        )
        for seed in seeds
    ]
    engine = _campaign_engine(args)
    batch = engine.run(tasks)
    reports = []
    failed = False
    for seed, record in zip(seeds, batch.records):
        if not record.ok:
            failed = True
            print(f"!! seed {seed}: leakcheck task {record.status}: "
                  f"{record.error}", file=sys.stderr)
            continue
        reports.append(record.result)
        for line in record.result.summary_lines():
            print(line)
    if args.seeds > 1:
        print(engine.summary_line())
    if args.json and reports:
        if len(reports) == 1:
            _pathlib.Path(args.json).write_text(reports[0].to_json() + "\n")
        else:
            _pathlib.Path(args.json).write_text(
                _json.dumps([r.to_dict() for r in reports], indent=2,
                            sort_keys=True) + "\n"
            )
        print(f"wrote report to {args.json}")
    if args.expect is not None:
        expected_leaky = args.expect == "leaky"
        for report in reports:
            if report.leaky != expected_leaky:
                print(
                    f"FAIL: seed {report.seed}: expected {args.expect}, got "
                    f"{'leaky' if report.leaky else 'clean'}",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import math

    from repro.perf import bench

    if args.list:
        for name in bench.scenario_names():
            print(name)
        return 0
    if not (args.threshold > 0 and math.isfinite(args.threshold)):
        raise ValueError(
            f"--threshold must be a positive finite fraction, "
            f"got {args.threshold!r}"
        )
    if args.min_ratio is not None and not (
        args.min_ratio > 0 and math.isfinite(args.min_ratio)
    ):
        raise ValueError(
            f"--min-ratio must be a positive finite multiple, "
            f"got {args.min_ratio!r}"
        )
    names = args.scenarios or bench.scenario_names()
    unknown = [name for name in names if name not in bench.scenario_names()]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; see 'python -m repro bench --list'"
        )
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.campaign import CampaignTask

    tasks = [
        CampaignTask(
            name=f"bench_{name}",
            fn=bench.run_scenario,
            kwargs={"name": name, "seed": args.seed, "quick": args.quick,
                    "repeats": args.repeats},
        )
        for name in names
    ]
    engine = _campaign_engine(args, out_dir=out_dir)
    batch = engine.run(tasks)
    results = []
    failed_tasks = False
    for name, record in zip(names, batch.records):
        if not record.ok:
            failed_tasks = True
            print(f"!! {name}: bench task {record.status}: {record.error}",
                  file=sys.stderr)
            continue
        result = record.result
        results.append(result)
        written = bench.write_result(result, out_dir)
        flags = "  (cached)" if record.cached else ""
        print(
            f"{name:<12} {result.accesses:>7} accesses  "
            f"{result.simulated_cycles:>10} cycles  "
            f"{result.sim_accesses_per_second:>10.0f} acc/s  "
            f"rss={result.peak_rss_kb} KB  -> {written}{flags}"
        )
    print(engine.summary_line())
    if failed_tasks:
        return 1
    if args.compare is None:
        return 0
    offenders = []
    for outcome in bench.compare(
        results, args.compare, threshold=args.threshold,
        min_ratio=args.min_ratio,
    ):
        print(f"compare {outcome.scenario:<12} {outcome.status:<12} "
              f"{outcome.detail}")
        if outcome.status == "regression":
            offenders.append(outcome)
    if offenders:
        named = ", ".join(
            f"{o.scenario} ({o.ratio:.2f}x)" if o.ratio is not None
            else o.scenario
            for o in offenders
        )
        print(
            f"FAIL: throughput gate vs {args.compare} "
            f"(allowed drop {args.threshold:.0%}"
            + (f", required steady_* speedup {args.min_ratio:.2f}x"
               if args.min_ratio is not None else "")
            + f") failed for: {named}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import LeakcheckService

    async def _serve() -> int:
        service = LeakcheckService(
            str(_resolve_campaign_db(args)),
            host=args.host,
            port=args.port,
            capacity=args.capacity,
            concurrency=args.concurrency,
            job_timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            engine_jobs=args.jobs,
            drain_grace=args.drain_grace,
            spans=not args.no_spans,
        )
        await service.start()
        loop = asyncio.get_running_loop()
        # SIGTERM/SIGINT start a graceful drain: stop admitting, let
        # running jobs finish (or checkpoint them), exit 0.  A second
        # signal is absorbed by the same idempotent handler, so an
        # impatient operator cannot corrupt the drain.
        for signo in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signo, service.begin_drain)
        print(
            f"leakcheck service listening on "
            f"http://{service.host}:{service.port} "
            f"(db={service.db_path}, capacity={service.capacity}, "
            f"workers={service.concurrency})",
            flush=True,
        )
        await service.wait_closed()
        service.db.close()
        if service.drain_report is not None:
            # One machine-parseable line per drain: what was
            # checkpointed, what was force-stopped, under what grace.
            print(service.drain_summary_line(), flush=True)
        print(service.summary_line())
        return 0

    return asyncio.run(_serve())


def _load_spans(
    source: str | os.PathLike[str], trace: str | None = None
) -> list[dict]:
    """Read schema-v1 span dicts from a JSONL file or a campaign DB.

    Detection is by content, not extension: SQLite files carry a fixed
    16-byte magic, anything else is treated as a JSONL span log.
    """
    from repro import obs

    path = pathlib.Path(source)
    if not path.exists():
        raise ValueError(f"span source not found: {path}")
    with open(path, "rb") as handle:
        magic = handle.read(16)
    if magic.startswith(b"SQLite format 3"):
        from repro.campaign import CampaignDB

        db = CampaignDB(str(path))
        try:
            return db.spans(trace)
        finally:
            db.close()
    spans = obs.read_spans_jsonl(path)
    if trace:
        spans = [s for s in spans if s.get("trace") == trace]
    return spans


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import fleet_prometheus_text, render_report, summarize

    source = args.source or str(_resolve_campaign_db(args))
    spans = _load_spans(source, getattr(args, "trace", None))
    if args.spans_command == "report":
        errors = obs.validate_spans(spans)
        print(render_report(summarize(spans), top=args.top))
        if errors:
            print(f"\nspan log problems ({len(errors)}):")
            for line in errors[:20]:
                print(f"  {line}")
            if args.strict:
                return 1
        elif args.strict and not spans:
            print("no spans recorded", file=sys.stderr)
            return 1
        return 0
    if args.spans_command == "export":
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        obs.write_spans_jsonl(spans, out)
        written = [str(out)]
        if args.chrome:
            obs.write_chrome_spans(spans, args.chrome)
            written.append(args.chrome)
        if args.prom:
            pathlib.Path(args.prom).write_text(
                fleet_prometheus_text(summarize(spans))
            )
            written.append(args.prom)
        print(f"exported {len(spans)} spans: {', '.join(written)}")
        return 0
    # tail: the most recently finished spans, oldest first.
    spans.sort(key=lambda s: s.get("end", 0.0))
    for span in spans[-args.limit:]:
        dur_ms = (span.get("end", 0.0) - span.get("start", 0.0)) * 1000.0
        print(
            f"{span.get('end', 0.0):.3f} {span.get('kind', '?'):16s} "
            f"{span.get('outcome', '?'):10s} {dur_ms:9.1f}ms "
            f"trace={str(span.get('trace', ''))[:8]} "
            f"pid={span.get('pid', 0)}"
        )
    return 0


def _cmd_service_load(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import ServiceClientError, format_load_report, run_load

    spec: dict = {}
    if args.spec:
        try:
            spec = json.loads(args.spec)
        except json.JSONDecodeError as error:
            raise ValueError(f"--spec must be valid JSON: {error}") from None
        if not isinstance(spec, dict):
            raise ValueError("--spec must be a JSON object")
    try:
        report = asyncio.run(
            run_load(
                args.host,
                args.port,
                jobs=args.n,
                concurrency=args.concurrency,
                kind=args.kind,
                spec=spec,
                distinct_seeds=not args.same_seed,
                poll_interval=args.poll_interval,
            )
        )
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote load report to {args.json}")
    print(format_load_report(report))
    return 0 if report.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.config import preset_config
    from repro.leakcheck import get_victim
    from repro.perf import CycleAttributor, prometheus_text
    from repro.proc import SecureProcessor

    if (args.victim is None) == (args.scenario is None):
        raise ValueError("pass exactly one of --victim or --scenario")
    if args.scenario is not None:
        from repro.perf import bench

        attributor, proc = bench.profile_scenario(
            args.scenario, seed=args.seed, quick=args.quick
        )
        print(f"scenario={args.scenario} seed={args.seed}")
    else:
        spec = get_victim(args.victim)
        secret, _ = spec.secrets(args.seed)
        config = preset_config(args.preset, functional_crypto=False)
        proc = SecureProcessor(config)
        attributor = CycleAttributor()
        proc.attach_profiler(attributor)
        spec.run(proc, secret)
        attributor.verify()
        print(f"victim={spec.name} preset={args.preset} seed={args.seed}")
    print(attributor.report(min_share=args.min_share))
    if args.collapsed:
        lines = attributor.write_collapsed(args.collapsed)
        print(f"\nwrote {lines} collapsed stacks to {args.collapsed}")
    if args.prom:
        pathlib.Path(args.prom).write_text(prometheus_text(proc.registry))
        print(f"wrote Prometheus metrics to {args.prom}")
    return 0


# -- synth: attack-synthesis fuzzer (docs/synth.md) -----------------------


def _synth_target_choices() -> tuple[str, ...]:
    from repro.synth import target_names

    return tuple(target_names())


def _resolve_corpus(args: argparse.Namespace) -> str:
    """``--corpus`` > ``REPRO_SYNTH_CORPUS`` > cwd default."""
    if getattr(args, "corpus", None):
        return args.corpus
    return os.environ.get("REPRO_SYNTH_CORPUS") or _DEFAULT_CORPUS


def _gen_config(args: argparse.Namespace):
    import dataclasses

    from repro.synth import GenConfig

    config = GenConfig()
    overrides: dict[str, object] = {}
    if getattr(args, "max_ops", None) is not None:
        overrides["max_ops"] = args.max_ops
        overrides["min_ops"] = min(config.min_ops, args.max_ops)
    if getattr(args, "guard_prob", None) is not None:
        overrides["p_guard"] = args.guard_prob
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config.validate()


def _cmd_synth_generate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.synth import format_program, generate_batch, program_to_dict

    batch = generate_batch(args.seed, args.count, _gen_config(args))
    if args.json:
        pathlib.Path(args.json).write_text(
            _json.dumps(
                [{"gen_seed": gen_seed, "program": program_to_dict(program)}
                 for gen_seed, program in batch],
                indent=2, sort_keys=True,
            ) + "\n"
        )
        print(f"wrote {len(batch)} program(s) to {args.json}")
        return 0
    for gen_seed, program in batch:
        print(f"# gen_seed={gen_seed}")
        print(format_program(program))
        print()
    return 0


def _cmd_synth_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.synth import Corpus, run_fuzz

    engine = _campaign_engine(args, reseed_base=args.seed)
    corpus = Corpus(_resolve_corpus(args))
    try:
        report = run_fuzz(
            preset=args.preset,
            defense=args.defense,
            budget=args.budget,
            seed=args.seed,
            alpha=args.alpha,
            gen=_gen_config(args),
            engine=engine,
            corpus=corpus,
        )
    finally:
        corpus.close()
    for line in report.summary_lines():
        print(line)
    print(engine.summary_line())
    for error in report.errors:
        print(f"!! {error}", file=sys.stderr)
    if args.json:
        doc = {
            "preset": report.preset,
            "defense": report.defense,
            "seed": report.seed,
            "budget": report.budget,
            "evaluated": report.evaluated,
            "failed": report.failed,
            "leaky": report.leaky,
            "metadata_leaky": report.metadata_leaky,
            "new_in_corpus": report.new_in_corpus,
            "coverage": dict(sorted(report.coverage.items())),
        }
        pathlib.Path(args.json).write_text(
            _json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote fuzz report to {args.json}")
    if report.failed:
        return 1
    if args.expect_leaky is not None and report.leaky < args.expect_leaky:
        print(
            f"FAIL: found {report.leaky} leaking program(s), "
            f"expected at least {args.expect_leaky}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_synth_minimize(args: argparse.Namespace) -> int:
    from repro.synth import (
        Corpus,
        MinimizationError,
        format_program,
        minimize_program,
        program_from_json,
        write_witness,
    )

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    targets = args.target or ["metaleak_t", "metaleak_c"]

    candidates: dict[str, object] = {}
    if args.program:
        program = program_from_json(pathlib.Path(args.program).read_text())
        for target in targets:
            candidates[target] = program
    else:
        from repro.synth import resolve_target

        corpus = Corpus(_resolve_corpus(args))
        try:
            for target in targets:
                entry = corpus.best_for(
                    resolve_target(target),
                    preset=args.preset, defense=args.defense,
                )
                if entry is not None:
                    candidates[target] = entry.program
        finally:
            corpus.close()

    status = 0
    for target in targets:
        program = candidates.get(target)
        if program is None:
            print(
                f"!! {target}: no corpus program hits this target on "
                f"preset={args.preset} defense={args.defense}; "
                f"run 'repro synth run' first",
                file=sys.stderr,
            )
            status = 1
            continue
        try:
            result = minimize_program(
                program,  # type: ignore[arg-type]
                target=target,
                preset=args.preset,
                defense=args.defense,
                alpha=args.alpha,
                max_oracle_calls=args.max_oracle_calls,
                progress=lambda line, t=target: print(f"[{t}] {line}"),
            )
        except MinimizationError as error:
            print(f"!! {target}: {error}", file=sys.stderr)
            status = 1
            continue
        path = write_witness(result, out_dir / f"witness_{target}.json")
        print(f"[{target}] witness: {result.initial_ops} -> "
              f"{result.final_ops} op(s), {result.oracle_calls} oracle "
              f"calls -> {path}")
        print(format_program(result.witness))
    return status


def _cmd_synth_corpus(args: argparse.Namespace) -> int:
    from repro.synth import Corpus

    path = _resolve_corpus(args)
    if not os.path.exists(path):
        print(f"error: no corpus at {path}; run 'repro synth run' first",
              file=sys.stderr)
        return 2
    with Corpus(path) as corpus:
        for line in corpus.summary_lines():
            print(line)
        if args.programs:
            for entry in corpus.entries(
                preset=args.preset, defense=args.defense
            ):
                channels = ", ".join(f"{c}/{k}" for c, k in entry.channels)
                print(
                    f"  {entry.key[:12]}  {entry.preset}/{entry.defense} "
                    f"gen_seed={entry.gen_seed} ops={entry.ops} "
                    f"[{channels}]"
                )
    return 0


def _cmd_synth_verify(args: argparse.Namespace) -> int:
    from repro.synth import MinimizationError, load_witness

    status = 0
    for path in args.witnesses:
        try:
            witness = load_witness(path)
            result = witness.verify(alpha=args.alpha)
        except (MinimizationError, ValueError, OSError) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            status = 1
            continue
        channels = ", ".join(f"{c}/{k}" for c, k in result.channels[:6])
        print(f"ok   {path}: target={witness.target} "
              f"preset={witness.preset} still leaks [{channels}]")
    return status


def _cmd_synth(args: argparse.Namespace) -> int:
    handler = {
        "generate": _cmd_synth_generate,
        "run": _cmd_synth_run,
        "minimize": _cmd_synth_minimize,
        "corpus": _cmd_synth_corpus,
        "verify": _cmd_synth_verify,
    }[args.synth_command]
    return handler(args)


def build_parser() -> argparse.ArgumentParser:
    from repro.config import preset_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="MetaLeak reproduction: secure-processor metadata "
        "side channels (ISCA 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a machine preset")
    info.add_argument("--preset", choices=preset_names(), default="sct")
    info.set_defaults(func=_cmd_info)

    listing = commands.add_parser("list", help="list regenerable figures")
    listing.set_defaults(func=_cmd_list)

    figures = commands.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="*", help="figure names (default: all)")
    figures.add_argument("--quick", action="store_true", help="reduced scale")
    figures.add_argument("--out", help="directory for result tables")
    figures.add_argument(
        "--seed", type=int, default=0,
        help="base seed for reseeded retries (figures accepting seed=)",
    )
    figures.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="checkpoint manifest path (default: OUT/manifest.json)",
    )
    figures.add_argument(
        "--resume", action="store_true",
        help="skip figures already ok in the manifest; rerun the rest",
    )
    figures.add_argument(
        "--fail-fast", action="store_true",
        help="stop scheduling new figures after the first failure",
    )
    _add_campaign_options(figures)
    figures.set_defaults(func=_cmd_figures)

    faults = commands.add_parser(
        "faults", help="run tamper-detection fault-injection campaigns"
    )
    faults.add_argument(
        "--preset", choices=(*preset_names(), "all"), default="all"
    )
    faults.add_argument(
        "--sites", type=int, default=200, help="injection sites per preset"
    )
    faults.add_argument("--seed", type=int, default=2024)
    _add_campaign_options(faults)
    faults.set_defaults(func=_cmd_faults)

    channel = commands.add_parser(
        "channel", help="run one ECC-framed covert transmission under noise"
    )
    channel.add_argument(
        "--bits", type=int, default=32, help="payload length in bits"
    )
    channel.add_argument(
        "--noise", type=int, default=2, metavar="READS",
        help="conflicting co-runner intensity in reads/step (0 = quiet)",
    )
    channel.add_argument(
        "--votes", type=int, default=3,
        help="majority-vote repetitions per wire bit",
    )
    channel.add_argument(
        "--retries", type=int, default=8,
        help="maximum ARQ retransmission rounds",
    )
    channel.add_argument(
        "--budget", type=int, default=None, metavar="CYCLES",
        help="cycle budget for the whole exchange (default: unlimited)",
    )
    channel.add_argument(
        "--gate", type=float, default=0.99,
        help="minimum framed payload accuracy; below it exits non-zero",
    )
    channel.add_argument("--seed", type=int, default=21)
    channel.set_defaults(func=_cmd_channel)

    from repro.leakcheck.victims import victim_names

    trace = commands.add_parser(
        "trace", help="record and export a victim's metadata event stream"
    )
    trace.add_argument("--victim", choices=victim_names(), required=True)
    trace.add_argument(
        "--secret", choices=("a", "b"), default="a",
        help="which of the paired secrets to run (default: a)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="JSONL output path")
    trace.add_argument(
        "--chrome", help="Chrome trace_event JSON output path (Perfetto)"
    )
    trace.add_argument(
        "--capacity", type=int, default=1 << 18,
        help="tracer ring-buffer capacity in events",
    )
    trace.set_defaults(func=_cmd_trace)

    leakcheck = commands.add_parser(
        "leakcheck", help="automated paired-secret leakage detection"
    )
    leakcheck.add_argument("--victim", choices=victim_names(), default=None)
    leakcheck.add_argument(
        "--list", action="store_true",
        help="list registered victims with descriptions and exit",
    )
    leakcheck.add_argument("--seed", type=int, default=0)
    leakcheck.add_argument(
        "--seeds", type=_positive_int, default=1, metavar="N",
        help="sweep N consecutive seeds starting at --seed (default 1)",
    )
    leakcheck.add_argument(
        "--alpha", type=float, default=0.01,
        help="significance level for the per-kind KS tests",
    )
    leakcheck.add_argument("--json", help="write the full report as JSON")
    leakcheck.add_argument(
        "--expect", choices=("leaky", "clean"), default=None,
        help="exit non-zero unless every swept verdict matches (CI gating)",
    )
    _add_campaign_options(leakcheck)
    leakcheck.set_defaults(func=_cmd_leakcheck)

    bench = commands.add_parser(
        "bench", help="run the benchmark suite; compare against a baseline"
    )
    bench.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario names (default: all; see --list)",
    )
    bench.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_<scenario>.json files (default: .)",
    )
    bench.add_argument(
        "--seed", type=int, default=0,
        help="workload seed; the simulated columns (cycles, accesses, "
        "counters) are deterministic for a fixed seed and code version, "
        "only host wall time / throughput / RSS vary between runs",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced-scale workloads (not comparable against full runs)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="DIR",
        help="baseline directory of BENCH_*.json; exit non-zero on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed fractional throughput drop before failing (default 0.2)",
    )
    bench.add_argument(
        "--min-ratio", type=float, default=None, metavar="X",
        help="additionally require steady_* scenarios to reach at least "
        "X times the baseline throughput (the speedup gate; default off)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="run each scenario N times and report the fastest wall time "
        "(noise-robust; simulated columns are asserted identical; default 3)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    _add_campaign_options(bench)
    bench.set_defaults(func=_cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="run the fault-tolerant leakcheck job service (HTTP)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port; 0 picks a free port (default 8642)",
    )
    serve.add_argument(
        "--capacity", type=_positive_int, default=64, metavar="N",
        help="admission bound: queued jobs beyond N are shed with 429 "
        "(default 64)",
    )
    serve.add_argument(
        "--concurrency", type=_positive_int, default=2, metavar="N",
        help="jobs executed concurrently (default 2)",
    )
    serve.add_argument(
        "--jobs", type=_jobs_count, default=1, metavar="N",
        help="campaign worker processes per job "
        "(0 = one per CPU core; default 1 = in-thread)",
    )
    serve.add_argument(
        "--timeout", type=_timeout_seconds, default=None, metavar="S",
        help="wall-clock budget per task within a job (default: none)",
    )
    serve.add_argument(
        "--retries", type=_retries_count, default=0, metavar="N",
        help="retry failed/crashed tasks up to N times with backoff",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.5, metavar="S",
        help="base retry backoff in seconds, full jitter (default 0.5)",
    )
    serve.add_argument(
        "--drain-grace", type=_timeout_seconds, default=30.0, metavar="S",
        help="seconds to let running jobs finish on SIGTERM/SIGINT "
        "before asking their engines to stop (default 30)",
    )
    serve.add_argument(
        "--campaign-db", metavar="FILE", default=None,
        help="campaign DB path, also the job journal (default: env "
        f"REPRO_CAMPAIGN_DB, else {_DEFAULT_CAMPAIGN_DB})",
    )
    serve.add_argument(
        "--no-spans", action="store_true",
        help="disable span tracing and fleet telemetry for this service",
    )
    serve.set_defaults(func=_cmd_serve)

    spans = commands.add_parser(
        "spans",
        help="fleet telemetry: report/export/tail recorded span logs",
    )
    spans_commands = spans.add_subparsers(dest="spans_command", required=True)

    def _spans_source_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "source", nargs="?", default=None,
            help="span JSONL file or campaign DB (default: resolved "
            "campaign DB)",
        )
        sub.add_argument(
            "--trace", metavar="ID", default=None,
            help="restrict to one trace id",
        )
        sub.add_argument(
            "--campaign-db", metavar="FILE", default=None,
            help="campaign DB used when no SOURCE is given (default: env "
            f"REPRO_CAMPAIGN_DB, else {_DEFAULT_CAMPAIGN_DB})",
        )

    spans_report = spans_commands.add_parser(
        "report", help="per-kind latency percentiles and fleet summary",
    )
    _spans_source_options(spans_report)
    spans_report.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="stragglers to list (default 5)",
    )
    spans_report.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on an invalid or empty span log (CI gate)",
    )
    spans_report.set_defaults(func=_cmd_spans)

    spans_export = spans_commands.add_parser(
        "export", help="rewrite spans as JSONL / Chrome trace / Prometheus",
    )
    _spans_source_options(spans_export)
    spans_export.add_argument(
        "--out", required=True, metavar="FILE",
        help="output JSONL span log",
    )
    spans_export.add_argument(
        "--chrome", metavar="FILE", default=None,
        help="also write a Chrome trace_event timeline (Perfetto-loadable)",
    )
    spans_export.add_argument(
        "--prom", metavar="FILE", default=None,
        help="also write the fleet summary as Prometheus text",
    )
    spans_export.set_defaults(func=_cmd_spans)

    spans_tail = spans_commands.add_parser(
        "tail", help="print the most recently finished spans",
    )
    _spans_source_options(spans_tail)
    spans_tail.add_argument(
        "--limit", type=_positive_int, default=20, metavar="N",
        help="spans to show (default 20)",
    )
    spans_tail.set_defaults(func=_cmd_spans)

    service_load = commands.add_parser(
        "service-load",
        help="load-generate against a running leakcheck service",
    )
    service_load.add_argument(
        "-n", type=_positive_int, default=16, metavar="N",
        help="jobs to submit (default 16)",
    )
    service_load.add_argument(
        "--host", default="127.0.0.1", help="service address",
    )
    service_load.add_argument(
        "--port", type=int, required=True, help="service port",
    )
    service_load.add_argument(
        "--concurrency", type=_positive_int, default=8, metavar="N",
        help="client-side concurrent submissions (default 8)",
    )
    service_load.add_argument(
        "--kind", choices=["probe", "leakcheck", "bench", "synth"],
        default="probe",
        help="job kind to submit (default probe)",
    )
    service_load.add_argument(
        "--spec", default=None, metavar="JSON",
        help='job spec as JSON, e.g. \'{"ops": 300}\' or '
        '\'{"victim": "rsa_modexp"}\'',
    )
    service_load.add_argument(
        "--same-seed", action="store_true",
        help="submit identical jobs (measures the dedup fast path) "
        "instead of distinct seeds",
    )
    service_load.add_argument(
        "--poll-interval", type=_timeout_seconds, default=0.05, metavar="S",
        help="status poll interval in seconds (default 0.05)",
    )
    service_load.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the load report as JSON",
    )
    service_load.set_defaults(func=_cmd_service_load)

    synth = commands.add_parser(
        "synth",
        help="attack-synthesis fuzzer with witness minimization",
    )
    synth_commands = synth.add_subparsers(
        dest="synth_command", required=True
    )

    def _synth_gen_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--max-ops", type=_positive_int, default=None, metavar="N",
            help="cap generated program length (default: generator default)",
        )
        sub.add_argument(
            "--guard-prob", type=float, default=None, metavar="P",
            help="probability an op is secret-guarded "
            "(default: generator default)",
        )

    def _synth_machine_options(sub: argparse.ArgumentParser) -> None:
        from repro.synth import DEFENSES

        sub.add_argument(
            "--preset", choices=preset_names(), default="sct",
            help="machine preset the oracle runs on (default sct)",
        )
        sub.add_argument(
            "--defense", choices=DEFENSES, default="none",
            help="defence overlay applied to the preset (default none)",
        )
        sub.add_argument(
            "--alpha", type=float, default=0.01,
            help="significance level for the per-kind KS tests",
        )

    def _synth_corpus_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--corpus", default=None, metavar="FILE",
            help="corpus sqlite path (default: env REPRO_SYNTH_CORPUS, "
            f"else {_DEFAULT_CORPUS})",
        )

    synth_generate = synth_commands.add_parser(
        "generate", help="emit seeded random programs (no oracle runs)"
    )
    synth_generate.add_argument("--seed", type=int, default=0)
    synth_generate.add_argument(
        "--count", type=_positive_int, default=1, metavar="N",
        help="programs to generate (default 1)",
    )
    _synth_gen_options(synth_generate)
    synth_generate.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the batch as JSON instead of printing listings",
    )
    synth_generate.set_defaults(func=_cmd_synth)

    synth_run = synth_commands.add_parser(
        "run", help="fuzz: fan generated programs through the leak oracle"
    )
    synth_run.add_argument("--seed", type=int, default=0)
    synth_run.add_argument(
        "--budget", type=_positive_int, default=64, metavar="N",
        help="programs to generate and evaluate (default 64)",
    )
    _synth_machine_options(synth_run)
    _synth_gen_options(synth_run)
    _synth_corpus_option(synth_run)
    synth_run.add_argument(
        "--expect-leaky", type=int, default=None, metavar="N",
        help="exit non-zero unless at least N leaking programs were found "
        "(CI gating)",
    )
    synth_run.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the fuzz report as JSON",
    )
    _add_campaign_options(synth_run)
    synth_run.set_defaults(func=_cmd_synth)

    synth_minimize = synth_commands.add_parser(
        "minimize",
        help="delta-debug corpus finds into minimal witness files",
    )
    synth_minimize.add_argument(
        "--target", action="append", default=None,
        choices=_synth_target_choices(),
        help="channel family to witness; repeatable "
        "(default: metaleak_t and metaleak_c)",
    )
    _synth_machine_options(synth_minimize)
    _synth_corpus_option(synth_minimize)
    synth_minimize.add_argument(
        "--program", metavar="FILE", default=None,
        help="minimize this program JSON instead of picking from the corpus",
    )
    synth_minimize.add_argument(
        "--out", default="witnesses", metavar="DIR",
        help="directory for witness_<target>.json files (default witnesses)",
    )
    synth_minimize.add_argument(
        "--max-oracle-calls", type=_positive_int, default=400, metavar="N",
        help="oracle budget per target (default 400)",
    )
    synth_minimize.set_defaults(func=_cmd_synth)

    synth_corpus = synth_commands.add_parser(
        "corpus", help="summarize the persistent corpus of leaking programs"
    )
    _synth_corpus_option(synth_corpus)
    synth_corpus.add_argument(
        "--preset", choices=preset_names(), default=None,
        help="only entries found on this preset",
    )
    synth_corpus.add_argument(
        "--defense", default=None,
        help="only entries found under this defence",
    )
    synth_corpus.add_argument(
        "--programs", action="store_true",
        help="also list individual corpus entries",
    )
    synth_corpus.set_defaults(func=_cmd_synth)

    synth_verify = synth_commands.add_parser(
        "verify", help="re-run checked-in witnesses against the oracle"
    )
    synth_verify.add_argument(
        "witnesses", nargs="+", metavar="WITNESS",
        help="witness JSON files to re-verify",
    )
    synth_verify.add_argument(
        "--alpha", type=float, default=0.01,
        help="significance level for the per-kind KS tests",
    )
    synth_verify.set_defaults(func=_cmd_synth)

    profile = commands.add_parser(
        "profile", help="cycle-attribution profile of one victim run"
    )
    profile.add_argument("--victim", choices=victim_names(), default=None)
    from repro.perf.bench import scenario_names

    profile.add_argument(
        "--scenario", choices=scenario_names(), default=None,
        help="profile a bench scenario's machine instead of a victim run",
    )
    profile.add_argument("--preset", choices=preset_names(), default="sct")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--quick", action="store_true",
        help="reduced-scale workload (scenario profiling only)",
    )
    profile.add_argument(
        "--min-share", type=float, default=0.0, metavar="F",
        help="hide components below this share of a bucket's cycles",
    )
    profile.add_argument(
        "--collapsed", metavar="FILE",
        help="write flamegraph collapsed-stack export (flamegraph.pl format)",
    )
    profile.add_argument(
        "--prom", metavar="FILE",
        help="write the counter registry in Prometheus text format",
    )
    profile.set_defaults(func=_cmd_profile)
    return parser


def _run_with_spans(args: argparse.Namespace) -> int:
    """Dispatch ``args.func``, tracing it when span export is requested.

    ``--spans FILE`` (or ``REPRO_SPANS=FILE``) mints the trace at the
    outermost entry point — this CLI invocation — so every campaign
    task, worker attempt and oracle evaluation below it shares one
    trace id.  Three artifacts are written next to FILE: the JSONL span
    log (schema v1), a Chrome ``trace_event`` timeline, and a
    Prometheus text snapshot of the fleet summary.  Without the flag
    this is a plain call: no recorder, no allocation, zero overhead.
    """
    path = getattr(args, "spans", None) or os.environ.get("REPRO_SPANS")
    if not path:
        return args.func(args)
    from repro import obs
    from repro.obs import fleet_prometheus_text, summarize

    recorder = obs.SpanRecorder()
    obs.enable(recorder)
    root = recorder.start_span(
        "cli", kind="cli",
        attrs={"command": getattr(args, "command", ""), "pid": os.getpid()},
    )
    try:
        with root:
            code = args.func(args)
            if code != 0:
                root.outcome = "failed"
                root.set("exit_code", code)
        return code
    finally:
        obs.disable()
        spans = recorder.drain()
        out = pathlib.Path(path)
        if out.parent != pathlib.Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        obs.write_spans_jsonl(spans, out)
        chrome = out.with_name(out.name + ".chrome.json")
        obs.write_chrome_spans(spans, chrome)
        prom = out.with_name(out.name + ".prom")
        prom.write_text(fleet_prometheus_text(summarize(spans)))
        print(
            f"spans: wrote {len(spans)} spans to {out} "
            f"(+ {chrome.name}, {prom.name})",
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_spans(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
