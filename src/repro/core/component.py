"""The component graph: one uniform observation interface over the machine.

Every simulated component — the processor, the data-cache hierarchy and
its caches, the memory encryption engine, the memory controller, DRAM,
the crypto engine, the counter store and the integrity trees — derives
from :class:`Component`.  A component contributes three things:

* ``component_name`` — a short dotted label (``"mee"``, ``"cache.l1"``);
* ``children()`` — the components it owns, making the machine a graph
  rooted at :class:`~repro.proc.processor.SecureProcessor`;
* *instrument slots* — named attributes (``tracer``, ``fault_hook``, …)
  that hold the currently attached instruments, ``None`` when detached.

:func:`attach` walks the graph once and installs one instrument into the
matching slot of every component that declares it.  That single generic
walk replaces the hand-written ``attach_tracer`` / ``install_fault_hook``
fan-outs that previously re-enumerated the proc→hierarchy→MEE→memctrl→
DRAM→crypto→tree layering at every layer boundary (the legacy entry
points survive as thin shims over :func:`attach`).  Components created
*after* an attach — per-domain integrity trees, most notably — inherit
their parent's current instruments through :func:`adopt`.

Two rules keep the hot paths honest:

* slot **assignment** happens only here (and in :mod:`repro.core.txn`);
  a CI guard rejects new manual ``.tracer = `` / ``.fault_hook = ``
  threading anywhere else, so the old pattern cannot creep back;
* slot **reads** stay where they always were: a detached component pays
  exactly one ``is None`` test per instrumented event, and nothing else.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Canonical instrument slots, in the order docs discuss them.
TRACER = "tracer"
FAULT_HOOK = "fault_hook"
PROFILER = "profiler"
SAMPLER = "sampler"

KNOWN_SLOTS = (TRACER, FAULT_HOOK, PROFILER, SAMPLER)


class Component:
    """Base class for nodes of the simulated machine's component graph.

    Subclasses call :meth:`init_component` from ``__init__`` (it creates
    every declared instrument slot as ``None``) and override
    :meth:`children` to enumerate owned components.  ``children()`` is
    read live on every walk, so structures that grow — the MEE's
    per-domain tree map — are picked up without re-registration.
    """

    #: Slots this component accepts; subclasses may extend (the
    #: processor adds ``profiler`` and ``sampler``).
    instrument_slots: tuple[str, ...] = (TRACER, FAULT_HOOK)

    component_name: str = "component"

    def init_component(self, name: str) -> None:
        """Name the component and create its instrument slots (detached)."""
        self.component_name = name
        for slot in self.instrument_slots:
            setattr(self, slot, None)

    def children(self) -> Iterable["Component"]:
        """Components owned by this one; leaves return nothing."""
        return ()


def walk(root: Component) -> Iterator[Component]:
    """Every component reachable from ``root``, each exactly once.

    Deduplication is by identity, so a component reachable through two
    owners (shared metadata cache, say) is still visited once.
    """
    seen: set[int] = set()
    stack: list[Component] = [root]
    while stack:
        component = stack.pop()
        if id(component) in seen:
            continue
        seen.add(id(component))
        yield component
        stack.extend(component.children())


def slot_of(instrument: object) -> str:
    """The slot an instrument declares via its ``instrument_slot`` attr."""
    slot = getattr(instrument, "instrument_slot", None)
    if slot is None:
        raise ValueError(
            "cannot infer the instrument slot: give the instrument class an "
            f"'instrument_slot' attribute (one of {KNOWN_SLOTS}) or pass "
            "slot= explicitly"
        )
    return slot


def attach(root: Component, instrument: object, *, slot: str | None = None) -> int:
    """Install ``instrument`` into its slot across the whole graph.

    Walks ``root`` and every reachable component, assigning the slot on
    each component that declares it; returns how many were reached.  The
    walk is idempotent — attaching the same instrument twice leaves the
    graph unchanged.  Passing ``instrument=None`` (with an explicit
    ``slot``) detaches everywhere, restoring the no-op fast path.
    """
    if slot is None:
        slot = slot_of(instrument)
    count = 0
    for component in walk(root):
        if slot in component.instrument_slots:
            setattr(component, slot, instrument)
            count += 1
    return count


def detach(root: Component, slot: str) -> int:
    """Clear one instrument slot across the whole graph."""
    return attach(root, None, slot=slot)


def adopt(parent: Component, child: Component) -> None:
    """A late-created ``child`` inherits ``parent``'s current instruments.

    Called at the point a component joins the graph after construction
    (e.g. the MEE building a new security domain's integrity tree), so
    instruments attached earlier keep observing the whole machine without
    per-call-site re-wiring.  The child's own subtree is walked too.
    """
    parent_slots = parent.instrument_slots
    for component in walk(child):
        for slot in component.instrument_slots:
            if slot in parent_slots:
                setattr(component, slot, getattr(parent, slot))
