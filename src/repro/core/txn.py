"""The per-access transaction context threaded down the memory path.

A :class:`Txn` is created once per software-visible operation at the
``SecureProcessor.read``/``write`` boundary and handed down through the
hierarchy, the memory encryption engine and the memory controller.  It
carries the cross-cutting per-access state that PRs used to thread by
hand — issuing core, operation, latency attribution parts, the
critical/shadowed overlap split, trace emission and fault-hook dispatch —
behind four calls:

* ``txn.charge(key, cycles)`` — attribute cycles to a dotted component
  key (replaces the ``parts=`` / ``breakdown=`` out-params);
* ``txn.emit(component, kind, ...)`` — trace emission (replaces the
  per-layer ``if self.tracer is not None`` boilerplate on access paths);
* ``txn.fault(event, ...)`` — fault-hook dispatch at verification points;
* ``txn.leg(prefix)`` — a fresh sub-accumulator for one side of an
  overlapped fetch; the engine later folds the winner into the critical
  attribution with :meth:`Txn.absorb` and the loser into the shadowed
  tally with :meth:`Txn.shadow`.

**Zero overhead when off.**  When no instrument is attached anywhere,
the processor hands down the shared :data:`NULL_TXN` singleton — no
allocation, and every method is a pass.  When only a tracer or fault
hook is attached, a real ``Txn`` is created but ``parts`` stays ``None``
so charging is still skipped; attribution dictionaries are built only
while a profiler is attached, exactly as before the refactor.

Background work that happens outside any access — posted write-queue
drains, lazy tree write-backs, overflow bursts — is *not* transactional:
those events still go through each component's own ``tracer`` slot
(attached via the component graph), because they have no issuing access
to charge to.
"""

from __future__ import annotations


class Txn:
    """Context for one in-flight memory access."""

    __slots__ = ("op", "core", "addr", "prefix", "tracer", "fault_hook",
                 "parts", "shadowed")

    #: Real transactions record; the NULL_TXN singleton reports False.
    recording = True

    def __init__(
        self,
        op: str,
        core: int = -1,
        addr: int | None = None,
        *,
        tracer=None,
        fault_hook=None,
        profiling: bool = False,
        prefix: str = "",
    ) -> None:
        self.op = op
        self.core = core
        self.addr = addr
        self.prefix = prefix
        self.tracer = tracer
        self.fault_hook = fault_hook
        self.parts: dict[str, int] | None = {} if profiling else None
        self.shadowed: dict[str, int] | None = {} if profiling else None

    @property
    def profiling(self) -> bool:
        """True while latency attribution is being collected."""
        return self.parts is not None

    # -- attribution -------------------------------------------------------

    def charge(self, key: str, cycles: int) -> None:
        """Attribute ``cycles`` to ``key`` (prefixed by this txn's scope)."""
        if self.parts is None or not cycles:
            return
        key = self.prefix + key
        self.parts[key] = self.parts.get(key, 0) + cycles

    def leg(self, prefix: str) -> "Txn":
        """A fresh accumulator for one side of an overlapped fetch.

        The leg shares this transaction's instruments (so emission and
        fault dispatch keep working inside it) but charges into its own
        ``parts``; the caller decides post-hoc whether those cycles were
        on the critical path (:meth:`absorb`) or hidden (:meth:`shadow`).
        """
        return Txn(
            self.op,
            self.core,
            self.addr,
            tracer=self.tracer,
            fault_hook=self.fault_hook,
            profiling=self.parts is not None,
            prefix=self.prefix + prefix,
        )

    def absorb(self, leg: "Txn") -> None:
        """Fold a leg's charges into the critical-path attribution."""
        if self.parts is None or leg.parts is None:
            return
        for key, value in leg.parts.items():
            self.parts[key] = self.parts.get(key, 0) + value

    def shadow(self, leg: "Txn") -> None:
        """Fold a leg's charges into the shadowed (off-critical) tally."""
        if self.shadowed is None or leg.parts is None:
            return
        for key, value in leg.parts.items():
            self.shadowed[key] = self.shadowed.get(key, 0) + value

    # -- instrumentation ---------------------------------------------------

    def emit(self, component: str, kind: str, **fields) -> None:
        """Emit one trace event on the access's behalf (no-op untraced)."""
        if self.tracer is not None:
            self.tracer.emit(component, kind, **fields)

    def fault(self, event: str, *args, **kwargs) -> None:
        """Dispatch one fault-hook callback (no-op when unhooked)."""
        if self.fault_hook is not None:
            getattr(self.fault_hook, event)(*args, **kwargs)


class _NullTxn:
    """The shared do-nothing transaction used when nothing is attached."""

    __slots__ = ()

    recording = False
    profiling = False
    op = None
    core = -1
    addr = None
    prefix = ""
    tracer = None
    fault_hook = None
    parts = None
    shadowed = None

    def charge(self, key: str, cycles: int) -> None:
        pass

    def leg(self, prefix: str) -> "_NullTxn":
        return self

    def absorb(self, leg) -> None:
        pass

    def shadow(self, leg) -> None:
        pass

    def emit(self, component: str, kind: str, **fields) -> None:
        pass

    def fault(self, event: str, *args, **kwargs) -> None:
        pass


NULL_TXN = _NullTxn()
