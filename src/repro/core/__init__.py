"""``repro.core`` — the component graph and per-access transactions.

The two structural primitives the whole memory path is built on:

* :class:`Component` / :func:`attach` / :func:`adopt` — every simulated
  component is a node in one graph rooted at the processor; one generic
  walk installs (or removes) an instrument everywhere, and late-created
  components inherit instruments from their parent;
* :class:`Txn` / :data:`NULL_TXN` — the per-access context carrying
  core id, latency attribution, the critical/shadowed overlap split,
  trace emission and fault-hook dispatch down the proc→MEE→memctrl→DRAM
  path, with a shared no-op when nothing is attached.

See ``docs/architecture.md`` for the graph shape, the ``Txn`` lifecycle
and how to add a new instrument or component.
"""

from repro.core.component import (
    FAULT_HOOK,
    KNOWN_SLOTS,
    PROFILER,
    SAMPLER,
    TRACER,
    Component,
    adopt,
    attach,
    detach,
    slot_of,
    walk,
)
from repro.core.txn import NULL_TXN, Txn

__all__ = [
    "Component",
    "FAULT_HOOK",
    "KNOWN_SLOTS",
    "NULL_TXN",
    "PROFILER",
    "SAMPLER",
    "TRACER",
    "Txn",
    "adopt",
    "attach",
    "detach",
    "slot_of",
    "walk",
]
