"""Automated metadata-leakage detection over paired traces.

The detector is a leakage-contract checker: run a victim twice under
paired secrets with identical public inputs, on identically configured
deterministic machines, and diff the two metadata event streams.  Any
per-event-kind difference — in event *count*, or in the distribution of
event values, addresses or inter-arrival times — is attributable to the
secret, because nothing else differed between the runs.

This rediscovers both MetaLeak channels from traces alone:

* MetaLeak-T signals show up as count/value differences in the
  ``mee``/``tree`` kinds (counter misses, tree-walk depths, node loads);
* MetaLeak-C signals show up in ``memctrl``/``dram`` kinds (write-queue
  enqueues, drains, bank addresses of serviced writes).

Determinism (zero timer jitter, which is the config default) means a
constant-time victim produces *identical* streams, so the clean verdict
is exact rather than statistical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro import obs
from repro.config import SecureProcessorConfig
from repro.leakcheck.victims import VictimSpec, get_victim
from repro.proc.processor import SecureProcessor
from repro.trace import TraceEvent, Tracer, group_by_kind
from repro.utils.stats import ks_two_sample

# Below this many events per side, KS p-values are too coarse to trust;
# count mismatches still flag regardless of sample size.
_MIN_KS_SAMPLES = 8


@dataclass
class KindFinding:
    """Divergence evidence for one (component, kind) event stream."""

    component: str
    kind: str
    count_a: int
    count_b: int
    flagged: bool = False
    reasons: list[str] = field(default_factory=list)
    # test name -> {"statistic": ..., "pvalue": ...}
    tests: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "component": self.component,
            "kind": self.kind,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "flagged": self.flagged,
            "reasons": list(self.reasons),
            "tests": {name: dict(res) for name, res in self.tests.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "KindFinding":
        return cls(
            component=str(data["component"]),
            kind=str(data["kind"]),
            count_a=int(data["count_a"]),
            count_b=int(data["count_b"]),
            flagged=bool(data["flagged"]),
            reasons=[str(r) for r in data.get("reasons", [])],
            tests={
                str(name): {str(k): float(v) for k, v in res.items()}
                for name, res in dict(data.get("tests", {})).items()
            },
        )


@dataclass
class LeakReport:
    """The detector's verdict for one victim/seed pair."""

    victim: str
    seed: int
    alpha: float
    events_a: int
    events_b: int
    dropped_a: int
    dropped_b: int
    findings: list[KindFinding] = field(default_factory=list)

    @property
    def leaky(self) -> bool:
        return any(finding.flagged for finding in self.findings)

    @property
    def flagged_findings(self) -> list[KindFinding]:
        return [finding for finding in self.findings if finding.flagged]

    def to_dict(self) -> dict[str, object]:
        return {
            "victim": self.victim,
            "seed": self.seed,
            "alpha": self.alpha,
            "events_a": self.events_a,
            "events_b": self.events_b,
            "dropped_a": self.dropped_a,
            "dropped_b": self.dropped_b,
            "leaky": self.leaky,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LeakReport":
        return cls(
            victim=str(data["victim"]),
            seed=int(data["seed"]),
            alpha=float(data["alpha"]),
            events_a=int(data["events_a"]),
            events_b=int(data["events_b"]),
            dropped_a=int(data["dropped_a"]),
            dropped_b=int(data["dropped_b"]),
            findings=[
                KindFinding.from_dict(item) for item in data.get("findings", [])
            ],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LeakReport":
        return cls.from_dict(json.loads(text))

    def summary_lines(self) -> list[str]:
        verdict = "LEAKY" if self.leaky else "clean"
        lines = [
            f"leakcheck: victim={self.victim} seed={self.seed} "
            f"alpha={self.alpha} -> {verdict}",
            f"  events: {self.events_a} vs {self.events_b} "
            f"(dropped {self.dropped_a}/{self.dropped_b})",
        ]
        for finding in self.flagged_findings:
            lines.append(
                f"  {finding.component}/{finding.kind}: "
                f"n={finding.count_a} vs {finding.count_b} "
                f"[{', '.join(finding.reasons)}]"
            )
        return lines


def _collect_trace(
    spec: VictimSpec,
    secret: object,
    *,
    config: SecureProcessorConfig,
    capacity: int,
) -> tuple[list[TraceEvent], int]:
    proc = SecureProcessor(config)
    tracer = Tracer(capacity=capacity)
    proc.attach_tracer(tracer)
    spec.run(proc, secret)
    return tracer.events(), tracer.dropped


def _stream_samples(events: list[TraceEvent]) -> dict[str, list[float]]:
    """Per-dimension scalar samples of one event stream."""
    samples: dict[str, list[float]] = {"value": [], "addr": [], "interarrival": []}
    for event in events:
        if event.value is not None:
            samples["value"].append(float(event.value))
        if event.addr is not None:
            samples["addr"].append(float(event.addr))
    cycles = [event.cycle for event in events]
    samples["interarrival"] = [
        float(b - a) for a, b in zip(cycles, cycles[1:])
    ]
    return samples


def _compare_kind(
    component: str,
    kind: str,
    events_a: list[TraceEvent],
    events_b: list[TraceEvent],
    alpha: float,
) -> KindFinding:
    finding = KindFinding(
        component=component,
        kind=kind,
        count_a=len(events_a),
        count_b=len(events_b),
    )
    if finding.count_a != finding.count_b:
        finding.flagged = True
        finding.reasons.append(
            f"count {finding.count_a} != {finding.count_b}"
        )
    samples_a = _stream_samples(events_a)
    samples_b = _stream_samples(events_b)
    for dimension in ("value", "addr", "interarrival"):
        sample_a = samples_a[dimension]
        sample_b = samples_b[dimension]
        if len(sample_a) < _MIN_KS_SAMPLES or len(sample_b) < _MIN_KS_SAMPLES:
            continue
        result = ks_two_sample(sample_a, sample_b)
        finding.tests[dimension] = {
            "statistic": result.statistic,
            "pvalue": result.pvalue,
        }
        if result.pvalue < alpha:
            finding.flagged = True
            finding.reasons.append(
                f"{dimension} KS p={result.pvalue:.3g} < {alpha}"
            )
    return finding


def run_leakcheck(
    victim: str | VictimSpec,
    *,
    seed: int = 0,
    alpha: float = 0.01,
    capacity: int = 1 << 18,
    config: SecureProcessorConfig | None = None,
) -> LeakReport:
    """Run the paired-secret experiment and diff the event streams.

    ``victim`` is a registry name (see ``repro.leakcheck.victims``) or a
    user-supplied :class:`VictimSpec`.  The machine defaults to the SCT
    preset with functional crypto off (timing/metadata behaviour is
    unchanged; the detector only reads event streams) and zero timer
    jitter, so the two runs are exactly reproducible.
    """
    spec = victim if isinstance(victim, VictimSpec) else get_victim(victim)
    if config is None:
        config = SecureProcessorConfig.sct_default(functional_crypto=False)
    with obs.start_span(
        "oracle.leakcheck", kind="oracle.leakcheck",
        attrs={"victim": spec.name, "seed": seed},
    ) as span:
        secret_a, secret_b = spec.secrets(seed)
        events_a, dropped_a = _collect_trace(
            spec, secret_a, config=config, capacity=capacity
        )
        events_b, dropped_b = _collect_trace(
            spec, secret_b, config=config, capacity=capacity
        )
        grouped_a = group_by_kind(events_a)
        grouped_b = group_by_kind(events_b)
        report = LeakReport(
            victim=spec.name,
            seed=seed,
            alpha=alpha,
            events_a=len(events_a),
            events_b=len(events_b),
            dropped_a=dropped_a,
            dropped_b=dropped_b,
        )
        for key in sorted(set(grouped_a) | set(grouped_b)):
            component, kind = key
            report.findings.append(
                _compare_kind(
                    component,
                    kind,
                    grouped_a.get(key, []),
                    grouped_b.get(key, []),
                    alpha,
                )
            )
        span.set_many({"leaky": report.leaky,
                       "events": report.events_a + report.events_b})
    return report
