"""Victim harnesses for the automated leakage detector.

Each :class:`VictimSpec` packages a *paired-secret* experiment: a way to
derive two secrets that share every public parameter (key size, message
length, image dimensions, operation count...) while differing in the bits
an attacker wants, plus a driver that runs the victim to completion on a
given machine.  The detector runs the driver twice — once per secret, on
identically configured machines — and diffs the metadata event streams.

The pairing discipline is what makes the check sound: any distinguishing
event between the two runs is attributable to the secret, because nothing
else differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class VictimSpec:
    """One paired-secret leakage experiment.

    ``secrets(seed)`` returns the pair; ``run(proc, secret)`` drives the
    victim to completion (including any trailing write drain) on a fresh
    machine.  ``run`` must perform the same *public* work for any secret —
    same allocations in the same order, same call count — so the only
    divergence between the paired runs is secret-dependent behaviour.
    """

    name: str
    description: str
    secrets: Callable[[int], tuple[object, object]]
    run: Callable[[SecureProcessor, object], None]


def _make_process(proc: SecureProcessor, *, cleanse: bool = True) -> Process:
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    return Process(proc, allocator, core=0, cleanse=cleanse, name="victim")


# ----------------------------------------------------------------------
# rsa: square-and-multiply exponent bits (MetaLeak-T's headline target)
# ----------------------------------------------------------------------


def _rsa_secrets(seed: int) -> tuple[int, int]:
    """Two exponents of equal bit length but very different weight.

    Same public parameters (bit length, base, modulus); the dense/sparse
    Hamming weights guarantee differing multiply counts, which is exactly
    the signal square-and-multiply leaks.
    """
    rng = derive_rng(seed, "leakcheck-rsa")
    bits = 48
    top = 1 << (bits - 1)
    dense = top | (rng.getrandbits(bits - 1) | rng.getrandbits(bits - 1)) | 1
    sparse = top | (rng.getrandbits(bits - 1) & rng.getrandbits(bits - 1) & rng.getrandbits(bits - 1)) | 1
    return dense, sparse


def _rsa_run(proc: SecureProcessor, secret: object) -> None:
    from repro.victims.rsa import RsaModexpVictim

    process = _make_process(proc)
    victim = RsaModexpVictim(process)
    rng = derive_rng(0, "leakcheck-rsa-public")
    base = rng.getrandbits(24) | 1
    modulus = rng.getrandbits(48) | (1 << 47) | 1
    # The fetch sequence is a pure function of the secret's bits, so it
    # goes through the batch API; under the detector's tracer this runs
    # the scalar reference path, so event streams are unchanged.
    victim.modexp_batched(base, int(secret), modulus)
    proc.drain_writes()


# ----------------------------------------------------------------------
# mbedtls: binary-GCD key loading (shift/sub pattern is phi-dependent)
# ----------------------------------------------------------------------


def _mbedtls_secrets(seed: int) -> tuple[int, int]:
    from repro.victims.mbedtls import generate_keypair_inputs

    _, phi_a = generate_keypair_inputs(bits=40, seed=seed)
    _, phi_b = generate_keypair_inputs(bits=40, seed=seed + 1009)
    return phi_a, phi_b


def _mbedtls_run(proc: SecureProcessor, secret: object) -> None:
    from repro.victims.mbedtls import KeyLoadVictim

    process = _make_process(proc)
    victim = KeyLoadVictim(process)
    for _ in victim.mod_inverse(65537, int(secret)):
        pass
    proc.drain_writes()


# ----------------------------------------------------------------------
# kvstore: persistent writes reveal which bucket pages the keys hash to
# ----------------------------------------------------------------------


def _kvstore_secrets(seed: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
    rng = derive_rng(seed, "leakcheck-kv")
    count = 12  # public: same number of puts either way
    keys_a = tuple(f"user-{rng.getrandbits(30):08x}" for _ in range(count))
    keys_b = tuple(f"user-{rng.getrandbits(30):08x}" for _ in range(count))
    return keys_a, keys_b


def _kvstore_run(proc: SecureProcessor, secret: object) -> None:
    from repro.victims.kvstore import PersistentKvStore

    process = _make_process(proc)
    store = PersistentKvStore(process, buckets=8)
    for key in secret:  # type: ignore[union-attr]
        for _ in store.put(key, b"v"):
            pass
    proc.drain_writes()


# ----------------------------------------------------------------------
# jpeg: per-block zero-run structure of the image drives Huffman work
# ----------------------------------------------------------------------


def _jpeg_secrets(seed: int) -> tuple[str, str]:
    del seed  # the image catalogue is fixed; quality/size stay public
    return "text", "gradient"


def _jpeg_run(proc: SecureProcessor, secret: object) -> None:
    from repro.victims.jpeg.encoder import JpegVictim
    from repro.victims.jpeg.images import sample_image

    process = _make_process(proc)
    victim = JpegVictim(process, quality=50)
    image = sample_image(str(secret), size=16)
    for _ in victim.encode_image(image):
        pass
    proc.drain_writes()


# ----------------------------------------------------------------------
# const: a constant-time reference that must come back clean
# ----------------------------------------------------------------------


def _const_secrets(seed: int) -> tuple[int, int]:
    rng = derive_rng(seed, "leakcheck-const")
    return rng.getrandbits(64), rng.getrandbits(64)


def _const_run(proc: SecureProcessor, secret: object) -> None:
    """Fixed access pattern: the secret is loaded but never branches."""
    del secret
    process = _make_process(proc)
    base = process.alloc(4)
    for sweep in range(3):
        for page in range(4):
            process.write(base + page * PAGE_SIZE + sweep * 64, b"x")
    for page in range(4):
        process.read(base + page * PAGE_SIZE)
    proc.drain_writes()


VICTIMS: dict[str, VictimSpec] = {
    spec.name: spec
    for spec in (
        VictimSpec(
            name="rsa",
            description="libgcrypt square-and-multiply modexp "
            "(exponent weight drives multiply count)",
            secrets=_rsa_secrets,
            run=_rsa_run,
        ),
        VictimSpec(
            name="mbedtls",
            description="mbedTLS binary-GCD key loading "
            "(shift/sub schedule is a function of phi)",
            secrets=_mbedtls_secrets,
            run=_mbedtls_run,
        ),
        VictimSpec(
            name="kvstore",
            description="persistent KV store "
            "(bucket-page writes reveal key hashes)",
            secrets=_kvstore_secrets,
            run=_kvstore_run,
        ),
        VictimSpec(
            name="jpeg",
            description="JPEG encoder (zero-run structure drives "
            "Huffman-table accesses)",
            secrets=_jpeg_secrets,
            run=_jpeg_run,
        ),
        VictimSpec(
            name="const",
            description="constant-time reference workload "
            "(must produce a clean report)",
            secrets=_const_secrets,
            run=_const_run,
        ),
    )
}


def victim_names() -> list[str]:
    return sorted(VICTIMS)


def list_victims() -> list[VictimSpec]:
    """Every registered victim, sorted by name (CLI/service enumeration)."""
    return [VICTIMS[name] for name in victim_names()]


def get_victim(name: str) -> VictimSpec:
    spec = VICTIMS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown leakcheck victim {name!r}; choose from {victim_names()}"
        )
    return spec
