"""Automated metadata-leakage detection (paired-secret trace diffing)."""

from repro.leakcheck.detector import KindFinding, LeakReport, run_leakcheck
from repro.leakcheck.victims import (
    VICTIMS,
    VictimSpec,
    get_victim,
    list_victims,
    victim_names,
)

__all__ = [
    "KindFinding",
    "LeakReport",
    "run_leakcheck",
    "VICTIMS",
    "VictimSpec",
    "get_victim",
    "list_victims",
    "victim_names",
]
