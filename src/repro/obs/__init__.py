"""Fleet observability: distributed wall-clock span tracing + telemetry.

See :mod:`repro.obs.spans` for the span model and the zero-overhead
``start_span`` gate, :mod:`repro.obs.telemetry` for latency/straggler
summaries, and docs/observability.md ("Fleet telemetry") for the
operator view.
"""

from repro.obs.spans import (
    NULL_SPAN,
    SCHEMA_VERSION,
    Span,
    SpanContext,
    SpanRecorder,
    active,
    current_context,
    disable,
    enable,
    new_span_id,
    new_trace_id,
    read_spans_jsonl,
    spans_to_chrome,
    start_span,
    validate_spans,
    write_chrome_spans,
    write_spans_jsonl,
)
from repro.obs.telemetry import (
    FleetSummary,
    PhaseStats,
    fleet_prometheus_text,
    percentile,
    render_report,
    summarize,
)

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "FleetSummary",
    "PhaseStats",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "active",
    "current_context",
    "disable",
    "enable",
    "fleet_prometheus_text",
    "new_span_id",
    "new_trace_id",
    "percentile",
    "read_spans_jsonl",
    "render_report",
    "spans_to_chrome",
    "start_span",
    "summarize",
    "validate_spans",
    "write_chrome_spans",
    "write_spans_jsonl",
]
