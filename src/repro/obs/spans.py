"""Distributed wall-clock span tracing for the repro fleet.

The simulator-side event bus (``repro.trace``) answers "what did the
*machine* do, in simulated cycles".  This module answers the fleet
question: "where did the *wall clock* go" when a campaign fans out over
worker processes, a service job waits in queue, or an oracle evaluation
retries.  It is a deliberately small, stdlib-only tracer:

* A **trace** is one end-to-end unit of work (a service job, a CLI
  subcommand, an engine run).  Its 32-hex ``trace_id`` is minted once at
  the outermost entry point and propagated everywhere below — through
  the service job journal, over the coordinator→worker pipes, into the
  worker process.
* A **span** is one timed phase inside a trace (queue-wait, a task
  attempt, an oracle evaluation) with a 16-hex ``span_id``, an optional
  parent span, an outcome, and structured attributes.

Zero overhead when off: ``start_span`` returns the shared ``NULL_SPAN``
singleton when no recorder is enabled — no allocation, no clock read —
mirroring the ``NULL_TXN`` / ``tracer is None`` discipline of the
simulator hot path (docs/observability.md).

Span log schema v1 (one JSON object per line in JSONL exports, one row
in the campaign DB ``spans`` table)::

    {"v": 1, "trace": <32 hex>, "span": <16 hex>, "parent": <16 hex>|null,
     "name": str, "kind": str, "start": epoch_s, "end": epoch_s,
     "outcome": "ok"|"failed"|"timeout"|"skipped"|"cancelled"|..., "pid": int,
     "attrs": {str: scalar}}
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from typing import Any, Iterable

SCHEMA_VERSION = 1

#: Required keys of a schema-v1 span dict.
SPAN_KEYS = ("v", "trace", "span", "parent", "name", "kind", "start", "end",
             "outcome", "pid", "attrs")

_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def new_trace_id() -> str:
    """Mint a 32-hex trace id (also used for journal rows with spans off)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict[str, str]:
        return {"trace": self.trace_id, "span": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "SpanContext | None":
        if not data:
            return None
        trace = data.get("trace")
        span = data.get("span")
        if not trace or not span:
            return None
        return cls(str(trace), str(span))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanContext({self.trace_id[:8]}…/{self.span_id})"


class Span:
    """A live span.  Use as a context manager or call :meth:`end`.

    ``span.outcome`` may be assigned before exit to override the default
    outcome (``"ok"`` on clean exit, ``"failed"`` when an exception
    propagates through the ``with`` block).
    """

    __slots__ = ("context", "parent_id", "name", "kind", "start", "attrs",
                 "pid", "outcome", "_recorder", "_token", "_done")

    def __init__(self, recorder: "SpanRecorder", context: SpanContext,
                 parent_id: str | None, name: str, kind: str,
                 start: float, attrs: dict[str, Any]):
        self.context = context
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.attrs = attrs
        self.pid = os.getpid()
        self.outcome: str | None = None
        self._recorder = recorder
        self._token: contextvars.Token | None = None
        self._done = False

    # -- attributes ----------------------------------------------------
    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def set_many(self, attrs: dict[str, Any]) -> "Span":
        self.attrs.update(attrs)
        return self

    # -- lifecycle -----------------------------------------------------
    def end(self, outcome: str | None = None, *, at: float | None = None) -> None:
        if self._done:
            return
        self._done = True
        final = outcome if outcome is not None else (self.outcome or "ok")
        self._recorder._record(self, final, at if at is not None else time.time())

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                # Entered in a different context (e.g. executor thread);
                # the var is context-local so there is nothing to unwind.
                pass
            self._token = None
        if exc_type is not None and self.outcome is None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}"[:200])
            self.end("failed")
        else:
            self.end()
        return False

    def to_dict(self, end: float, outcome: str) -> dict[str, Any]:
        return {
            "v": SCHEMA_VERSION,
            "trace": self.context.trace_id,
            "span": self.context.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": end,
            "outcome": outcome,
            "pid": self.pid,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared inert span: every operation is a no-op.

    ``start_span`` returns this singleton whenever tracing is off, so
    instrumented call sites cost one function call and no allocation.
    """

    __slots__ = ("outcome",)

    context = SpanContext("0" * 32, "0" * 16)
    parent_id = None
    name = ""
    kind = ""
    start = 0.0
    attrs: dict[str, Any] = {}
    pid = 0

    def __init__(self):
        self.outcome: str | None = None

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_many(self, attrs: dict[str, Any]) -> "_NullSpan":
        return self

    def end(self, outcome: str | None = None, *, at: float | None = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects finished spans; thread-safe; bounded.

    ``capacity`` bounds retained finished spans (oldest dropped first,
    tallied in ``dropped``).  ``recent_capacity`` bounds the separate
    always-retained window served by ``/debug/spans`` — draining for
    persistence does not empty it.
    """

    def __init__(self, capacity: int = 1 << 18, recent_capacity: int = 512):
        self.capacity = capacity
        self.recent_capacity = recent_capacity
        self._lock = threading.Lock()
        self._finished: list[dict[str, Any]] = []
        self._recent: list[dict[str, Any]] = []
        self.dropped = 0
        self.recorded = 0
        self.active = 0

    # -- span creation -------------------------------------------------
    def start_span(self, name: str, *, kind: str | None = None,
                   parent: "Span | SpanContext | None" = None,
                   trace_id: str | None = None,
                   attrs: dict[str, Any] | None = None,
                   start_at: float | None = None) -> Span:
        """Open a span.

        Parent resolution: explicit ``parent`` > the context-local
        current span > none.  With no parent, a fresh trace id is minted
        unless ``trace_id`` forces one (service jobs mint theirs at
        admission and force it here).
        """
        if parent is None and trace_id is None:
            parent = _CURRENT.get()
        if isinstance(parent, _NullSpan):
            parent = None
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            trace = parent.trace_id
            parent_id = parent.span_id
        else:
            trace = trace_id or new_trace_id()
            parent_id = None
        ctx = SpanContext(trace, new_span_id())
        span = Span(self, ctx, parent_id, name, kind or name,
                    start_at if start_at is not None else time.time(),
                    dict(attrs) if attrs else {})
        with self._lock:
            self.active += 1
        return span

    def _record(self, span: Span, outcome: str, end: float) -> None:
        data = span.to_dict(end, outcome)
        with self._lock:
            self.active = max(0, self.active - 1)
            self.recorded += 1
            self._finished.append(data)
            if len(self._finished) > self.capacity:
                excess = len(self._finished) - self.capacity
                del self._finished[:excess]
                self.dropped += excess
            self._recent.append(data)
            if len(self._recent) > self.recent_capacity:
                del self._recent[: len(self._recent) - self.recent_capacity]

    def adopt(self, span_dicts: Iterable[dict[str, Any]]) -> int:
        """Absorb finished span dicts shipped from another process."""
        count = 0
        with self._lock:
            for data in span_dicts:
                if not isinstance(data, dict) or data.get("v") != SCHEMA_VERSION:
                    continue
                self._finished.append(data)
                self._recent.append(data)
                self.recorded += 1
                count += 1
            if len(self._finished) > self.capacity:
                excess = len(self._finished) - self.capacity
                del self._finished[:excess]
                self.dropped += excess
            if len(self._recent) > self.recent_capacity:
                del self._recent[: len(self._recent) - self.recent_capacity]
        return count

    # -- retrieval -----------------------------------------------------
    def drain(self, trace_id: str | None = None) -> list[dict[str, Any]]:
        """Pop finished spans (all, or those of one trace) for persistence."""
        with self._lock:
            if trace_id is None:
                out = self._finished
                self._finished = []
                return out
            out = [s for s in self._finished if s["trace"] == trace_id]
            if out:
                self._finished = [s for s in self._finished
                                  if s["trace"] != trace_id]
            return out

    def finished_spans(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._finished)

    def recent(self, limit: int = 0) -> list[dict[str, Any]]:
        with self._lock:
            if limit and limit < len(self._recent):
                return list(self._recent[-limit:])
            return list(self._recent)


# --------------------------------------------------------------------------
# Module-level switch (the zero-overhead-when-off gate)
# --------------------------------------------------------------------------

_RECORDER: SpanRecorder | None = None


def enable(recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Install (or reuse) the process-global recorder and return it."""
    global _RECORDER
    if recorder is not None:
        _RECORDER = recorder
    elif _RECORDER is None:
        _RECORDER = SpanRecorder()
    return _RECORDER


def disable() -> None:
    """Drop the global recorder; ``start_span`` reverts to ``NULL_SPAN``."""
    global _RECORDER
    _RECORDER = None
    _CURRENT.set(None)


def active() -> SpanRecorder | None:
    return _RECORDER


def start_span(name: str, **kwargs: Any) -> Span | _NullSpan:
    """The one instrumentation entry point for fleet code.

    When tracing is off this is a single global read returning the
    shared inert singleton — no allocation on the hot path.
    """
    rec = _RECORDER
    if rec is None:
        return NULL_SPAN
    return rec.start_span(name, **kwargs)


def current_context() -> SpanContext | None:
    """Context of the innermost live span in this thread/task, if any."""
    span = _CURRENT.get()
    if span is None or isinstance(span, _NullSpan):
        return None
    return span.context


# --------------------------------------------------------------------------
# Export / validation
# --------------------------------------------------------------------------

def write_spans_jsonl(spans: Iterable[dict[str, Any]], path: str) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: str) -> list[dict[str, Any]]:
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def spans_to_chrome(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Render spans as Chrome ``trace_event`` complete ('X') slices.

    Timestamps are normalised so the earliest span starts at 0 µs; each
    OS process becomes a Chrome process track, so coordinator, workers
    and the service lane are visually separate while slices within one
    process nest by time containment.
    """
    events: list[dict[str, Any]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    t0 = min(s["start"] for s in spans)
    pids = sorted({int(s.get("pid", 0)) for s in spans})
    for pid in pids:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"pid {pid}"},
        })
    traces = sorted({s["trace"] for s in spans})
    tid_of = {trace: i + 1 for i, trace in enumerate(traces)}
    for span in spans:
        args = {"trace": span["trace"], "span": span["span"],
                "parent": span.get("parent"), "outcome": span.get("outcome")}
        args.update(span.get("attrs") or {})
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span.get("kind", span["name"]),
            "pid": int(span.get("pid", 0)),
            "tid": tid_of[span["trace"]],
            "ts": (span["start"] - t0) * 1e6,
            "dur": max(0.0, (span["end"] - span["start"]) * 1e6),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_spans(spans: list[dict[str, Any]], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spans_to_chrome(spans), fh)


def validate_spans(spans: list[dict[str, Any]], *,
                   single_trace: bool = False) -> list[str]:
    """Schema-v1 validation; returns a list of human-readable errors.

    Checks: required keys present, spans closed (``end >= start``),
    parent ids resolve within the set, span ids unique, and (optionally)
    a uniform trace id across the whole set.
    """
    errors: list[str] = []
    seen: set[str] = set()
    for i, span in enumerate(spans):
        missing = [k for k in SPAN_KEYS if k not in span]
        if missing:
            errors.append(f"span[{i}]: missing keys {missing}")
            continue
        if span["v"] != SCHEMA_VERSION:
            errors.append(f"span[{i}] {span['span']}: schema v{span['v']} != {SCHEMA_VERSION}")
        if span["span"] in seen:
            errors.append(f"span[{i}] {span['span']}: duplicate span id")
        seen.add(span["span"])
        if not isinstance(span["start"], (int, float)) or not isinstance(span["end"], (int, float)):
            errors.append(f"span[{i}] {span['span']}: non-numeric start/end")
        elif span["end"] < span["start"]:
            errors.append(f"span[{i}] {span['span']}: not closed (end < start)")
        if not span["outcome"]:
            errors.append(f"span[{i}] {span['span']}: empty outcome")
    ids = {s["span"] for s in spans if "span" in s}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            errors.append(f"span {span.get('span')}: parent {parent} not in export")
    if single_trace:
        traces = {s["trace"] for s in spans if "trace" in s}
        if len(traces) > 1:
            errors.append(f"expected a single trace, found {len(traces)}: "
                          f"{sorted(traces)[:4]}...")
    return errors
