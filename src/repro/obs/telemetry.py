"""Fleet telemetry over the span stream: latency, stragglers, queues.

Pure functions from a list of schema-v1 span dicts (see
:mod:`repro.obs.spans`) to summaries: per-kind latency statistics
(p50/p95/max), straggler detection, retry and queue-wait rollups, a
``repro_obs_*`` Prometheus text rendering, and the plain-text table
behind ``repro spans report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]); 0.0 on an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class PhaseStats:
    """Latency statistics for one span kind."""

    kind: str
    count: int = 0
    failed: int = 0
    total_s: float = 0.0
    p50_s: float = 0.0
    p95_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class FleetSummary:
    """Everything ``repro spans report`` and ``repro_obs_*`` render."""

    spans: int = 0
    traces: int = 0
    phases: dict[str, PhaseStats] = field(default_factory=dict)
    outcomes: dict[str, int] = field(default_factory=dict)
    stragglers: list[dict[str, Any]] = field(default_factory=list)
    retries: int = 0
    cache_hits: int = 0
    queue_wait_total_s: float = 0.0
    queue_wait_max_s: float = 0.0
    queued: int = 0


def summarize(spans: list[dict[str, Any]], *, straggler_factor: float = 4.0,
              min_straggler_s: float = 0.05) -> FleetSummary:
    """Aggregate spans into a :class:`FleetSummary`.

    A span is a straggler when its duration exceeds ``straggler_factor``
    × the median for its kind and is at least ``min_straggler_s`` long
    (sub-50 ms phases are never worth chasing).
    """
    summary = FleetSummary(spans=len(spans))
    durations: dict[str, list[float]] = {}
    traces: set[str] = set()
    for span in spans:
        kind = span.get("kind") or span.get("name") or "?"
        dur = max(0.0, float(span.get("end", 0.0)) - float(span.get("start", 0.0)))
        durations.setdefault(kind, []).append(dur)
        trace = span.get("trace")
        if trace:
            traces.add(trace)
        outcome = span.get("outcome") or "?"
        summary.outcomes[outcome] = summary.outcomes.get(outcome, 0) + 1
        attrs = span.get("attrs") or {}
        if kind == "task.attempt" and int(attrs.get("attempt", 1) or 1) > 1:
            summary.retries += 1
        if attrs.get("cache") == "hit" or attrs.get("cached"):
            summary.cache_hits += 1
        if kind in ("task.queue", "job.queue"):
            summary.queued += 1
            summary.queue_wait_total_s += dur
            summary.queue_wait_max_s = max(summary.queue_wait_max_s, dur)
    summary.traces = len(traces)

    stats: dict[str, PhaseStats] = {}
    for kind, vals in durations.items():
        ps = PhaseStats(kind=kind, count=len(vals), total_s=sum(vals),
                        p50_s=percentile(vals, 0.5),
                        p95_s=percentile(vals, 0.95), max_s=max(vals))
        stats[kind] = ps
    for span in spans:
        kind = span.get("kind") or span.get("name") or "?"
        if span.get("outcome") not in (None, "ok"):
            stats[kind].failed += 1
    summary.phases = dict(sorted(stats.items()))

    # Straggler pass: compare each span to its kind's median.
    for span in spans:
        kind = span.get("kind") or span.get("name") or "?"
        vals = durations[kind]
        if len(vals) < 2:
            continue
        median = percentile(vals, 0.5)
        dur = max(0.0, float(span.get("end", 0.0)) - float(span.get("start", 0.0)))
        if dur >= min_straggler_s and median > 0 and dur > straggler_factor * median:
            attrs = span.get("attrs") or {}
            summary.stragglers.append({
                "name": span.get("name"),
                "kind": kind,
                "trace": span.get("trace"),
                "span": span.get("span"),
                "task": attrs.get("task"),
                "duration_s": round(dur, 6),
                "median_s": round(median, 6),
                "factor": round(dur / median, 2),
            })
    summary.stragglers.sort(key=lambda s: -s["duration_s"])
    return summary


def fleet_prometheus_text(summary: FleetSummary,
                          namespace: str = "repro_obs") -> str:
    """Render a summary in Prometheus text format under ``repro_obs_*``.

    Uses the shared label-escaping helpers from :mod:`repro.perf.metrics`
    so kind labels with quotes/backslashes/newlines stay well-formed.
    """
    from repro.perf.metrics import prom_header, prom_sample

    lines: list[str] = []
    lines += prom_header(f"{namespace}_spans_total", "counter",
                         "Finished spans in this summary window.")
    lines.append(prom_sample(f"{namespace}_spans_total", None, summary.spans))
    lines += prom_header(f"{namespace}_traces_total", "counter",
                         "Distinct trace ids seen.")
    lines.append(prom_sample(f"{namespace}_traces_total", None, summary.traces))
    lines += prom_header(f"{namespace}_retries_total", "counter",
                         "Task attempts beyond the first.")
    lines.append(prom_sample(f"{namespace}_retries_total", None, summary.retries))
    lines += prom_header(f"{namespace}_cache_hits_total", "counter",
                         "Spans served from a cache.")
    lines.append(prom_sample(f"{namespace}_cache_hits_total", None,
                             summary.cache_hits))
    lines += prom_header(f"{namespace}_stragglers_total", "counter",
                         "Spans slower than straggler-factor x kind median.")
    lines.append(prom_sample(f"{namespace}_stragglers_total", None,
                             len(summary.stragglers)))
    lines += prom_header(f"{namespace}_queue_wait_seconds_max", "gauge",
                         "Longest observed queue-wait phase.")
    lines.append(prom_sample(f"{namespace}_queue_wait_seconds_max", None,
                             round(summary.queue_wait_max_s, 6)))

    lines += prom_header(f"{namespace}_outcome_total", "counter",
                         "Finished spans by outcome.")
    for outcome, count in sorted(summary.outcomes.items()):
        lines.append(prom_sample(f"{namespace}_outcome_total",
                                 {"outcome": outcome}, count))

    lines += prom_header(f"{namespace}_phase_seconds", "gauge",
                         "Per-kind span latency quantiles.")
    for kind, stats in summary.phases.items():
        for quantile, value in (("0.5", stats.p50_s), ("0.95", stats.p95_s),
                                ("max", stats.max_s)):
            lines.append(prom_sample(
                f"{namespace}_phase_seconds",
                {"kind": kind, "quantile": quantile}, round(value, 6)))
    lines += prom_header(f"{namespace}_phase_spans_total", "counter",
                         "Finished spans per kind.")
    for kind, stats in summary.phases.items():
        lines.append(prom_sample(f"{namespace}_phase_spans_total",
                                 {"kind": kind}, stats.count))
    return "\n".join(lines) + "\n"


def render_report(summary: FleetSummary, *, top: int = 5) -> str:
    """The per-phase latency table behind ``repro spans report``."""
    out: list[str] = []
    out.append(f"spans {summary.spans}  traces {summary.traces}  "
               f"retries {summary.retries}  cache-hits {summary.cache_hits}")
    if summary.outcomes:
        tally = "  ".join(f"{k}:{v}" for k, v in sorted(summary.outcomes.items()))
        out.append(f"outcomes  {tally}")
    if summary.queued:
        avg = summary.queue_wait_total_s / summary.queued
        out.append(f"queue-wait  avg {avg:.3f}s  max {summary.queue_wait_max_s:.3f}s "
                   f"({summary.queued} queued phases)")
    if summary.phases:
        out.append("")
        header = f"{'kind':<20} {'count':>6} {'fail':>5} {'p50':>9} {'p95':>9} {'max':>9} {'total':>9}"
        out.append(header)
        out.append("-" * len(header))
        for kind, stats in summary.phases.items():
            out.append(f"{kind:<20} {stats.count:>6} {stats.failed:>5} "
                       f"{stats.p50_s:>8.3f}s {stats.p95_s:>8.3f}s "
                       f"{stats.max_s:>8.3f}s {stats.total_s:>8.3f}s")
    if summary.stragglers:
        out.append("")
        out.append(f"stragglers ({len(summary.stragglers)}, top {min(top, len(summary.stragglers))}):")
        for straggler in summary.stragglers[:top]:
            label = straggler.get("task") or straggler.get("name")
            out.append(f"  {label}: {straggler['duration_s']:.3f}s "
                       f"({straggler['factor']}x the {straggler['kind']} "
                       f"median {straggler['median_s']:.3f}s)")
    return "\n".join(out)
