"""Set-associative write-back cache with pluggable replacement.

The model tracks block presence, dirtiness and recency; it does not store
data bytes (the simulator's backing store lives behind the memory
controller).  Both the data-cache hierarchy and the metadata cache at the
memory controller instantiate this class.  Replacement defaults to true
LRU (what the paper's mEvict analysis assumes); tree-PLRU and RANDOM are
available for the ablation sweeps (see ``repro.mem.replacement``).

Functional/timing split (docs/architecture.md): the cache is a purely
*functional* component — :meth:`decompose` is the pure address step
(block, set index), :meth:`lookup`/:meth:`insert`/:meth:`invalidate` are
the ``apply`` state transitions, and no latency lives here.  Hit/service
cycles are charged by the callers (the hierarchy and the MEE) from their
config tables.

Sets are materialised lazily: a machine-sized L3 has thousands of sets
and a replacement-policy object each, but a typical workload touches a
handful.  Creation uses the same per-set seed as the old eager
constructor, so replacement behaviour (including seeded RANDOM) is
unchanged — only the allocation time moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig
from repro.core import Component
from repro.mem.replacement import make_policy
from repro.trace.counters import CounterRegistry
from repro.utils.bitops import log2_exact


@dataclass(frozen=True)
class CacheAccess:
    """Outcome of one cache operation."""

    hit: bool
    evicted_addr: int | None = None
    evicted_dirty: bool = False


# Immutable, so the two allocation-free outcomes are shared singletons
# (inserts are the hottest call on the miss path).
_HIT = CacheAccess(hit=True)
_FILLED = CacheAccess(hit=False)


class _CacheSet:
    """One set: way-slot arrays plus a replacement-policy instance."""

    __slots__ = ("tags", "dirty", "index_of", "policy")

    def __init__(self, ways: int, policy_name: str, seed: int) -> None:
        self.tags: list[int | None] = [None] * ways
        self.dirty: list[bool] = [False] * ways
        self.index_of: dict[int, int] = {}
        self.policy = make_policy(policy_name, ways, seed)


class SetAssocCache(Component):
    """A classic set-associative cache."""

    def __init__(
        self, config: CacheConfig, *, replacement: str | None = None, seed: int = 0
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.replacement = replacement or getattr(config, "replacement", "lru")
        self._block_shift = log2_exact(config.block_size)
        self._block_mask = ~(config.block_size - 1)
        # Lazily materialised sets: index -> _CacheSet, created on first
        # fill (probes of untouched sets never allocate).
        self._sets: dict[int, _CacheSet] = {}
        self._seed = seed
        self.counters = CounterRegistry()
        self._hits = self.counters.counter("hits")
        self._misses = self.counters.counter("misses")
        self._fills = self.counters.counter("fills")
        self._evictions = self.counters.counter("evictions")
        self.counters.gauge("occupancy", self.occupancy)
        # Instrument slots (tracer, fault_hook) are created detached by
        # the component graph; attach via ``repro.core.attach``.
        self.init_component(f"cache.{config.name}")

    # ------------------------------------------------------------------
    # Legacy tally attributes (now registry-backed)
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    # ------------------------------------------------------------------
    # Address mapping (the pure ``decompose`` step)
    # ------------------------------------------------------------------

    def decompose(self, addr: int) -> tuple[int, int]:
        """Pure address decomposition: (block address, set index)."""
        block = addr & self._block_mask
        return block, (block >> self._block_shift) % self.num_sets

    def set_index_of(self, addr: int) -> int:
        """Cache set that the block containing ``addr`` maps to."""
        return (addr >> self._block_shift) % self.num_sets

    def _set_at(self, set_index: int) -> _CacheSet:
        """The set object at ``set_index``, materialising it on demand."""
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            cache_set = _CacheSet(
                self.ways, self.replacement, self._seed + set_index
            )
            self._sets[set_index] = cache_set
        return cache_set

    def _set_of(self, addr: int) -> tuple[_CacheSet, int]:
        block, set_index = self.decompose(addr)
        return self._set_at(set_index), block

    # ------------------------------------------------------------------
    # Operations (the ``apply`` state transitions)
    # ------------------------------------------------------------------

    def lookup(self, addr: int, *, touch: bool = True) -> bool:
        """Probe for the block at ``addr``; optionally refresh its recency."""
        block = addr & self._block_mask
        set_index = (block >> self._block_shift) % self.num_sets
        cache_set = self._sets.get(set_index)
        way = cache_set.index_of.get(block) if cache_set is not None else None
        if way is not None:
            if touch:
                cache_set.policy.on_access(way)
            self._hits.value += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.component_name,
                    "hit",
                    addr=block,
                    set_index=set_index,
                )
            return True
        self._misses.value += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.component_name,
                "miss",
                addr=block,
                set_index=set_index,
            )
        return False

    def contains(self, addr: int) -> bool:
        """Presence check with no side effects (no LRU update, no stats)."""
        block, set_index = self.decompose(addr)
        cache_set = self._sets.get(set_index)
        return cache_set is not None and block in cache_set.index_of

    def insert(self, addr: int, *, dirty: bool = False) -> CacheAccess:
        """Fill the block at ``addr``, evicting a victim if needed.

        If the block is already present this refreshes recency (and ORs in
        the dirty bit) instead of double-filling.
        """
        block, set_index = self.decompose(addr)
        cache_set = self._set_at(set_index)
        way = cache_set.index_of.get(block)
        if way is not None:
            cache_set.dirty[way] = cache_set.dirty[way] or dirty
            cache_set.policy.on_access(way)
            return _HIT
        evicted_addr = None
        evicted_dirty = False
        tags = cache_set.tags
        free_way = None
        for w, tag in enumerate(tags):
            if tag is None:
                free_way = w
                break
        if free_way is None:
            occupied = [tag is not None for tag in tags]
            free_way = cache_set.policy.victim(occupied)
            evicted_addr = tags[free_way]
            evicted_dirty = cache_set.dirty[free_way]
            del cache_set.index_of[evicted_addr]
        cache_set.tags[free_way] = block
        cache_set.dirty[free_way] = dirty
        cache_set.index_of[block] = free_way
        cache_set.policy.on_fill(free_way)
        self._fills.value += 1
        if evicted_addr is not None:
            self._evictions.value += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.component_name,
                "fill",
                addr=block,
                set_index=set_index,
            )
            if evicted_addr is not None:
                self.tracer.emit(
                    self.component_name,
                    "evict",
                    addr=evicted_addr,
                    set_index=set_index,
                    value=float(evicted_dirty),
                )
        if self.fault_hook is not None:
            self.fault_hook.on_cache_fill(self.config.name, block)
        if evicted_addr is None:
            return _FILLED
        return CacheAccess(
            hit=False, evicted_addr=evicted_addr, evicted_dirty=evicted_dirty
        )

    def mark_dirty(self, addr: int) -> None:
        """Set the dirty bit of a resident block (no-op if absent)."""
        block, set_index = self.decompose(addr)
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            return
        way = cache_set.index_of.get(block)
        if way is not None:
            cache_set.dirty[way] = True

    def is_dirty(self, addr: int) -> bool:
        block, set_index = self.decompose(addr)
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            return False
        way = cache_set.index_of.get(block)
        return cache_set.dirty[way] if way is not None else False

    def invalidate(self, addr: int) -> tuple[bool, bool]:
        """Remove the block at ``addr``; returns (was_present, was_dirty)."""
        block = addr & self._block_mask
        cache_set = self._sets.get((block >> self._block_shift) % self.num_sets)
        way = cache_set.index_of.pop(block, None) if cache_set is not None else None
        if way is None:
            return False, False
        dirty = cache_set.dirty[way]
        cache_set.tags[way] = None
        cache_set.dirty[way] = False
        return True, dirty

    def blocks_in_set(self, set_index: int) -> list[int]:
        """Resident block addresses of one set (eviction-priority first
        under LRU; fill order otherwise)."""
        cache_set = self._sets.get(set_index)
        if cache_set is None:
            return []
        if self.replacement == "lru":
            stack = cache_set.policy._stack  # LRU first
            return [
                cache_set.tags[w] for w in stack if cache_set.tags[w] is not None
            ]
        return [tag for tag in cache_set.tags if tag is not None]

    def occupancy(self) -> int:
        """Total resident blocks across all sets."""
        return sum(len(s.index_of) for s in self._sets.values())

    def state_snapshot(self) -> dict[int, tuple[tuple[int, bool], ...]]:
        """Canonical functional state: set index -> ordered (block, dirty).

        Ordering within a set is the eviction-priority order of
        :meth:`blocks_in_set`, so two caches with identical snapshots
        behave identically under future fills — the batch-vs-scalar
        equivalence property compares exactly this.
        """
        snapshot: dict[int, tuple[tuple[int, bool], ...]] = {}
        for set_index in sorted(self._sets):
            cache_set = self._sets[set_index]
            if not cache_set.index_of:
                continue
            entries = tuple(
                (block, cache_set.dirty[cache_set.index_of[block]])
                for block in self.blocks_in_set(set_index)
            )
            snapshot[set_index] = entries
        return snapshot

    def __iter__(self):
        for cache_set in self._sets.values():
            yield from cache_set.index_of.keys()

    def clear(self) -> None:
        # Matches the old eager clear(), which rebuilt set ``i`` with
        # policy seed ``i`` (not ``seed + i``): drop every set and let
        # lazy re-creation run from a zero seed base.
        self._sets = {}
        self._seed = 0
