"""Three-level data-cache hierarchy shared by the simulated cores.

Private L1/L2 per core, one shared inclusive L3 per socket.  The hierarchy
reports where an access hit and what got written back, but defers actual
memory traffic to the memory controller (the caller).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SecureProcessorConfig
from repro.core import Component
from repro.mem.block import block_address
from repro.mem.cache import SetAssocCache


@dataclass(slots=True)
class HierarchyResult:
    """Outcome of one data-cache access.

    ``hit_level`` is 1, 2 or 3, or ``None`` on a full miss; ``latency`` is
    the cycles spent in the hierarchy itself (lookup plus hit service);
    ``writebacks`` are dirty blocks pushed out to memory by this access.
    """

    hit_level: int | None
    latency: int
    writebacks: list[int] = field(default_factory=list)


class CoreCaches(Component):
    """The private L1/L2 pair of one core."""

    def __init__(self, config: SecureProcessorConfig, index: int = 0) -> None:
        self.l1 = SetAssocCache(config.l1)
        self.l2 = SetAssocCache(config.l2)
        self.init_component(f"core{index}.caches")

    def children(self):
        return (self.l1, self.l2)


class DataCacheSystem(Component):
    """All data caches of the machine (cores x sockets).

    The hierarchy is kept inclusive: a fill installs the block at every
    level, and an L3 eviction back-invalidates the private caches of its
    socket.  Inclusivity keeps the coherence story trivial while preserving
    the property the attacks rely on: a flushed or evicted block's next
    access reaches the memory controller.
    """

    def __init__(self, config: SecureProcessorConfig) -> None:
        self.config = config
        if config.cores % config.sockets != 0:
            raise ValueError("cores must divide evenly across sockets")
        self.cores_per_socket = config.cores // config.sockets
        self.core_caches = [CoreCaches(config, i) for i in range(config.cores)]
        self.l3s = [SetAssocCache(config.l3) for _ in range(config.sockets)]
        # Timing table, precomputed once: cumulative lookup cost after
        # probing 1, 2 or 3 levels.  The functional probes above never
        # carry latency themselves (see the functional/timing split in
        # docs/architecture.md); all hierarchy cycles come from here.
        l1, l2, l3 = (
            config.l1.hit_latency,
            config.l2.hit_latency,
            config.l3.hit_latency,
        )
        self.hit_latency = (l1, l1 + l2, l1 + l2 + l3)
        self.miss_lookup_latency = l1 + l2 + l3
        self.init_component("caches")

    def children(self):
        return (*self.core_caches, *self.l3s)

    def socket_of(self, core: int) -> int:
        return core // self.cores_per_socket

    def _l3_of(self, core: int) -> SetAssocCache:
        return self.l3s[self.socket_of(core)]

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, core: int, addr: int, *, is_write: bool) -> HierarchyResult:
        """Look up ``addr`` for ``core``; no fill happens on a miss."""
        block = block_address(addr)
        caches = self.core_caches[core]
        l3 = self._l3_of(core)
        hit_latency = self.hit_latency

        if caches.l1.lookup(block):
            if is_write:
                caches.l1.mark_dirty(block)
            return HierarchyResult(hit_level=1, latency=hit_latency[0])

        if caches.l2.lookup(block):
            result = self._promote_to_l1(core, block, dirty=is_write)
            result.hit_level = 2
            result.latency += hit_latency[1]
            return result

        if l3.lookup(block):
            result = self._promote_to_l1_l2(core, block, dirty=is_write)
            result.hit_level = 3
            result.latency += hit_latency[2]
            return result

        return HierarchyResult(hit_level=None, latency=self.miss_lookup_latency)

    def fill(self, core: int, addr: int, *, dirty: bool) -> list[int]:
        """Install a block fetched from memory at all levels.

        Returns dirty blocks evicted to memory as a side effect.
        """
        block = block_address(addr)
        writebacks: list[int] = []
        l3 = self._l3_of(core)
        l3_evt = l3.insert(block)
        if l3_evt.evicted_addr is not None:
            # Inclusive L3: back-invalidate private copies in this socket.
            dirty_private = self._back_invalidate(core, l3_evt.evicted_addr)
            if l3_evt.evicted_dirty or dirty_private:
                writebacks.append(l3_evt.evicted_addr)
        writebacks.extend(self._fill_private(core, block, dirty=dirty))
        return writebacks

    def _fill_private(self, core: int, block: int, *, dirty: bool) -> list[int]:
        caches = self.core_caches[core]
        writebacks: list[int] = []
        l2_evt = caches.l2.insert(block)
        if l2_evt.evicted_addr is not None and l2_evt.evicted_dirty:
            # Dirty L2 victim folds into the (inclusive) L3 copy if present,
            # otherwise it must go to memory.
            l3 = self._l3_of(core)
            if l3.contains(l2_evt.evicted_addr):
                l3.mark_dirty(l2_evt.evicted_addr)
            else:
                writebacks.append(l2_evt.evicted_addr)
        l1_evt = caches.l1.insert(block, dirty=dirty)
        if l1_evt.evicted_addr is not None and l1_evt.evicted_dirty:
            if caches.l2.contains(l1_evt.evicted_addr):
                caches.l2.mark_dirty(l1_evt.evicted_addr)
            else:
                l3 = self._l3_of(core)
                if l3.contains(l1_evt.evicted_addr):
                    l3.mark_dirty(l1_evt.evicted_addr)
                else:
                    writebacks.append(l1_evt.evicted_addr)
        return writebacks

    def _promote_to_l1(self, core: int, block: int, *, dirty: bool) -> HierarchyResult:
        writebacks = self._fill_l1_only(core, block, dirty=dirty)
        return HierarchyResult(hit_level=None, latency=0, writebacks=writebacks)

    def _promote_to_l1_l2(
        self, core: int, block: int, *, dirty: bool
    ) -> HierarchyResult:
        writebacks = self._fill_private(core, block, dirty=dirty)
        return HierarchyResult(hit_level=None, latency=0, writebacks=writebacks)

    def _fill_l1_only(self, core: int, block: int, *, dirty: bool) -> list[int]:
        caches = self.core_caches[core]
        writebacks: list[int] = []
        l1_evt = caches.l1.insert(block, dirty=dirty)
        if l1_evt.evicted_addr is not None and l1_evt.evicted_dirty:
            if caches.l2.contains(l1_evt.evicted_addr):
                caches.l2.mark_dirty(l1_evt.evicted_addr)
            else:
                writebacks.append(l1_evt.evicted_addr)
        return writebacks

    def _back_invalidate(self, core: int, block: int) -> bool:
        """Remove ``block`` from all private caches in ``core``'s socket."""
        socket = self.socket_of(core)
        dirty_any = False
        first = socket * self.cores_per_socket
        for caches in self.core_caches[first : first + self.cores_per_socket]:
            for cache in (caches.l1, caches.l2):
                _, dirty = cache.invalidate(block)
                dirty_any = dirty_any or dirty
        return dirty_any

    # ------------------------------------------------------------------
    # Maintenance operations
    # ------------------------------------------------------------------

    def flush(self, addr: int) -> tuple[bool, list[int]]:
        """clflush analogue: drop the block machine-wide.

        Returns (was_dirty_anywhere, writebacks) — dirty copies must be
        written back (the processor routes them to the memory controller).
        """
        block = block_address(addr)
        dirty_any = False
        for caches in self.core_caches:
            for cache in (caches.l1, caches.l2):
                _, dirty = cache.invalidate(block)
                dirty_any = dirty_any or dirty
        for l3 in self.l3s:
            _, dirty = l3.invalidate(block)
            dirty_any = dirty_any or dirty
        return dirty_any, ([block] if dirty_any else [])

    def contains(self, addr: int) -> bool:
        """True if any cache in the machine holds the block (no side effects)."""
        block = block_address(addr)
        if any(l3.contains(block) for l3 in self.l3s):
            return True
        return any(
            caches.l1.contains(block) or caches.l2.contains(block)
            for caches in self.core_caches
        )
