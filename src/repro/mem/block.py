"""Physical-address decomposition helpers.

All simulator state is tracked at 64-byte block granularity; pages are
4 KiB.  These helpers are free functions (not methods) because every layer
— caches, metadata layout, attacks — needs them.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE, PAGE_SIZE
from repro.utils.bitops import log2_exact

_BLOCK_SHIFT = log2_exact(BLOCK_SIZE)
_PAGE_SHIFT = log2_exact(PAGE_SIZE)
# Mask form of the block alignment: this sits on every simulated access,
# so it is a single AND rather than an ``align_down`` call.
BLOCK_MASK = ~(BLOCK_SIZE - 1)


def block_address(addr: int) -> int:
    """Align ``addr`` down to its containing 64-byte block."""
    return addr & BLOCK_MASK


def block_index(addr: int) -> int:
    """Global block number of the block containing ``addr``."""
    return addr >> _BLOCK_SHIFT


def block_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its block."""
    return addr & (BLOCK_SIZE - 1)


def page_index(addr: int) -> int:
    """Physical page (frame) number containing ``addr``."""
    return addr >> _PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def bank_of(addr: int, banks: int) -> int:
    """DRAM bank servicing the block at ``addr``.

    Banks interleave at block granularity with higher address bits XOR-
    folded in (the standard bank-hash): consecutive blocks — and therefore
    the blocks of one counter-sharing group — stripe across every bank,
    while distinct page-aligned structures (counter region, tree levels) do
    not all alias onto bank 0.  The mapping stays fully deterministic, so
    an attacker can still pick a probe block in any chosen bank, matching
    the paper's Figure-8 same-bank setup.
    """
    block = block_index(addr)
    folded = block ^ (block >> 7) ^ (block >> 15) ^ (block >> 23)
    return folded % banks
