"""Open-row DRAM bank timing model.

Latency of an access = bus transfer + (row hit | row miss) + any wait for
the bank to become free.  Banks can be marked *busy* for long stretches —
that is how counter-overflow re-encryption bursts (Section V, Figure 8)
delay concurrent reads and become observable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig
from repro.core import Component
from repro.mem.block import bank_of
from repro.trace.counters import CounterRegistry


@dataclass
class _BankState:
    open_row: int | None = None
    busy_until: int = 0


class DramModel(Component):
    """A rank of open-row banks with per-bank busy tracking."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._banks = [_BankState() for _ in range(config.banks)]
        # Memoised pure decomposition addr -> (bank index, row).  The
        # working set of distinct block addresses in any run is tiny
        # compared to the access count, so the table converges fast.
        self._decompose: dict[int, tuple[int, int]] = {}
        self.counters = CounterRegistry()
        self._reads = self.counters.counter("reads")
        self._writes = self.counters.counter("writes")
        self._row_hits = self.counters.counter("row_hits")
        self._row_misses = self.counters.counter("row_misses")
        self.counters.gauge("max_busy_until", self.max_busy_until)
        # Instrument slots (tracer for every access, fault_hook for
        # campaign triggers) are created detached by the component graph.
        self.init_component("dram")

    # ------------------------------------------------------------------
    # Legacy tally attributes (now registry-backed)
    # ------------------------------------------------------------------

    @property
    def reads(self) -> int:
        return self._reads.value

    @reads.setter
    def reads(self, value: int) -> None:
        self._reads.value = value

    @property
    def writes(self) -> int:
        return self._writes.value

    @writes.setter
    def writes(self, value: int) -> None:
        self._writes.value = value

    def _row_of(self, addr: int) -> int:
        return addr // self.config.row_size

    def bank_of(self, addr: int) -> int:
        return bank_of(addr, self.config.banks)

    def decompose(self, addr: int) -> tuple[int, int]:
        """Pure address decomposition: (bank index, row), memoised."""
        parts = self._decompose.get(addr)
        if parts is None:
            parts = (bank_of(addr, self.config.banks), addr // self.config.row_size)
            self._decompose[addr] = parts
        return parts

    def access(self, addr: int, now: int, *, is_write: bool = False) -> int:
        """Perform one block access starting at cycle ``now``; return latency.

        The returned latency includes any stall waiting for the target bank
        to finish earlier work (e.g. a re-encryption burst).
        """
        wait, service = self.access_parts(addr, now, is_write=is_write)
        return wait + service

    def access_parts(
        self, addr: int, now: int, *, is_write: bool = False
    ) -> tuple[int, int]:
        """One block access, split into (bank-queue wait, service + bus).

        ``sum(access_parts(...)) == access(...)`` by construction; the cycle
        attributor uses the split to separate DRAM queueing from service.
        """
        if self.fault_hook is not None:
            self.fault_hook.on_dram_access(addr, now, is_write=is_write)
        bank_index, row = self.decompose(addr)
        bank = self._banks[bank_index]
        wait = max(0, bank.busy_until - now)
        if bank.open_row == row:
            service = self.config.row_hit_latency
            self._row_hits.value += 1
        else:
            service = self.config.row_miss_latency
            self._row_misses.value += 1
            bank.open_row = row
        service += self.config.bus_latency
        bank.busy_until = now + wait + service
        if is_write:
            self._writes.value += 1
        else:
            self._reads.value += 1
        if self.tracer is not None:
            self.tracer.emit(
                "dram",
                "write" if is_write else "read",
                cycle=now,
                addr=addr,
                set_index=bank_index,
                value=wait + service,
            )
        return wait, service

    def occupy_bank(self, addr: int, now: int, duration: int) -> None:
        """Keep the bank serving ``addr`` busy for ``duration`` extra cycles."""
        bank = self._banks[self.bank_of(addr)]
        bank.busy_until = max(bank.busy_until, now) + duration

    def occupy_all(self, now: int, duration: int) -> None:
        """Keep every bank busy (whole-rank burst, e.g. group re-encryption)."""
        for bank in self._banks:
            bank.busy_until = max(bank.busy_until, now) + duration

    def busy_until(self, addr: int) -> int:
        return self._banks[self.bank_of(addr)].busy_until

    def max_busy_until(self) -> int:
        """Cycle by which every bank is idle again."""
        return max(bank.busy_until for bank in self._banks)
