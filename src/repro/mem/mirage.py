"""MIRAGE-style randomized cache (Saileshwar & Qureshi, USENIX Sec'21).

Used for the Figure-18 defense study: MIRAGE gives a fully-associative-
equivalent cache via (i) a tag store split into two skews with extra
invalid tags and keyed randomized set indexing, and (ii) a decoupled data
store with *global random eviction*.  Conflict-based eviction-set attacks
(Prime+Probe) are defeated, but — as the paper argues — an attacker that
only needs the *target* block evicted can still do so with enough random
accesses, since global random eviction touches every resident block with
equal probability.
"""

from __future__ import annotations

import hashlib

from repro.config import BLOCK_SIZE
from repro.utils.bitops import log2_exact
from repro.utils.rng import derive_rng


class MirageCache:
    """Two-skew randomized tag store over a globally-evicted data store."""

    def __init__(
        self,
        size_bytes: int = 256 * 1024,
        *,
        base_ways: int = 8,
        extra_ways: int = 6,
        skews: int = 2,
        block_size: int = BLOCK_SIZE,
        seed: int = 1,
    ) -> None:
        self.block_size = block_size
        self._block_shift = log2_exact(block_size)
        self.data_capacity = size_bytes // block_size
        self.skews = skews
        self.ways_per_skew = base_ways + extra_ways
        # Tag capacity per skew equals data capacity (so the provisioned
        # extra ways show up as extra sets' worth of invalid tags).
        sets_total = self.data_capacity // base_ways
        self.sets_per_skew = max(1, sets_total // skews)
        self._skew_keys = [
            derive_rng(seed, f"skew-{i}").getrandbits(64) for i in range(skews)
        ]
        self._rng = derive_rng(seed, "gle")
        # skew -> set -> {addr}
        self._tags: list[list[set[int]]] = [
            [set() for _ in range(self.sets_per_skew)] for _ in range(skews)
        ]
        self._resident: set[int] = set()
        # Parallel list + index map for O(1) uniform random eviction.
        self._resident_list: list[int] = []
        self._resident_index: dict[int, int] = {}
        self._location: dict[int, tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.set_assoc_evictions = 0
        self.global_evictions = 0

    # ------------------------------------------------------------------

    def _block(self, addr: int) -> int:
        return addr >> self._block_shift

    def _set_index(self, skew: int, block: int) -> int:
        digest = hashlib.blake2b(
            block.to_bytes(8, "little"),
            digest_size=8,
            key=self._skew_keys[skew].to_bytes(8, "little"),
        ).digest()
        return int.from_bytes(digest, "little") % self.sets_per_skew

    # ------------------------------------------------------------------

    def contains(self, addr: int) -> bool:
        return self._block(addr) in self._resident

    def access(self, addr: int) -> bool:
        """Access a block; install on miss. Returns True on hit."""
        block = self._block(addr)
        if block in self._resident:
            self.hits += 1
            return True
        self.misses += 1
        self._install(block)
        return False

    def _install(self, block: int) -> None:
        # Data store full? Global random eviction first.
        if len(self._resident) >= self.data_capacity:
            victim = self._resident_list[
                self._rng.randrange(len(self._resident_list))
            ]
            self._remove(victim)
            self.global_evictions += 1
        # Power-of-two-choices skew selection: prefer the emptier set.
        candidates = [
            (skew, self._set_index(skew, block)) for skew in range(self.skews)
        ]
        loads = [len(self._tags[skew][s]) for skew, s in candidates]
        best = min(range(self.skews), key=lambda i: loads[i])
        skew, set_index = candidates[best]
        tag_set = self._tags[skew][set_index]
        if len(tag_set) >= self.ways_per_skew:
            # Set-associative eviction — MIRAGE engineers this to be
            # astronomically rare; we count it to prove the model behaves.
            victim = self._rng.choice(tuple(tag_set))
            self._remove(victim)
            self.set_assoc_evictions += 1
        tag_set.add(block)
        self._resident.add(block)
        self._resident_index[block] = len(self._resident_list)
        self._resident_list.append(block)
        self._location[block] = (skew, set_index)

    def _remove(self, block: int) -> None:
        skew, set_index = self._location.pop(block)
        self._tags[skew][set_index].discard(block)
        self._resident.discard(block)
        # Swap-pop from the eviction list.
        index = self._resident_index.pop(block)
        last = self._resident_list.pop()
        if last != block:
            self._resident_list[index] = last
            self._resident_index[last] = index

    def occupancy(self) -> int:
        return len(self._resident)
