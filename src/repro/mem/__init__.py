"""Memory substrate: caches, DRAM timing, and the memory controller.

This package knows nothing about security metadata; it provides the plain
microarchitectural building blocks (set-associative caches, open-row DRAM
banks, read/write queues) that ``repro.secmem`` and ``repro.proc`` compose
into a secure processor.
"""

from repro.mem.block import (
    bank_of,
    block_address,
    block_index,
    block_offset,
    page_index,
    page_offset,
)
from repro.mem.cache import CacheAccess, SetAssocCache
from repro.mem.dram import DramModel
from repro.mem.hierarchy import CoreCaches, DataCacheSystem
from repro.mem.memctrl import MemoryController, WriteQueueEntry
from repro.mem.mirage import MirageCache

__all__ = [
    "bank_of",
    "block_address",
    "block_index",
    "block_offset",
    "page_index",
    "page_offset",
    "CacheAccess",
    "SetAssocCache",
    "DramModel",
    "CoreCaches",
    "DataCacheSystem",
    "MemoryController",
    "WriteQueueEntry",
    "MirageCache",
]
