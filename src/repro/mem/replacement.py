"""Replacement policies for the set-associative caches.

LRU is the default everywhere (and what the paper's mEvict analysis
assumes); tree-PLRU approximates real L2/LLC hardware; RANDOM is the
classic obfuscation knob.  The metadata-cache sweep in
``repro.analysis.sweeps`` uses these to show that MetaLeak-T survives
replacement-policy changes — eviction sets just need a few more entries.
"""

from __future__ import annotations

import abc

from repro.utils.rng import DeterministicRng, derive_rng


class ReplacementPolicy(abc.ABC):
    """Per-set victim selection over a fixed number of ways."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, way: int) -> None:
        """A resident way was touched."""

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """A way was (re)filled."""

    @abc.abstractmethod
    def victim(self, occupied: list[bool]) -> int:
        """Choose the way to evict (all ways occupied)."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used via an age stack."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._stack: list[int] = []  # LRU first

    def on_access(self, way: int) -> None:
        stack = self._stack
        if stack and stack[-1] == way:
            return  # already MRU (the common case on repeated hits)
        if way in stack:
            stack.remove(way)
        stack.append(way)

    def on_fill(self, way: int) -> None:
        self.on_access(way)

    def victim(self, occupied: list[bool]) -> int:
        for way in self._stack:
            if occupied[way]:
                return way
        return 0


class TreePlruPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (the common hardware approximation)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError("tree-PLRU needs a power-of-two way count")
        self._bits = [0] * max(1, ways - 1)

    def _walk_update(self, way: int) -> None:
        node = 0
        span = self.ways
        while span > 1:
            half = span // 2
            go_right = way % span >= half
            # Point away from the touched half.
            self._bits[node] = 0 if go_right else 1
            node = 2 * node + (2 if go_right else 1)
            way %= span
            if go_right:
                way -= half
            span = half

    def on_access(self, way: int) -> None:
        self._walk_update(way)

    def on_fill(self, way: int) -> None:
        self._walk_update(way)

    def victim(self, occupied: list[bool]) -> int:
        node = 0
        base = 0
        span = self.ways
        while span > 1:
            half = span // 2
            go_right = self._bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                base += half
            span = half
        return base


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic under the experiment seed)."""

    def __init__(self, ways: int, rng: DeterministicRng | None = None) -> None:
        super().__init__(ways)
        self._rng = rng or derive_rng(0, "random-repl")

    def on_access(self, way: int) -> None:  # pragma: no cover - trivial
        pass

    def on_fill(self, way: int) -> None:  # pragma: no cover - trivial
        pass

    def victim(self, occupied: list[bool]) -> int:
        return self._rng.randrange(self.ways)


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by config name."""
    if name == "lru":
        return LruPolicy(ways)
    if name == "plru":
        return TreePlruPolicy(ways)
    if name == "random":
        return RandomPolicy(ways, derive_rng(seed, "random-repl"))
    raise ValueError(f"unknown replacement policy {name!r}")
