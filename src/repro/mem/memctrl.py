"""Memory controller: read servicing plus a merging write queue.

Writes are *posted*: the issuing core pays only the enqueue cost, and the
queue drains in the background, occupying DRAM banks.  Two properties the
paper's MetaLeak-C analysis (Section VI-B) depends on are modelled
explicitly:

* writes to a block already pending in the queue are **merged** — the block
  is written (and its encryption counter bumped) once, not twice;
* the queue drains when it passes its high watermark, or when the attacker
  forces a drain (redundant writes / explicit flush), and the drain burst
  makes banks busy, delaying concurrently timed reads.

Security work done at write-service time (encryption, counter increment,
possible overflow handling) is delegated to a ``write_sink`` callback
installed by the memory encryption engine, keeping this module free of
metadata knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import DramConfig, MemCtrlConfig
from repro.core import NULL_TXN, Component, Txn
from repro.mem.block import block_address
from repro.mem.dram import DramModel
from repro.trace.counters import CounterRegistry

# Cycles to place a request into a controller queue.
_ENQUEUE_LATENCY = 4
# Cycles to forward read data straight out of the write queue.
_FORWARD_LATENCY = 20

WriteSink = Callable[[int, int], int]
"""(block_addr, service_cycle) -> extra engine cycles for this write."""


@dataclass
class WriteQueueEntry:
    addr: int
    enqueued_at: int
    merged: int = 0


class MemoryController(Component):
    """FR-FCFS-flavoured controller front-ending one DRAM rank."""

    def __init__(self, config: MemCtrlConfig, dram_config: DramConfig) -> None:
        self.config = config
        self.dram = DramModel(dram_config)
        self._write_queue: dict[int, WriteQueueEntry] = {}
        self._write_sink: WriteSink | None = None
        self.counters = CounterRegistry()
        self._reads_serviced = self.counters.counter("reads_serviced")
        self._writes_serviced = self.counters.counter("writes_serviced")
        self._writes_merged = self.counters.counter("writes_merged")
        self._drains = self.counters.counter("drains")
        self._writes_dropped = self.counters.counter("writes_dropped")
        self.counters.gauge("write_queue_depth", self.pending_writes)
        # Instrument slots (tracer, fault_hook — the latter may drop or
        # reorder drain bursts) are created detached by the component graph.
        self.init_component("memctrl")

    def children(self):
        return (self.dram,)

    # ------------------------------------------------------------------
    # Legacy tally attributes (now registry-backed)
    # ------------------------------------------------------------------

    @property
    def reads_serviced(self) -> int:
        return self._reads_serviced.value

    @reads_serviced.setter
    def reads_serviced(self, value: int) -> None:
        self._reads_serviced.value = value

    @property
    def writes_serviced(self) -> int:
        return self._writes_serviced.value

    @writes_serviced.setter
    def writes_serviced(self, value: int) -> None:
        self._writes_serviced.value = value

    @property
    def writes_merged(self) -> int:
        return self._writes_merged.value

    @writes_merged.setter
    def writes_merged(self, value: int) -> None:
        self._writes_merged.value = value

    @property
    def drains(self) -> int:
        return self._drains.value

    @drains.setter
    def drains(self, value: int) -> None:
        self._drains.value = value

    @property
    def writes_dropped(self) -> int:
        return self._writes_dropped.value

    @writes_dropped.setter
    def writes_dropped(self, value: int) -> None:
        self._writes_dropped.value = value

    def set_write_sink(self, sink: WriteSink) -> None:
        """Install the security-engine callback run when a write services."""
        self._write_sink = sink

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_block(self, addr: int, now: int, txn: Txn = NULL_TXN) -> int:
        """Service a block read at cycle ``now``; return its latency.

        This is the timing (``charge``) step of the memory path: the DRAM
        model decomposes the address (memoised bank/row) and mutates bank
        state, while every cycle the core observes is charged here.  While
        the transaction is profiling, the latency is charged in parts
        whose sum equals the return value: ``queue`` (enqueue plus bank
        wait), ``service`` (DRAM row service plus bus transfer) and
        ``forward`` (store-to-load forward out of the write queue).
        """
        block = block_address(addr)
        if block in self._write_queue:
            txn.charge("forward", _FORWARD_LATENCY)
            if self.tracer is not None:
                self.tracer.emit(
                    "memctrl", "read_forward", cycle=now, addr=block,
                    value=_FORWARD_LATENCY,
                )
            return _FORWARD_LATENCY
        self._reads_serviced.value += 1
        wait, service = self.dram.access_parts(block, now + _ENQUEUE_LATENCY)
        txn.charge("queue", _ENQUEUE_LATENCY + wait)
        txn.charge("service", service)
        latency = _ENQUEUE_LATENCY + wait + service
        if self.tracer is not None:
            self.tracer.emit(
                "memctrl", "read", cycle=now, addr=block, value=latency
            )
        return latency

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def enqueue_write(self, addr: int, now: int) -> int:
        """Post a block write; returns the (small) cycles the core observes."""
        block = block_address(addr)
        entry = self._write_queue.get(block)
        if entry is not None:
            if self.config.write_merge:
                entry.merged += 1
                self._writes_merged.value += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "memctrl", "write_merge", cycle=now, addr=block
                    )
                return _ENQUEUE_LATENCY
            # Without merging, an in-queue duplicate forces ordering: drain.
            self.drain(now)
        watermark = int(self.config.write_queue_entries * self.config.drain_watermark)
        if len(self._write_queue) >= watermark:
            self.drain(now)
        self._write_queue[block] = WriteQueueEntry(addr=block, enqueued_at=now)
        if self.tracer is not None:
            self.tracer.emit(
                "memctrl", "write_enqueue", cycle=now, addr=block,
                value=len(self._write_queue),
            )
        return _ENQUEUE_LATENCY

    def drain(self, now: int) -> int:
        """Service every queued write starting at ``now``.

        Banks are left busy until the drain burst completes; the caller's
        own clock does not advance (posted writes), so a concurrently timed
        read observes the burst as extra wait — the Figure-8 signal.
        Returns the cycle at which the drain finishes.
        """
        if not self._write_queue:
            return now
        self._drains.value += 1
        t = now
        entries = list(self._write_queue.values())
        self._write_queue.clear()
        if self.fault_hook is not None:
            kept = self.fault_hook.on_write_drain(entries)
            self._writes_dropped.value += len(entries) - len(kept)
            entries = kept
        if self.tracer is not None:
            self.tracer.emit(
                "memctrl", "drain", cycle=now, value=len(entries)
            )
        for entry in entries:
            t += self.dram.access(entry.addr, t, is_write=True)
            self._writes_serviced.value += 1
            if self._write_sink is not None:
                t += self._write_sink(entry.addr, t)
            if self.tracer is not None:
                self.tracer.emit(
                    "memctrl", "write_service", cycle=t, addr=entry.addr
                )
        return t

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending_writes(self) -> int:
        return len(self._write_queue)

    def write_pending_for(self, addr: int) -> bool:
        return block_address(addr) in self._write_queue
