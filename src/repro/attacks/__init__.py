"""MetaLeak: side channels through security metadata (Section VI).

The framework exposes the paper's two attack variants plus the shared
machinery they are built from:

* :class:`~repro.attacks.mapping.MetadataMapper` — derive counter/tree-node
  addresses and metadata-cache sets from data addresses, and find attacker
  frames that map where needed;
* :class:`~repro.attacks.mapping.MetadataEvictor` — evict chosen metadata
  blocks using only data accesses (the indirection trick of Section VI-A);
* :class:`~repro.attacks.metaleak_t.MetaLeakT` — mEvict+mReload monitoring
  of shared integrity-tree nodes;
* :class:`~repro.attacks.metaleak_c.MetaLeakC` — mPreset+mOverflow write
  monitoring through tree-counter overflow;
* covert channels built on each variant (Figures 11 and 14), with an
  optional reliable framing layer (sync preambles, Hamming(7,4) + CRC-8,
  bounded ARQ) in :mod:`~repro.attacks.framing`;
* calibration, adaptive-threshold resilience and noise utilities.
"""

from repro.attacks.calibration import LatencyCalibrator
from repro.attacks.covert import ChannelReport, CovertChannelC, CovertChannelT
from repro.attacks.framing import (
    BitSymbolAdapter,
    FramedReport,
    ReliableChannel,
    crc8,
    decode_stream,
    encode_frame,
    hamming74_decode,
    hamming74_encode,
)
from repro.attacks.mapping import MetadataEvictor, MetadataMapper
from repro.attacks.metaleak_c import MetaLeakC, OverflowScan
from repro.attacks.metaleak_t import MetaLeakT, ReloadObservation, TreeNodeMonitor
from repro.attacks.noise import NoiseProcess
from repro.attacks.resilience import (
    MIN_CALIBRATION_QUALITY,
    AdaptiveThresholdTracker,
    BandStats,
    Calibration,
    score_calibration,
)
from repro.attacks.search import EvictionSetSearch, SearchOutcome

__all__ = [
    "AdaptiveThresholdTracker",
    "BandStats",
    "BitSymbolAdapter",
    "Calibration",
    "ChannelReport",
    "CovertChannelC",
    "CovertChannelT",
    "EvictionSetSearch",
    "FramedReport",
    "LatencyCalibrator",
    "MIN_CALIBRATION_QUALITY",
    "MetadataEvictor",
    "MetadataMapper",
    "MetaLeakC",
    "MetaLeakT",
    "NoiseProcess",
    "OverflowScan",
    "ReliableChannel",
    "ReloadObservation",
    "SearchOutcome",
    "TreeNodeMonitor",
    "crc8",
    "decode_stream",
    "encode_frame",
    "hamming74_decode",
    "hamming74_encode",
    "score_calibration",
]
