"""MetaLeak: side channels through security metadata (Section VI).

The framework exposes the paper's two attack variants plus the shared
machinery they are built from:

* :class:`~repro.attacks.mapping.MetadataMapper` — derive counter/tree-node
  addresses and metadata-cache sets from data addresses, and find attacker
  frames that map where needed;
* :class:`~repro.attacks.mapping.MetadataEvictor` — evict chosen metadata
  blocks using only data accesses (the indirection trick of Section VI-A);
* :class:`~repro.attacks.metaleak_t.MetaLeakT` — mEvict+mReload monitoring
  of shared integrity-tree nodes;
* :class:`~repro.attacks.metaleak_c.MetaLeakC` — mPreset+mOverflow write
  monitoring through tree-counter overflow;
* covert channels built on each variant (Figures 11 and 14);
* calibration and noise utilities.
"""

from repro.attacks.calibration import LatencyCalibrator
from repro.attacks.covert import CovertChannelC, CovertChannelT
from repro.attacks.mapping import MetadataEvictor, MetadataMapper
from repro.attacks.metaleak_c import MetaLeakC
from repro.attacks.metaleak_t import MetaLeakT, TreeNodeMonitor
from repro.attacks.noise import NoiseProcess

__all__ = [
    "LatencyCalibrator",
    "CovertChannelC",
    "CovertChannelT",
    "MetadataEvictor",
    "MetadataMapper",
    "MetaLeakC",
    "MetaLeakT",
    "TreeNodeMonitor",
    "NoiseProcess",
]
