"""Calibration quality scoring and adaptive threshold tracking.

The attack layer's thresholds were historically calibrated once and
trusted forever.  On a noisy machine that is exactly wrong: co-running
traffic, a defense toggling mid-run, or plain drift shifts the fast/slow
reload bands, and a threshold that silently stops separating them makes
every attack above it emit confident garbage.  This module gives every
monitor three things:

* :func:`score_calibration` — a quality score over the two calibration
  bands.  Degenerate calibrations (overlapping bands, a forced threshold
  that does not even sit between the band means) score 0 instead of
  producing a meaningless threshold, and every reload scored against such
  a calibration reports zero confidence;
* :class:`Calibration.confidence` — per-observation confidence from the
  latency's margin to the threshold, scaled by the calibration quality,
  so downstream decoders can carry honest per-bit confidence;
* :class:`AdaptiveThresholdTracker` — an online drift detector over the
  recent reload window.  It re-runs an Otsu split over the window and
  flags drift when the window shows two well-separated bands that the
  current threshold fails to sit between, or when observations stray far
  from both calibrated bands.  Monitors react by re-calibrating, and a
  fresh calibration is only adopted if its quality is acceptable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.stats import otsu_threshold

#: Calibrations scoring below this are considered unusable (degraded).
MIN_CALIBRATION_QUALITY = 0.25


@dataclass(frozen=True)
class BandStats:
    """Mean/spread summary of one calibration latency band."""

    mean: float
    spread: float  # population standard deviation
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BandStats":
        if not samples:
            raise ValueError("cannot summarise an empty calibration band")
        values = [float(v) for v in samples]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean=mean, spread=variance**0.5, count=len(values))


@dataclass(frozen=True)
class Calibration:
    """A scored threshold between a fast and a slow latency band."""

    threshold: float
    fast: BandStats
    slow: BandStats
    quality: float  # 0 (degenerate) .. 1 (clean separation)

    @property
    def separation(self) -> float:
        return self.slow.mean - self.fast.mean

    @property
    def ok(self) -> bool:
        return self.quality >= MIN_CALIBRATION_QUALITY

    def confidence(self, latency: float) -> float:
        """Confidence in classifying one reload latency, in [0, 1].

        Margin to the threshold in units of half the band separation,
        scaled by the calibration quality: a perfectly separated pair of
        bands yields confidence ~1 for on-band observations, while a
        degenerate calibration yields 0 no matter how decisive the
        latency looks — certainty against a broken ruler is fabricated.
        """
        if self.quality <= 0.0:
            return 0.0
        scale = max(1.0, self.separation / 2)
        margin = min(1.0, abs(float(latency) - self.threshold) / scale)
        return margin * min(1.0, self.quality)


def score_calibration(
    fast_samples: Sequence[float],
    slow_samples: Sequence[float],
    *,
    threshold: float | None = None,
) -> Calibration:
    """Score a (fast, slow) calibration sample pair.

    With ``threshold=None`` the midpoint of the band means is used (the
    symmetric-margin choice the monitors have always made).  Passing an
    explicit threshold scores *that* threshold against the measured
    bands — the honesty check for caller-supplied thresholds.

    Quality components:

    * ordering — the slow band must actually be slower;
    * placement — the threshold must sit strictly between the band means;
    * separation — band distance relative to the within-band spreads;
    * leakage — calibration samples already falling on the wrong side of
      the threshold are evidence of overlap and discount the score.
    """
    fast = BandStats.from_samples(fast_samples)
    slow = BandStats.from_samples(slow_samples)
    if threshold is None:
        threshold = (fast.mean + slow.mean) / 2
    threshold = float(threshold)

    if slow.mean <= fast.mean or not fast.mean < threshold < slow.mean:
        return Calibration(threshold=threshold, fast=fast, slow=slow, quality=0.0)

    separation = slow.mean - fast.mean
    spread = fast.spread + slow.spread
    separation_quality = separation / (separation + 2 * spread + 1e-9)
    misclassified = sum(1 for v in fast_samples if float(v) >= threshold) + sum(
        1 for v in slow_samples if float(v) < threshold
    )
    leak_rate = misclassified / (fast.count + slow.count)
    quality = separation_quality * max(0.0, 1.0 - 2.0 * leak_rate)
    return Calibration(threshold=threshold, fast=fast, slow=slow, quality=quality)


class AdaptiveThresholdTracker:
    """Online drift detector over a monitor's recent reload latencies.

    Every ``check_every`` observations (once ``min_window`` samples are
    buffered) two tests run:

    * **band stray** — a majority of the window sits far from *both*
      calibrated band means: the bands themselves have moved;
    * **threshold misplacement** — an Otsu split over the window finds
      two bands separated by at least half the calibrated separation,
      and the current threshold does not lie between them: the bands are
      fine but the threshold is not (stale or mis-set).

    Uniform windows (an all-ones or all-zeros stretch of traffic) fire
    neither test: Otsu refuses degenerate samples and on-band
    observations are never strays, so legitimate one-sided payloads do
    not trigger spurious re-calibration.
    """

    def __init__(
        self,
        calibration: Calibration,
        *,
        window: int = 32,
        min_window: int = 12,
        check_every: int = 8,
        stray_tolerance: float = 4.0,
        stray_fraction: float = 0.5,
    ) -> None:
        if window <= 0 or min_window <= 0 or check_every <= 0:
            raise ValueError(
                "window, min_window and check_every must all be positive"
            )
        if min_window > window:
            raise ValueError(
                f"min_window ({min_window}) cannot exceed window ({window})"
            )
        self.calibration = calibration
        self.window = window
        self.min_window = min_window
        self.check_every = check_every
        self.stray_tolerance = stray_tolerance
        self.stray_fraction = stray_fraction
        self._samples: deque[float] = deque(maxlen=window)
        self._since_check = 0
        self.checks = 0
        self.drifts = 0

    def rebase(self, calibration: Calibration) -> None:
        """Adopt a fresh calibration and restart the observation window."""
        self.calibration = calibration
        self._samples.clear()
        self._since_check = 0

    def observe(self, latency: float, threshold: float) -> bool:
        """Record one reload latency; True when drift was just detected."""
        self._samples.append(float(latency))
        self._since_check += 1
        if (
            len(self._samples) < self.min_window
            or self._since_check < self.check_every
        ):
            return False
        self._since_check = 0
        self.checks += 1
        drifted = self._bands_moved() or self._threshold_misplaced(threshold)
        if drifted:
            self.drifts += 1
        return drifted

    # ------------------------------------------------------------------

    def _band_scale(self, band: BandStats) -> float:
        return max(
            band.spread * self.stray_tolerance,
            abs(self.calibration.separation) / 4,
            4.0,
        )

    def _bands_moved(self) -> bool:
        cal = self.calibration
        fast_scale = self._band_scale(cal.fast)
        slow_scale = self._band_scale(cal.slow)
        strays = sum(
            1
            for value in self._samples
            if abs(value - cal.fast.mean) > fast_scale
            and abs(value - cal.slow.mean) > slow_scale
        )
        return strays / len(self._samples) > self.stray_fraction

    def _threshold_misplaced(self, threshold: float) -> bool:
        try:
            cut = otsu_threshold(list(self._samples))
        except ValueError:
            return False  # uniform window: nothing to split
        low = [v for v in self._samples if v < cut]
        high = [v for v in self._samples if v >= cut]
        if len(low) < 3 or len(high) < 3:
            return False
        low_mean = sum(low) / len(low)
        high_mean = sum(high) / len(high)
        # Ignore micro-splits of measurement jitter within a single band.
        if high_mean - low_mean < max(self.calibration.separation * 0.5, 8.0):
            return False
        return not low_mean < threshold < high_mean


def mean_confidence(confidences: Iterable[float]) -> float:
    """Mean of a confidence sequence; 0.0 for an empty one."""
    values = list(confidences)
    if not values:
        return 0.0
    return sum(values) / len(values)
