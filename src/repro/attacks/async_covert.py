"""Asynchronous MetaLeak-T covert channel — no lockstep assumption.

:class:`~repro.attacks.covert.CovertChannelT` drives trojan and spy in
strict alternation, which is why its boundary set looks redundant.  Real
parties free-run; this variant models that: the spy oversamples — several
mEvict+mReload rounds per trojan bit — and recovers bit windows from the
*boundary* node's hit pattern, exactly the protocol of Figure 11: "Each
band denotes one-bit transmission window (separated by a hit in the
boundary set)."

The trojan is a generator that performs its accesses when scheduled; a
deterministic (seeded) interleaver decides who runs each quantum, so the
spy's samples per bit vary run to run like they would on a live machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.attacks.covert import CovertChannelT
from repro.attacks.noise import NoiseProcess
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.rng import derive_rng
from repro.utils.stats import accuracy


@dataclass
class AsyncReport:
    sent: list[int]
    received: list[int]
    samples: int
    windows_found: int
    raw: list[tuple[bool, bool]] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return accuracy(self.received, self.sent)


class AsyncCovertChannelT(CovertChannelT):
    """Free-running variant: spy oversamples, decodes via the boundary set."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        trojan_core: int = 0,
        spy_core: int = 1,
        level: int = 0,
        noise: NoiseProcess | None = None,
        spy_rounds_per_bit: int = 3,
        seed: int = 23,
    ) -> None:
        super().__init__(
            proc,
            allocator,
            trojan_core=trojan_core,
            spy_core=spy_core,
            level=level,
            noise=noise,
        )
        if spy_rounds_per_bit < 2:
            raise ValueError("the spy must oversample (>= 2 rounds per bit)")
        self.spy_rounds_per_bit = spy_rounds_per_bit
        self._rng = derive_rng(seed, "async-covert")

    def _trojan_generator(
        self, bits: list[int]
    ) -> Generator[None, None, None]:
        """The trojan's own program: one boundary-delimited window per bit."""
        for bit in bits:
            if bit:
                self._trojan_access(self._trojan_tx)
            self._trojan_access(self._trojan_bd)  # closes the bit window
            yield

    def _spy_round(self) -> tuple[bool, bool]:
        """One spy round; returns (boundary_seen, tx_seen)."""
        _, boundary_seen = self.bd_monitor.m_reload()
        _, tx_seen = self.tx_monitor.m_reload()
        self.bd_monitor.m_evict()
        self.tx_monitor.m_evict()
        if self.noise is not None:
            self.noise.step()
        return boundary_seen, tx_seen

    def transmit_async(self, bits: list[int]) -> AsyncReport:
        """Run trojan and spy interleaved; decode from boundary windows."""
        trojan = self._trojan_generator(bits)
        trojan_done = False
        observations: list[tuple[bool, bool]] = []
        # Prime: one evict pass so the first reload means something.
        self.tx_monitor.m_evict()
        self.bd_monitor.m_evict()
        spy_budget = len(bits) * self.spy_rounds_per_bit + 16
        while not trojan_done and len(observations) < spy_budget * 2:
            # The interleaver gives the spy several quanta per trojan
            # quantum (its sampling advantage), with seeded variation.
            for _ in range(self._pick_spy_quanta()):
                observations.append(self._spy_round())
            try:
                next(trojan)
            except StopIteration:
                trojan_done = True
        # A few trailing rounds catch the final window's boundary mark.
        for _ in range(self.spy_rounds_per_bit + 1):
            observations.append(self._spy_round())

        received = self._decode(observations, limit=len(bits))
        return AsyncReport(
            sent=list(bits),
            received=received,
            samples=len(observations),
            windows_found=sum(1 for b, _ in observations if b),
            raw=observations,
        )

    def _pick_spy_quanta(self) -> int:
        jitter = self._rng.randint(-1, 1)
        return max(1, self.spy_rounds_per_bit + jitter)

    @staticmethod
    def _decode(
        observations: list[tuple[bool, bool]], *, limit: int
    ) -> list[int]:
        """Boundary hits delimit windows; any tx hit inside means '1'."""
        received: list[int] = []
        tx_seen_in_window = False
        for boundary_seen, tx_seen in observations:
            tx_seen_in_window = tx_seen_in_window or tx_seen
            if boundary_seen:
                received.append(int(tx_seen_in_window))
                tx_seen_in_window = False
                if len(received) == limit:
                    break
        return received
