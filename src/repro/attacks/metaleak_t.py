"""MetaLeak-T: mEvict+mReload over shared integrity-tree nodes (Sec. VI-A).

The attacker monitors a victim page's activity through the integrity-tree
node block ``N_s`` that the victim's counter block hangs off.  Because the
tree is one logical structure per memory controller, ``N_s`` is shared with
every other page in its subtree — including an attacker page placed there
via OS page-placement — even though no data is shared.

One monitoring round:

1. **mEvict** — evict ``N_s`` (and the counter blocks of the probe and the
   victim page) from the metadata cache using curated data accesses;
2. **idle**  — let the victim run; a victim access to ``D_V`` walks the
   tree and re-loads ``N_s``;
3. **mReload** — time a read of the attacker's probe block ``D_A`` whose
   verification path goes through ``N_s``: fast ⇒ ``N_s`` cached ⇒ the
   victim accessed; slow ⇒ it did not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAGE_SIZE
from repro.attacks.mapping import MetadataEvictor, MetadataMapper
from repro.attacks.resilience import (
    AdaptiveThresholdTracker,
    Calibration,
    score_calibration,
)
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor


@dataclass
class MonitorStats:
    rounds: int = 0
    hits: int = 0
    evict_accesses: int = 0
    latencies: list[int] = field(default_factory=list)
    recalibrations: int = 0
    rejected_recalibrations: int = 0


@dataclass(frozen=True)
class ReloadObservation:
    """One scored mReload: latency, decision, and honest confidence."""

    latency: int
    hit: bool
    confidence: float


class TreeNodeMonitor:
    """Monitors one shared tree node block with mEvict+mReload."""

    def __init__(
        self,
        proc: SecureProcessor,
        evictor: MetadataEvictor,
        *,
        node_addr: int,
        probe_block: int,
        extra_evict: tuple[int, ...] = (),
        threshold: float | None = None,
        core: int = 0,
        adaptive: bool = False,
        calibration_samples: int = 8,
    ) -> None:
        if calibration_samples <= 0:
            raise ValueError(
                f"calibration_samples must be positive, got {calibration_samples}"
            )
        self.proc = proc
        self.evictor = evictor
        self.node_addr = node_addr
        self.probe_block = probe_block
        self.core = core
        self._calibration_samples = calibration_samples
        mapper = evictor.mapper
        self._evict_list = (
            node_addr,
            mapper.counter_addr(probe_block),
            *extra_evict,
        )
        # Same list minus the monitored node: evicting only the probe's
        # counter (and lower path) while the node stays cached produces the
        # fast band for self-calibration.
        self._evict_list_keep_node = tuple(
            addr
            for addr in self._evict_list
            if mapper.meta_set_of(addr) != mapper.meta_set_of(node_addr)
        )
        self.stats = MonitorStats()
        self.last_confidence = 0.0
        # The bands are always profiled, even under a caller-supplied
        # threshold: a forced threshold that does not sit between the
        # measured bands scores quality 0, and every reload scored
        # against it reports zero confidence instead of fabricated
        # certainty.
        fast, slow = self._band_samples(calibration_samples)
        self.calibration: Calibration = score_calibration(
            fast, slow, threshold=threshold
        )
        self.threshold = self.calibration.threshold
        self.tracker: AdaptiveThresholdTracker | None = (
            AdaptiveThresholdTracker(self.calibration) if adaptive else None
        )

    def _band_samples(self, samples: int) -> tuple[list[int], list[int]]:
        """Self-profile the fast/slow reload bands on this very probe.

        The attacker produces both node states itself: a full mEvict makes
        the next reload slow (node fetched from memory); a reload right
        after — with only the probe's counter re-evicted — is fast (node
        just cached).  Profiling on the actual probe block keeps
        machine-specific effects (bank conflicts on this address, row
        state) inside the calibration.
        """
        fast: list[int] = []
        slow: list[int] = []
        for _ in range(samples):
            self.evictor.evict(self._evict_list)
            self.proc.flush(self.probe_block)
            self.proc.quiesce()
            slow.append(self.proc.read(self.probe_block, core=self.core).latency)
            self.evictor.evict(self._evict_list_keep_node)
            self.proc.flush(self.probe_block)
            self.proc.quiesce()
            fast.append(self.proc.read(self.probe_block, core=self.core).latency)
        return fast, slow

    def calibrate(self, samples: int = 8) -> float:
        """Re-profile the bands and adopt a fresh threshold if usable.

        The midpoint of the band means gives symmetric margins on both
        sides, so measurement jitter costs the same in either direction.
        A degenerate re-calibration (overlapping bands) is *rejected* —
        the previous calibration stays in force and the rejection is
        counted in :attr:`MonitorStats.rejected_recalibrations`.
        """
        if samples <= 0:
            raise ValueError(f"calibration samples must be positive, got {samples}")
        fast, slow = self._band_samples(samples)
        fresh = score_calibration(fast, slow)
        if fresh.ok:
            self.calibration = fresh
            self.threshold = fresh.threshold
            self.stats.recalibrations += 1
            if self.tracker is not None:
                self.tracker.rebase(fresh)
        else:
            self.stats.rejected_recalibrations += 1
            if self.tracker is not None:
                # Restart the drift window so a bad patch of samples does
                # not immediately re-fire the detector.
                self.tracker.rebase(self.calibration)
        return self.threshold

    def m_evict(self) -> None:
        """Step 1: push the shared node (and probe counter) off-chip."""
        self.stats.evict_accesses += self.evictor.evict(self._evict_list)
        # The probe data block itself must miss the data caches too.
        self.proc.flush(self.probe_block)

    def m_reload(self) -> tuple[int, bool]:
        """Step 3: timed probe read; returns (latency, victim_accessed)."""
        self.proc.quiesce()
        latency = self.proc.read(self.probe_block, core=self.core).latency
        hit = latency < self.threshold
        self.stats.rounds += 1
        self.stats.hits += int(hit)
        self.stats.latencies.append(latency)
        self.last_confidence = self.calibration.confidence(latency)
        if self.tracker is not None and self.tracker.observe(
            latency, self.threshold
        ):
            self.calibrate(self._calibration_samples)
        return latency, hit

    def m_reload_scored(self) -> ReloadObservation:
        """:meth:`m_reload` plus the per-observation confidence score."""
        latency, hit = self.m_reload()
        return ReloadObservation(
            latency=latency, hit=hit, confidence=self.last_confidence
        )


class MetaLeakT:
    """Factory wiring mappers, evictors and calibration for MetaLeak-T."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        threshold: float | None = None,
        adaptive: bool = False,
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.core = core
        self.mapper = MetadataMapper(proc)
        self._threshold = threshold
        self.adaptive = adaptive
        # One evictor shared by all monitors: its protected region grows as
        # monitors are added, so eviction traffic for one monitored node
        # never strays under another monitored node's subtree.
        self.evictor = MetadataEvictor(proc, allocator, core=core)

    @property
    def threshold(self) -> float | None:
        """Fixed reload threshold, or None for per-monitor self-calibration."""
        return self._threshold

    def claim_probe_page(
        self, victim_frame: int, level: int, *, exclude: set[int] | None = None
    ) -> int:
        """Allocate an attacker page sharing the victim's level-``level``
        tree node (Section VIII-B co-location).  Returns the frame number.
        """
        exclude = exclude or set()
        group = self.proc.layout.pages_sharing_node(victim_frame, level)
        for frame in group:
            if frame == victim_frame or frame in exclude:
                continue
            if not self.allocator.is_allocated(frame):
                return self.allocator.alloc_specific(frame)
        raise RuntimeError(
            f"no free frame shares a level-{level} node with frame {victim_frame}"
        )

    def monitor_for_page(
        self,
        victim_frame: int,
        *,
        level: int = 0,
        probe_frame: int | None = None,
        adaptive: bool | None = None,
        calibration_samples: int = 8,
    ) -> TreeNodeMonitor:
        """Build a monitor for victim activity on one physical page.

        ``probe_frame`` may be supplied when co-location was already
        arranged; otherwise a frame in the shared group is claimed.
        """
        if probe_frame is None:
            probe_frame = self.claim_probe_page(victim_frame, level)
        victim_paddr = victim_frame * PAGE_SIZE
        probe_paddr = probe_frame * PAGE_SIZE
        node_addr = self.mapper.tree_node_addr(victim_paddr, level)
        if self.mapper.tree_node_addr(probe_paddr, level) != node_addr:
            raise ValueError(
                f"probe frame {probe_frame} does not share the level-{level} "
                f"node with victim frame {victim_frame}"
            )
        self.evictor.protect(
            self.mapper.pages_under_node(
                *self.mapper.node_of_data(victim_paddr, level)
            )
        )
        evictor = self.evictor
        # The victim's own counter block must miss as well so its access
        # actually walks the tree and touches N_s.
        extra = (self.mapper.counter_addr(victim_paddr),)
        # Evicting intermediate path nodes below the monitored level keeps
        # both the victim's walk and the probe's reload walk reaching N_s
        # when monitoring above the leaf.
        for lower in range(level):
            extra += (
                self.mapper.tree_node_addr(victim_paddr, lower),
                self.mapper.tree_node_addr(probe_paddr, lower),
            )
        return TreeNodeMonitor(
            self.proc,
            evictor,
            node_addr=node_addr,
            probe_block=probe_paddr,
            extra_evict=extra,
            threshold=self._threshold,
            core=self.core,
            adaptive=self.adaptive if adaptive is None else adaptive,
            calibration_samples=calibration_samples,
        )

