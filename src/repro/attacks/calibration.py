"""Latency-threshold calibration (the attacker's profiling phase).

Before mounting MetaLeak the attacker measures the machine's latency bands
(Figures 6/7): it repeatedly reads its own scratch block with the tree leaf
forced cached vs. forced missing, then picks the Otsu threshold between the
two samples.  Only attacker-owned memory is touched.
"""

from __future__ import annotations

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.stats import otsu_threshold


class LatencyCalibrator:
    """Profiles reload-latency bands on attacker-owned memory."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        samples: int = 32,
    ) -> None:
        if samples <= 0:
            raise ValueError(
                f"samples must be positive, got {samples}: the calibrator "
                "needs at least one observation per latency band"
            )
        if not 0 <= core < proc.config.cores:
            raise ValueError(
                f"core {core} out of range for a {proc.config.cores}-core machine"
            )
        self.proc = proc
        self.allocator = allocator
        self.core = core
        self.samples = samples

    def _scratch_block(self) -> int:
        frame = self.allocator.alloc(self.core)
        return frame * PAGE_SIZE

    def tree_hit_threshold(self) -> float:
        """Threshold between 'leaf node cached' and 'leaf node missing'.

        This is the discriminator mReload needs: the probe's counter block
        always misses (the attacker evicts it), so the two cases differ by
        exactly the leaf-node fetch.
        """
        scratch = self._scratch_block()
        layout = self.proc.layout
        counter_addr = layout.counter_block_addr(scratch)
        leaf_addr = layout.node_addr_for_data(scratch, 0)
        fast, slow = [], []
        for _ in range(self.samples):
            # Leaf cached, counter missing -> fast band (Path-3).
            self.proc.read(scratch, core=self.core)
            self.proc.flush(scratch)
            self.proc.mee.invalidate_metadata(counter_addr)
            self.proc.quiesce()
            fast.append(self.proc.read(scratch, core=self.core).latency)
            # Leaf missing as well -> slow band (Path-4, one level).
            self.proc.flush(scratch)
            self.proc.mee.invalidate_metadata(counter_addr)
            self.proc.mee.invalidate_metadata(leaf_addr)
            self.proc.quiesce()
            slow.append(self.proc.read(scratch, core=self.core).latency)
        return otsu_threshold(fast + slow)

    def counter_hit_threshold(self) -> float:
        """Threshold between Path-2 (counter cached) and Path-3/4."""
        scratch = self._scratch_block()
        counter_addr = self.proc.layout.counter_block_addr(scratch)
        fast, slow = [], []
        for _ in range(self.samples):
            self.proc.read(scratch, core=self.core)
            self.proc.flush(scratch)
            self.proc.quiesce()
            fast.append(self.proc.read(scratch, core=self.core).latency)
            self.proc.flush(scratch)
            self.proc.mee.invalidate_metadata(counter_addr)
            self.proc.quiesce()
            slow.append(self.proc.read(scratch, core=self.core).latency)
        return otsu_threshold(fast + slow)

    def overflow_delay_threshold(self) -> float:
        """Threshold for detecting an in-flight overflow burst (Figure 8).

        Measured as a comfortable multiple of the quiet-path latency; the
        overflow burst is orders of magnitude above either band.
        """
        scratch = self._scratch_block()
        quiet = []
        for _ in range(self.samples):
            self.proc.read(scratch, core=self.core)
            self.proc.flush(scratch)
            self.proc.quiesce()
            quiet.append(self.proc.read(scratch, core=self.core).latency)
        return max(quiet) + 400
