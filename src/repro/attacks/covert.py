"""Covert channels built on MetaLeak-T and MetaLeak-C (Figures 11 & 14).

Both channels run a trojan and a spy as two processes with *no shared
data*; all communication flows through security metadata:

* :class:`CovertChannelT` — the spy mEvict+mReloads two tree node blocks in
  different metadata-cache sets; the trojan encodes a bit by accessing (or
  not) a page under the *transmission* node, and always accesses a page
  under the *boundary* node to delimit the bit window.
* :class:`CovertChannelC` — the trojan encodes a 7-bit symbol as the number
  of advances it applies to a shared tree minor counter; the spy decodes by
  counting how many additional advances fire the overflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAGE_SIZE
from repro.attacks.metaleak_c import MetaLeakC, SharedCounterHandle
from repro.attacks.metaleak_t import MetaLeakT, TreeNodeMonitor
from repro.attacks.noise import NoiseProcess
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.stats import accuracy


@dataclass
class ChannelReport:
    """Outcome of one covert transmission."""

    sent: list[int]
    received: list[int]
    cycles: int
    sync_errors: int = 0
    latencies: list[int] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return accuracy(self.received, self.sent)

    def bits_per_kilocycle(self, bits_per_symbol: int = 1) -> float:
        if self.cycles == 0:
            return float("inf")
        return len(self.sent) * bits_per_symbol / (self.cycles / 1000)


class CovertChannelT:
    """Bit-per-round channel over shared integrity-tree node caching."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        trojan_core: int = 0,
        spy_core: int = 1,
        level: int = 0,
        noise: NoiseProcess | None = None,
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.trojan_core = trojan_core
        self.spy_core = spy_core
        self.noise = noise
        attack = MetaLeakT(proc, allocator, core=spy_core)
        self.attack = attack

        # Two page groups whose tree nodes land in different metadata-cache
        # sets: one carries bits, the other marks bit boundaries.
        self._trojan_tx, spy_tx = self._claim_group_pair(attack, level, salt=0)
        self._trojan_bd, spy_bd = self._claim_group_pair(
            attack, level, salt=1, avoid=self._node_set(attack, self._trojan_tx, level)
        )
        self.tx_monitor = attack.monitor_for_page(
            self._trojan_tx, level=level, probe_frame=spy_tx
        )
        self.bd_monitor = attack.monitor_for_page(
            self._trojan_bd, level=level, probe_frame=spy_bd
        )

    def _node_set(self, attack: MetaLeakT, frame: int, level: int) -> int:
        node = attack.mapper.tree_node_addr(frame * PAGE_SIZE, level)
        return attack.mapper.meta_set_of(node)

    def _claim_group_pair(
        self,
        attack: MetaLeakT,
        level: int,
        *,
        salt: int,
        avoid: int | None = None,
    ) -> tuple[int, int]:
        """Claim (trojan_frame, spy_frame) sharing a level-``level`` node."""
        layout = self.proc.layout
        group_pages = len(layout.pages_sharing_node(0, level))
        total_groups = layout.data_size // PAGE_SIZE // group_pages
        for group in range(salt * 7 + 3, total_groups, 11):
            frame = group * group_pages
            if avoid is not None and self._node_set(attack, frame, level) == avoid:
                continue
            if self.allocator.is_allocated(frame) or self.allocator.is_allocated(
                frame + 1
            ):
                continue
            trojan = self.allocator.alloc_specific(frame)
            spy = attack.claim_probe_page(trojan, level)
            return trojan, spy
        raise RuntimeError("no free page group for the covert channel")

    # ------------------------------------------------------------------

    def _trojan_access(self, frame: int) -> None:
        addr = frame * PAGE_SIZE
        self.proc.flush(addr)
        self.proc.read(addr, core=self.trojan_core)

    def transmit(self, bits: list[int]) -> ChannelReport:
        """Run the full protocol for ``bits``; returns the spy's view."""
        received: list[int] = []
        latencies: list[int] = []
        sync_errors = 0
        start = self.proc.cycle
        for bit in bits:
            self.tx_monitor.m_evict()
            self.bd_monitor.m_evict()
            if self.noise is not None:
                self.noise.step()
            if bit:
                self._trojan_access(self._trojan_tx)
            self._trojan_access(self._trojan_bd)
            if self.noise is not None:
                self.noise.step()
            _, boundary_seen = self.bd_monitor.m_reload()
            latency, tx_seen = self.tx_monitor.m_reload()
            if not boundary_seen:
                sync_errors += 1
            received.append(int(tx_seen))
            latencies.append(latency)
        return ChannelReport(
            sent=list(bits),
            received=received,
            cycles=self.proc.cycle - start,
            sync_errors=sync_errors,
            latencies=latencies,
        )


class CovertChannelC:
    """Symbol-per-overflow channel over a shared tree minor counter."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        trojan_core: int = 0,
        spy_core: int = 1,
        level: int = 1,
        noise: NoiseProcess | None = None,
    ) -> None:
        self.proc = proc
        self.noise = noise
        factory_spy = MetaLeakC(proc, allocator, core=spy_core)
        factory_trojan = MetaLeakC(proc, allocator, core=trojan_core)
        # Pick an anchor frame; both parties claim pages in its subtree.
        anchor = self._find_anchor(proc, allocator, level)
        self.spy_handle: SharedCounterHandle = factory_spy.handle_for_page(
            anchor, level=level, bump_page_count=8
        )
        self.trojan_handle: SharedCounterHandle = factory_trojan.handle_for_page(
            anchor, level=level, bump_page_count=8
        )
        self.symbol_bits = proc.config.tree.minor_bits
        self.max_symbol = self.spy_handle.minor_max - 1

    @staticmethod
    def _find_anchor(
        proc: SecureProcessor, allocator: PageAllocator, level: int
    ) -> int:
        group_pages = len(proc.layout.pages_sharing_node(0, level - 1)) if level > 1 else len(
            proc.layout.data_pages_under_node(0, 0)
        )
        total = proc.layout.data_size // PAGE_SIZE
        for frame in range(0, total, group_pages):
            if not allocator.is_allocated(frame):
                return frame
        raise RuntimeError("no free subtree for the covert channel")

    # ------------------------------------------------------------------

    def transmit(self, symbols: list[int]) -> ChannelReport:
        """Send 7-bit symbols; spy decodes via counts-to-overflow."""
        for symbol in symbols:
            if not 0 <= symbol <= self.max_symbol:
                raise ValueError(
                    f"symbol {symbol} out of range 0..{self.max_symbol}"
                )
        received: list[int] = []
        start = self.proc.cycle
        # Initial mPreset: one overflow leaves the counter at a known 1.
        self.spy_handle.reset()
        # After an overflow the counter restarts at 1; the trojan adds s
        # and the spy's m-th bump fires the next overflow when 1+s+(m-1)
        # reaches the 127 saturation point, i.e. s = minor_max - m.
        saturate = self.spy_handle.minor_max
        for symbol in symbols:
            for _ in range(symbol):
                self.trojan_handle.bump()
            if self.noise is not None:
                self.noise.step()
            extra = self.spy_handle.count_to_overflow()
            received.append(saturate - extra)
        return ChannelReport(
            sent=list(symbols),
            received=received,
            cycles=self.proc.cycle - start,
        )
