"""Covert channels built on MetaLeak-T and MetaLeak-C (Figures 11 & 14).

Both channels run a trojan and a spy as two processes with *no shared
data*; all communication flows through security metadata:

* :class:`CovertChannelT` — the spy mEvict+mReloads two tree node blocks in
  different metadata-cache sets; the trojan encodes a bit by accessing (or
  not) a page under the *transmission* node, and always accesses a page
  under the *boundary* node to delimit the bit window.
* :class:`CovertChannelC` — the trojan encodes a 7-bit symbol as the number
  of advances it applies to a shared tree minor counter; the spy decodes by
  counting how many additional advances fire the overflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAGE_SIZE
from repro.attacks.metaleak_c import MetaLeakC, SharedCounterHandle
from repro.attacks.metaleak_t import MetaLeakT
from repro.attacks.noise import NoiseProcess
from repro.attacks.resilience import MIN_CALIBRATION_QUALITY, mean_confidence
from repro.os.page_alloc import PageAllocator
from repro.proc.batch import AccessBatch
from repro.proc.processor import SecureProcessor
from repro.utils.stats import accuracy
from repro.utils.watchdog import CycleBudget, ensure_budget


@dataclass
class ChannelReport:
    """Outcome of one covert transmission.

    ``confidences`` carries one honest score per received bit/symbol
    (vote margin × calibration quality for the T channel, overflow
    observability for the C channel).  ``degraded`` flags receptions the
    channel itself does not trust — the reasons name why (degenerate
    calibration, exhausted cycle budget, lost sync, low confidence) —
    and ``truncated`` marks receptions cut short by a cycle budget, in
    which case ``received`` is shorter than ``sent``.
    """

    sent: list[int]
    received: list[int]
    cycles: int
    sync_errors: int = 0
    latencies: list[int] = field(default_factory=list)
    confidences: list[float] = field(default_factory=list)
    rounds: int = 0
    truncated: bool = False
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = ()

    @property
    def accuracy(self) -> float:
        return accuracy(self.received, self.sent)

    @property
    def mean_confidence(self) -> float:
        return mean_confidence(self.confidences)

    def bits_per_kilocycle(self, bits_per_symbol: int = 1) -> float:
        if self.cycles == 0:
            return float("inf")
        return len(self.sent) * bits_per_symbol / (self.cycles / 1000)


class CovertChannelT:
    """Bit-per-round channel over shared integrity-tree node caching."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        trojan_core: int = 0,
        spy_core: int = 1,
        level: int = 0,
        noise: NoiseProcess | None = None,
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.trojan_core = trojan_core
        self.spy_core = spy_core
        self.level = level
        self.noise = noise
        attack = MetaLeakT(proc, allocator, core=spy_core)
        self.attack = attack

        # Two page groups whose tree nodes land in different metadata-cache
        # sets: one carries bits, the other marks bit boundaries.
        self._trojan_tx, spy_tx = self._claim_group_pair(attack, level, salt=0)
        self._trojan_bd, spy_bd = self._claim_group_pair(
            attack, level, salt=1, avoid=self._node_set(attack, self._trojan_tx, level)
        )
        self.tx_monitor = attack.monitor_for_page(
            self._trojan_tx, level=level, probe_frame=spy_tx
        )
        self.bd_monitor = attack.monitor_for_page(
            self._trojan_bd, level=level, probe_frame=spy_bd
        )

    def _node_set(self, attack: MetaLeakT, frame: int, level: int) -> int:
        node = attack.mapper.tree_node_addr(frame * PAGE_SIZE, level)
        return attack.mapper.meta_set_of(node)

    def _claim_group_pair(
        self,
        attack: MetaLeakT,
        level: int,
        *,
        salt: int,
        avoid: int | None = None,
    ) -> tuple[int, int]:
        """Claim (trojan_frame, spy_frame) sharing a level-``level`` node."""
        layout = self.proc.layout
        group_pages = len(layout.pages_sharing_node(0, level))
        total_groups = layout.data_size // PAGE_SIZE // group_pages
        for group in range(salt * 7 + 3, total_groups, 11):
            frame = group * group_pages
            if avoid is not None and self._node_set(attack, frame, level) == avoid:
                continue
            if self.allocator.is_allocated(frame) or self.allocator.is_allocated(
                frame + 1
            ):
                continue
            trojan = self.allocator.alloc_specific(frame)
            spy = attack.claim_probe_page(trojan, level)
            return trojan, spy
        raise RuntimeError("no free page group for the covert channel")

    # ------------------------------------------------------------------

    def _trojan_access(self, frame: int) -> None:
        addr = frame * PAGE_SIZE
        self.proc.run_batch(
            AccessBatch().flush(addr).read(addr, core=self.trojan_core)
        )

    def _round(self, bit: int) -> tuple[int, bool, bool, float]:
        """One protocol round; returns (latency, tx_seen, boundary_seen,
        per-round confidence from the transmission monitor)."""
        self.tx_monitor.m_evict()
        self.bd_monitor.m_evict()
        if self.noise is not None:
            self.noise.step()
        if bit:
            self._trojan_access(self._trojan_tx)
        self._trojan_access(self._trojan_bd)
        if self.noise is not None:
            self.noise.step()
        _, boundary_seen = self.bd_monitor.m_reload()
        latency, tx_seen = self.tx_monitor.m_reload()
        return latency, tx_seen, boundary_seen, self.tx_monitor.last_confidence

    def transmit(
        self,
        bits: list[int],
        *,
        votes: int = 1,
        max_extra_votes: int = 0,
        budget: "CycleBudget | int | None" = None,
    ) -> ChannelReport:
        """Run the full protocol for ``bits``; returns the spy's view.

        ``votes`` repeats each bit's round and decodes by majority; the
        vote margin becomes the per-bit confidence.  Ambiguous bits (tied
        or one-vote margins) are re-probed up to ``max_extra_votes``
        additional rounds.  ``budget`` (cycles) bounds the whole
        transmission: on expiry the reception is truncated, never stuck.
        """
        if votes < 1:
            raise ValueError(f"votes must be >= 1, got {votes}")
        if max_extra_votes < 0:
            raise ValueError(
                f"max_extra_votes must be >= 0, got {max_extra_votes}"
            )
        budget = ensure_budget(self.proc, budget)
        received: list[int] = []
        latencies: list[int] = []
        confidences: list[float] = []
        sync_errors = 0
        rounds = 0
        truncated = False
        start = self.proc.cycle
        for bit in bits:
            if budget.expired:
                truncated = True
                break
            ones = 0
            zeros = 0
            round_confidences: list[float] = []
            extra_left = max_extra_votes
            last_latency = 0
            while True:
                latency, tx_seen, boundary_seen, conf = self._round(bit)
                rounds += 1
                last_latency = latency
                if not boundary_seen:
                    sync_errors += 1
                if tx_seen:
                    ones += 1
                else:
                    zeros += 1
                round_confidences.append(conf)
                if ones + zeros < votes:
                    if budget.expired:
                        truncated = True
                        break
                    continue
                margin = abs(ones - zeros)
                ambiguous = margin == 0 or (votes > 1 and margin == 1)
                if ambiguous and extra_left > 0 and not budget.expired:
                    extra_left -= 1
                    continue
                break
            total_votes = ones + zeros
            value = int(ones > zeros) if ones != zeros else int(tx_seen)
            vote_margin = abs(ones - zeros) / max(1, total_votes)
            received.append(value)
            latencies.append(last_latency)
            confidences.append(vote_margin * mean_confidence(round_confidences))
        report = ChannelReport(
            sent=list(bits),
            received=received,
            cycles=self.proc.cycle - start,
            sync_errors=sync_errors,
            latencies=latencies,
            confidences=confidences,
            rounds=rounds,
            truncated=truncated,
        )
        reasons: list[str] = []
        calibration_quality = min(
            self.tx_monitor.calibration.quality,
            self.bd_monitor.calibration.quality,
        )
        if calibration_quality < MIN_CALIBRATION_QUALITY:
            reasons.append("degenerate-calibration")
        if truncated:
            reasons.append("budget")
        if received and report.mean_confidence < 0.5:
            reasons.append("low-confidence")
        if rounds and sync_errors > 0.2 * rounds:
            reasons.append("sync")
        report.degraded = bool(reasons)
        report.degraded_reasons = tuple(reasons)
        return report


class CovertChannelC:
    """Symbol-per-overflow channel over a shared tree minor counter."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        trojan_core: int = 0,
        spy_core: int = 1,
        level: int = 1,
        noise: NoiseProcess | None = None,
    ) -> None:
        self.proc = proc
        self.noise = noise
        factory_spy = MetaLeakC(proc, allocator, core=spy_core)
        factory_trojan = MetaLeakC(proc, allocator, core=trojan_core)
        # Pick an anchor frame; both parties claim pages in its subtree.
        anchor = self._find_anchor(proc, allocator, level)
        self.spy_handle: SharedCounterHandle = factory_spy.handle_for_page(
            anchor, level=level, bump_page_count=8
        )
        self.trojan_handle: SharedCounterHandle = factory_trojan.handle_for_page(
            anchor, level=level, bump_page_count=8
        )
        self.symbol_bits = proc.config.tree.minor_bits
        self.max_symbol = self.spy_handle.minor_max - 1

    @staticmethod
    def _find_anchor(
        proc: SecureProcessor, allocator: PageAllocator, level: int
    ) -> int:
        group_pages = len(proc.layout.pages_sharing_node(0, level - 1)) if level > 1 else len(
            proc.layout.data_pages_under_node(0, 0)
        )
        total = proc.layout.data_size // PAGE_SIZE
        for frame in range(0, total, group_pages):
            if not allocator.is_allocated(frame):
                return frame
        raise RuntimeError("no free subtree for the covert channel")

    # ------------------------------------------------------------------

    def transmit(
        self,
        symbols: list[int],
        *,
        budget: "CycleBudget | int | None" = None,
    ) -> ChannelReport:
        """Send 7-bit symbols; spy decodes via counts-to-overflow.

        A symbol whose overflow tell never shows is reported as ``-1``
        with zero confidence (instead of raising from deep inside the
        loop); the spy then re-syncs the counter with a fresh reset.  A
        cycle ``budget`` truncates the transmission rather than letting
        a noise-swallowed overflow livelock the scan.
        """
        for symbol in symbols:
            if not 0 <= symbol <= self.max_symbol:
                raise ValueError(
                    f"symbol {symbol} out of range 0..{self.max_symbol}"
                )
        budget = ensure_budget(self.proc, budget)
        received: list[int] = []
        confidences: list[float] = []
        sync_errors = 0
        truncated = False
        start = self.proc.cycle
        # Initial mPreset: one overflow leaves the counter at a known 1.
        sync = self.spy_handle.scan_to_overflow(budget=budget)
        if not sync.fired:
            return ChannelReport(
                sent=list(symbols),
                received=[],
                cycles=self.proc.cycle - start,
                sync_errors=1,
                truncated=sync.aborted,
                degraded=True,
                degraded_reasons=("lost-sync",)
                + (("budget",) if sync.aborted else ()),
            )
        # After an overflow the counter restarts at 1; the trojan adds s
        # and the spy's m-th bump fires the next overflow when 1+s+(m-1)
        # reaches the 127 saturation point, i.e. s = minor_max - m.
        saturate = self.spy_handle.minor_max
        for symbol in symbols:
            if budget.expired:
                truncated = True
                break
            for _ in range(symbol):
                self.trojan_handle.bump()
            if self.noise is not None:
                self.noise.step()
            scan = self.spy_handle.scan_to_overflow(budget=budget)
            if scan.fired:
                received.append(saturate - scan.bumps)
                confidences.append(1.0)
                continue
            # Missed overflow: the counter state is unknown.  Emit an
            # erasure and re-sync before the next symbol.
            received.append(-1)
            confidences.append(0.0)
            sync_errors += 1
            if scan.aborted:
                truncated = True
                break
            resync = self.spy_handle.scan_to_overflow(budget=budget)
            if not resync.fired:
                break
        truncated = truncated or len(received) < len(symbols)
        report = ChannelReport(
            sent=list(symbols),
            received=received,
            cycles=self.proc.cycle - start,
            sync_errors=sync_errors,
            confidences=confidences,
            truncated=truncated,
        )
        reasons: list[str] = []
        if sync_errors:
            reasons.append("lost-sync")
        if budget.expired:
            reasons.append("budget")
        report.degraded = bool(reasons)
        report.degraded_reasons = tuple(reasons)
        return report
