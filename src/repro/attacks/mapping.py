"""Address mapping and metadata-cache eviction for MetaLeak.

Metadata cannot be named by software, but its addresses are pure functions
of data addresses (Section IV).  The :class:`MetadataMapper` computes those
functions in reverse: given a metadata-cache set, it finds *data* blocks an
attacker can touch so that their counter blocks land in that set.  The
:class:`MetadataEvictor` turns that into the mEvict primitive: filling a
target set with attacker metadata until the victim's tree node (or counter
block) is evicted — all through plain data reads the attacker is allowed to
perform on its own memory.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE
from repro.mem.block import block_address, page_index
from repro.os.page_alloc import PageAllocator
from repro.proc.batch import AccessBatch
from repro.proc.processor import SecureProcessor

# Extra eviction-set entries beyond the associativity: a single in-order
# pass over ways+slack blocks reliably pushes the target out under LRU.
_EVICTION_SLACK = 4


class MetadataMapper:
    """Derives metadata addresses and cache sets from data addresses."""

    def __init__(self, proc: SecureProcessor) -> None:
        self.proc = proc
        self.layout = proc.layout
        self.meta_cache = proc.metadata_cache

    # -- forward mapping ---------------------------------------------------

    def counter_addr(self, data_paddr: int) -> int:
        return self.layout.counter_block_addr(data_paddr)

    def tree_node_addr(self, data_paddr: int, level: int) -> int:
        return self.layout.node_addr_for_data(data_paddr, level)

    def cache_for(self, meta_addr: int):
        """The on-chip cache structure holding this metadata block."""
        return self.proc.mee._cache_for(meta_addr)

    def is_tree_target(self, meta_addr: int) -> bool:
        return self.layout.is_tree_addr(meta_addr & ((1 << 44) - 1))

    def meta_set_of(self, meta_addr: int) -> int:
        return self.cache_for(meta_addr).set_index_of(meta_addr)

    def verification_path(self, data_paddr: int) -> list[int]:
        """Metadata block addresses on the full verification path."""
        path = [self.counter_addr(data_paddr)]
        for level in range(len(self.layout.levels)):
            path.append(self.tree_node_addr(data_paddr, level))
        return path

    # -- reverse mapping ----------------------------------------------------

    def iter_data_blocks_with_counter_in_set(self, set_index: int):
        """Yield data-block addresses whose counter blocks map to a set.

        Counter block ``cb`` lives at ``counter_base + cb*64``; candidates
        are every ``cb`` with ``(base_block + cb) % num_sets == set_index``.
        """
        num_sets = self.meta_cache.num_sets
        base_block = self.layout.counter_base // BLOCK_SIZE
        cb = (set_index - base_block) % num_sets
        per_cb = self.layout.blocks_per_counter_block
        while cb < self.layout.num_counter_blocks:
            yield cb * per_cb * BLOCK_SIZE
            cb += num_sets

    def data_blocks_with_counter_in_set(
        self,
        set_index: int,
        count: int,
        *,
        exclude_pages: frozenset[int] | set[int] = frozenset(),
        exclude_meta: frozenset[int] | set[int] = frozenset(),
    ) -> list[int]:
        """First ``count`` candidates from
        :meth:`iter_data_blocks_with_counter_in_set`, with exclusions.

        ``exclude_pages`` keeps the result away from given physical pages
        (e.g. the monitored region, so eviction traffic does not reload the
        very node being evicted); ``exclude_meta`` skips data whose counter
        block is one of the given metadata addresses.
        """
        blocks: list[int] = []
        for data_block in self.iter_data_blocks_with_counter_in_set(set_index):
            counter_addr = self.layout.counter_block_addr(data_block)
            if (
                counter_addr not in exclude_meta
                and page_index(data_block) not in exclude_pages
            ):
                blocks.append(data_block)
                if len(blocks) == count:
                    return blocks
        raise ValueError(
            f"protected region too small: found {len(blocks)}/{count} "
            f"counter blocks for metadata set {set_index}"
        )

    def iter_data_blocks_with_leaf_in_set(self, set_index: int):
        """Yield data blocks whose *L0 tree node* maps to a tree-cache set.

        The split-cache variant of eviction-set construction: accessing
        such a block (with its counter missing) walks the tree and fills
        the target tree-cache set with its leaf node.  Consecutive
        candidates are one full tree-cache period apart, which also makes
        their counter blocks alias one counter-cache set — so the
        counter-side state self-churns and every access really walks.
        """
        tree_cache = self.proc.mee.tree_cache
        l0 = self.layout.levels[0]
        base_block = l0.base // BLOCK_SIZE
        node = (set_index - base_block) % tree_cache.num_sets
        per_cb = self.layout.blocks_per_counter_block
        while node < l0.node_count:
            cb_index = node * l0.arity
            if cb_index < self.layout.num_counter_blocks:
                yield cb_index * per_cb * BLOCK_SIZE
            node += tree_cache.num_sets

    def pages_under_node(self, level: int, index: int) -> range:
        return self.layout.data_pages_under_node(level, index)

    def node_of_data(self, data_paddr: int, level: int) -> tuple[int, int]:
        cb_index = self.layout.counter_block_index(data_paddr)
        return level, self.layout.node_index(level, cb_index)


class MetadataEvictor:
    """The mEvict primitive: evict metadata blocks via data accesses.

    For each target metadata block the evictor owns a set of attacker
    pages whose counter blocks alias into the same metadata-cache set.
    ``evict`` touches them (data-cache-cleansed) so their counter blocks
    fill the set and push the target out.
    """

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        protect_pages: set[int] | frozenset[int] = frozenset(),
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.core = core
        self.mapper = MetadataMapper(proc)
        self.protect_pages = set(protect_pages)
        # Frames this evictor claimed for its own eviction traffic.
        self._claimed: set[int] = set()
        # metadata-cache set -> attacker data blocks that fill it
        self._eviction_sets: dict[int, list[int]] = {}
        self.accesses = 0
        # Longest single read in the most recent evict() pass.  MetaLeak-C
        # watches this: an overflow burst triggered by a write-back during
        # the pass shows up as one dramatically delayed read.
        self.last_max_read_latency = 0

    def protect(self, pages: set[int] | frozenset[int] | range) -> None:
        """Extend the no-touch region (e.g. a newly monitored subtree).

        Cached eviction sets that stray into the new region are rebuilt.
        """
        new_pages = set(pages) - self.protect_pages
        if not new_pages:
            return
        self.protect_pages |= new_pages
        stale = [
            set_index
            for set_index, blocks in self._eviction_sets.items()
            if any(page_index(block) in new_pages for block in blocks)
        ]
        for set_index in stale:
            del self._eviction_sets[set_index]

    def _page_usable(self, frame: int) -> bool:
        """Eviction traffic may only touch attacker-claimable pages.

        Pages allocated to anyone else (the victim, probes, noise
        processes) are off limits — the attacker cannot read them, and
        touching a page inside a monitored group would reload the very
        node under observation.
        """
        if frame in self.protect_pages:
            return False
        if frame in self._claimed:
            return True
        return not self.allocator.is_allocated(frame)

    def _target_key(self, meta_addr: int) -> tuple[bool, int]:
        """(needs_tree_cache_fill, set_index) for one metadata target.

        With a combined metadata cache, counter-block fills evict tree
        nodes and vice versa, so everything uses the cheap counter-alias
        construction.  With split caches, tree-node targets need fills of
        the *tree* cache, which only tree walks produce.
        """
        split = self.proc.config.split_metadata_caches
        is_tree = split and self.mapper.is_tree_target(meta_addr)
        return is_tree, self.mapper.meta_set_of(meta_addr)

    def _eviction_set_for(self, key: tuple[bool, int]) -> list[int]:
        is_tree, set_index = key
        blocks = self._eviction_sets.get(key)
        if blocks is None:
            cache = (
                self.proc.mee.tree_cache if is_tree else self.proc.metadata_cache
            )
            needed = cache.ways + _EVICTION_SLACK
            candidates = (
                self.mapper.iter_data_blocks_with_leaf_in_set(set_index)
                if is_tree
                else self.mapper.iter_data_blocks_with_counter_in_set(set_index)
            )
            blocks = []
            for candidate in candidates:
                frame = page_index(candidate)
                if not self._page_usable(frame):
                    continue
                if frame not in self._claimed:
                    self.allocator.alloc_specific(frame)
                    self._claimed.add(frame)
                blocks.append(candidate)
                if len(blocks) == needed:
                    break
            if len(blocks) < needed:
                raise ValueError(
                    f"could not build an eviction set for metadata set "
                    f"{set_index}{' (tree cache)' if is_tree else ''}: only "
                    f"{len(blocks)}/{needed} usable pages"
                )
            self._eviction_sets[key] = blocks
        return blocks

    def evict(self, meta_addrs: list[int] | tuple[int, ...]) -> int:
        """Evict every given metadata block; returns attacker accesses used.

        The accesses are reads of attacker-owned data (flushed first so
        they reach the MEE); their counter-block fills displace the
        targets.  Distinct targets in the same set share one pass.
        """
        used = 0
        self.last_max_read_latency = 0
        for key in sorted({self._target_key(addr) for addr in meta_addrs}):
            # One flush+read pair per eviction block, submitted as a
            # single batch (same operation order as the scalar loop).
            batch = AccessBatch()
            for block in self._eviction_set_for(key):
                batch.flush(block)
                batch.read(block, core=self.core)
            result = self.proc.run_batch(batch)
            self.last_max_read_latency = max(
                self.last_max_read_latency, result.max_read_latency()
            )
            used += result.read_count()
        self.accesses += used
        return used

    def is_cached(self, meta_addr: int) -> bool:
        """Ground-truth probe used by tests (not available to attackers)."""
        return self.mapper.cache_for(meta_addr).contains(block_address(meta_addr))
