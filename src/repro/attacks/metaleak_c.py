"""MetaLeak-C: mPreset+mOverflow write monitoring (Section VI-B).

The attacker shares a tree minor counter with the victim: the counter in
node block ``(level, n)`` that tracks one child subtree containing both
attacker- and victim-owned pages.  Write activity under that subtree —
once it propagates into the tree via counter/node write-backs — increments
the shared minor.  The attack:

1. **mPreset** — reset the counter to a known state by bumping it until an
   overflow is observed, then bump it to the desired preset value;
2. **idle**   — the victim runs; its write(s) advance the counter;
3. **mOverflow** — bump while timing until the overflow fires; the number
   of attacker bumps reveals how many victim writes happened.

A *bump* is one unit of counter advance.  Under the lazy update policy
(the paper's design) it is a data write followed by the chain of metadata
write-backs that carries it to the target level: evict the counter block
(leaf minor++), evict the L0 node (L1 minor++), and so on.  Bump writes
rotate across data blocks/pages of the attacker's share of the subtree to
avoid overflowing encryption counters or tree minors *below* the target
level, exactly as Section VIII-A2 prescribes.

Overflow is observed through timing only: the subtree reset + re-hash
burst occupies DRAM banks, so one of the attacker's timed reads lands in a
dramatically higher latency band (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BLOCK_SIZE, PAGE_SIZE, TreeKind, TreeUpdatePolicy
from repro.attacks.mapping import MetadataEvictor, MetadataMapper
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.watchdog import CycleBudget, ensure_budget

# A quiet metadata-path read stays under ~1000 cycles even with queueing;
# the smallest overflow burst (leaf level: 33 blocks re-hashed) exceeds it
# comfortably.  Calibrate per machine via LatencyCalibrator if needed.
DEFAULT_OVERFLOW_THRESHOLD = 1400


@dataclass
class CounterAttackStats:
    bumps: int = 0
    overflows_observed: int = 0
    resets: int = 0
    presets: int = 0


@dataclass(frozen=True)
class OverflowScan:
    """Structured outcome of one bump-until-overflow scan.

    ``fired`` distinguishes a real overflow from a scan that gave up —
    either because the bump limit was reached (the counter is not shared
    as expected, or noise swallowed the tell) or because the cycle
    budget expired mid-scan (``aborted``).  Callers that cannot tolerate
    a miss keep using the raising wrappers; resilient callers branch on
    ``fired`` and degrade instead of dying.
    """

    fired: bool
    bumps: int
    aborted: bool = False


class SharedCounterHandle:
    """Drives one shared tree minor counter from the attacker side."""

    def __init__(
        self,
        proc: SecureProcessor,
        evictor: MetadataEvictor,
        *,
        level: int,
        node_index: int,
        bump_pages: list[int],
        overflow_threshold: float,
        core: int = 0,
    ) -> None:
        self.proc = proc
        self.evictor = evictor
        self.mapper = evictor.mapper
        self.level = level
        self.node_index = node_index
        self.bump_pages = list(bump_pages)
        self.overflow_threshold = overflow_threshold
        self.core = core
        self.minor_max = (1 << proc.config.tree.minor_bits) - 1
        self._rotation = 0
        self.stats = CounterAttackStats()
        # Largest timed-read latency observed during the latest bump — the
        # raw Figure-8 observable (quiet band vs overflow band).
        self.last_bump_latency = 0
        if proc.config.tree.kind is TreeKind.HASH:
            raise ValueError("MetaLeak-C requires a counter tree (SCT)")

    # ------------------------------------------------------------------

    def _next_bump_block(self) -> int:
        """Rotate writes across pages and blocks to spare lower counters."""
        page = self.bump_pages[self._rotation % len(self.bump_pages)]
        block = (self._rotation // len(self.bump_pages)) % (PAGE_SIZE // BLOCK_SIZE)
        self._rotation += 1
        return page * PAGE_SIZE + block * BLOCK_SIZE

    def bump(self) -> bool:
        """Advance the shared counter by one; True if an overflow fired."""
        self.stats.bumps += 1
        addr = self._next_bump_block()
        self.proc.write_through(addr, b"\xA5", core=self.core)
        self.proc.drain_writes()
        if self.proc.config.tree_update_policy is TreeUpdatePolicy.EAGER:
            # The drain itself carried the update to every level; probe by
            # timing one uncached read against the possible burst.
            return self._timed_probe()
        max_latency = self._propagate(addr)
        self.last_bump_latency = max_latency
        overflowed = max_latency > self.overflow_threshold
        if overflowed:
            self.stats.overflows_observed += 1
        return overflowed

    def _propagate(self, data_addr: int) -> int:
        """Carry the pending update up to the target level via evictions.

        Returns the largest single read latency seen — the overflow tell.
        """
        max_latency = 0
        self.evictor.evict((self.mapper.counter_addr(data_addr),))
        max_latency = max(max_latency, self.evictor.last_max_read_latency)
        for lower in range(self.level):
            node_addr = self.mapper.tree_node_addr(data_addr, lower)
            self.evictor.evict((node_addr,))
            max_latency = max(max_latency, self.evictor.last_max_read_latency)
        # One trailing timed read: a burst triggered by the very last
        # write-back of the final pass would otherwise delay nothing the
        # attacker measures.
        probe = self.bump_pages[0] * PAGE_SIZE + (PAGE_SIZE - BLOCK_SIZE)
        self.proc.flush(probe)
        max_latency = max(
            max_latency, self.proc.read(probe, core=self.core).latency
        )
        return max_latency

    def _timed_probe(self) -> bool:
        probe = self.bump_pages[0] * PAGE_SIZE + (PAGE_SIZE - BLOCK_SIZE)
        self.proc.read(probe, core=self.core)
        self.proc.flush(probe)
        latency = self.proc.read(probe, core=self.core).latency
        overflowed = latency > self.overflow_threshold
        if overflowed:
            self.stats.overflows_observed += 1
        return overflowed

    # ------------------------------------------------------------------
    # The three attack steps
    # ------------------------------------------------------------------

    def scan_to_overflow(
        self,
        *,
        max_bumps: int | None = None,
        budget: "CycleBudget | int | None" = None,
    ) -> OverflowScan:
        """Bump until overflow, a bump limit, or budget expiry.

        The non-raising core of :meth:`reset` / :meth:`count_to_overflow`:
        always returns an :class:`OverflowScan` so resilient callers can
        degrade gracefully when the overflow tell never shows (and never
        livelock — the bump limit and the cycle budget both bound the
        scan).
        """
        budget = ensure_budget(self.proc, budget)
        limit = max_bumps or (self.minor_max + 2)
        for spent in range(1, limit + 1):
            if budget.expired:
                return OverflowScan(fired=False, bumps=spent - 1, aborted=True)
            if self.bump():
                return OverflowScan(fired=True, bumps=spent)
        return OverflowScan(fired=False, bumps=limit)

    def reset(self, *, max_bumps: int | None = None) -> int:
        """mPreset phase 1: bump until overflow; counter is then known.

        After the observed overflow the minor holds exactly 1 (the
        overflow-triggering update is recounted from zero).  Returns the
        number of bumps spent.
        """
        self.stats.resets += 1
        scan = self.scan_to_overflow(max_bumps=max_bumps)
        if not scan.fired:
            raise RuntimeError(
                f"no overflow after {scan.bumps} bumps: counter not shared "
                "as expected"
            )
        return scan.bumps

    def preset(self, value: int) -> None:
        """mPreset phase 2: move the (just-reset) counter to ``value``."""
        if not 1 <= value <= self.minor_max:
            raise ValueError(f"preset value must be in 1..{self.minor_max}")
        self.stats.presets += 1
        for _ in range(value - 1):  # reset leaves the counter at 1
            if self.bump():
                raise RuntimeError("unexpected overflow during preset")

    def arm_for_writes(self, expected_writes: int = 1) -> None:
        """Convenience: reset then preset so ``expected_writes`` victim
        writes saturate the counter (Figure 13's `2^n - x + 1` rule)."""
        self.reset()
        self.preset(self.minor_max - expected_writes)

    def count_victim_writes(self, *, armed_for: int) -> int:
        """Generalised mOverflow: how many times did the victim write?

        Requires the counter to have been armed with
        ``preset(minor_max - armed_for)`` (Figure 13's ``2^n - x + 1``
        rule).  After the victim runs (and its updates are collected),
        ``m`` attacker bumps to overflow mean the victim wrote
        ``armed_for - m + 1`` times.  The overflow leaves the counter at
        1, ready for re-arming.
        """
        if not 1 <= armed_for <= self.minor_max - 1:
            raise ValueError(f"armed_for must be in 1..{self.minor_max - 1}")
        extra = self.count_to_overflow(max_bumps=armed_for + 2)
        victim_writes = armed_for - extra + 1
        if victim_writes < 0:
            raise RuntimeError(
                "more attacker bumps than armed for: counter not in the "
                "expected state (was it armed?)"
            )
        return victim_writes

    def count_to_overflow(self, *, max_bumps: int | None = None) -> int:
        """mOverflow: additional attacker bumps needed to fire the overflow.

        Fewer bumps than armed for means the victim wrote; the difference
        is the victim's write count.
        """
        scan = self.scan_to_overflow(max_bumps=max_bumps)
        if not scan.fired:
            raise RuntimeError(f"no overflow after {scan.bumps} bumps")
        return scan.bumps

    # -- ground truth for tests (not attacker-visible) ---------------------

    def true_value(self) -> int:
        node = self.proc.mee.tree._node(self.level, self.node_index)
        slot = self._observed_slot()
        return node.minors[slot]

    def _observed_slot(self) -> int:
        data_addr = self.bump_pages[0] * PAGE_SIZE
        cb_index = self.proc.layout.counter_block_index(data_addr)
        if self.level == 0:
            return cb_index % self.proc.layout.levels[0].arity
        child_index = self.proc.layout.node_index(self.level - 1, cb_index)
        return self.proc.layout.child_slot(self.level - 1, child_index)


class MetaLeakC:
    """Factory for shared-counter handles."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        overflow_threshold: float = DEFAULT_OVERFLOW_THRESHOLD,
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.core = core
        self.overflow_threshold = overflow_threshold
        self.mapper = MetadataMapper(proc)
        self._collect_evictor: MetadataEvictor | None = None

    def handle_for_page(
        self,
        victim_frame: int,
        *,
        level: int = 1,
        bump_page_count: int = 8,
    ) -> SharedCounterHandle:
        """Build a handle on the tree minor shared with ``victim_frame``.

        The target is the level-``level`` minor tracking the victim's
        level-``level - 1`` subtree (its counter block for level 1).  The
        attacker claims ``bump_page_count`` free pages *inside that same
        child subtree* so its writes advance the very counter the victim's
        writes advance.
        """
        if level < 1:
            raise ValueError(
                "MetaLeak-C needs level >= 1: a leaf minor tracks exactly "
                "one page's counter block, which cannot be shared across "
                "domains (same argument as SGX L0 in Section VIII-B)"
            )
        victim_paddr = victim_frame * PAGE_SIZE
        layout = self.proc.layout
        cb_index = layout.counter_block_index(victim_paddr)
        child_level = level - 1
        child_index = layout.node_index(child_level, cb_index)
        node_index = layout.node_index(level, cb_index)
        # Pages under the child subtree (the counter-sharing group).
        if child_level == 0:
            group = layout.data_pages_under_node(0, child_index)
        else:
            group = layout.data_pages_under_node(child_level, child_index)
        bump_pages = []
        for frame in group:
            if frame == victim_frame or self.allocator.is_allocated(frame):
                continue
            bump_pages.append(self.allocator.alloc_specific(frame))
            if len(bump_pages) == bump_page_count:
                break
        if not bump_pages:
            raise RuntimeError("no free pages share the target subtree")
        protect = set()  # eviction traffic may touch anything: values, not
        # caching state, carry the channel here.
        evictor = MetadataEvictor(
            self.proc, self.allocator, core=self.core, protect_pages=protect
        )
        return SharedCounterHandle(
            self.proc,
            evictor,
            level=level,
            node_index=node_index,
            bump_pages=bump_pages,
            overflow_threshold=self.overflow_threshold,
            core=self.core,
        )

    def collect_victim_updates(self, victim_frame: int, *, level: int = 1) -> None:
        """Push the victim's pending metadata updates into the tree.

        After the victim's writes, its dirty counter block (and any dirty
        intermediate nodes) may still sit in the metadata cache; the
        attacker evicts them so the shared counter reflects the victim's
        activity before mOverflow runs.
        """
        victim_paddr = victim_frame * PAGE_SIZE
        # The victim's stores may still be posted in the MC write queue;
        # flushing it (redundant-write trick of Section VI-B) makes the
        # counters absorb them before the eviction chain runs.
        self.proc.drain_writes()
        if self._collect_evictor is None:
            self._collect_evictor = MetadataEvictor(
                self.proc, self.allocator, core=self.core
            )
        evictor = self._collect_evictor
        evictor.evict((self.mapper.counter_addr(victim_paddr),))
        for lower in range(level):
            evictor.evict((self.mapper.tree_node_addr(victim_paddr, lower),))
