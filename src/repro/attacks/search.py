"""Empirical eviction-set discovery (no layout knowledge required).

The main framework computes metadata addresses analytically — fine for a
simulator, and for real attackers on documented layouts.  This module
implements the harder, more portable variant: starting from a large pool
of candidate pages, *measure* which subset evicts the target's metadata,
using only reload timing.  It is the standard group-testing reduction
used by cache-attack tooling, applied to the metadata cache through the
data-access indirection of Section VI-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.watchdog import CycleBudget, ensure_budget


@dataclass
class SearchStats:
    tests: int = 0
    accesses: int = 0


@dataclass
class SearchOutcome:
    """Structured result of a budgeted eviction-set search.

    ``converged`` is True only when the reduction ran to a locally
    minimal set.  A search cut short by its cycle budget returns the
    best (still-evicting) pool found so far with ``truncated=True`` and
    ``degraded=True`` — a usable partial result rather than a livelock
    or an exception.  ``confidence`` is the verified eviction rate of
    the returned set (1.0 when verification was skipped for lack of
    budget is never claimed; it is 0.0 then, with a reason).
    """

    eviction_set: list[int]
    converged: bool
    confidence: float
    tests: int
    cycles: int
    truncated: bool = False
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = field(default_factory=tuple)


class EvictionSetSearch:
    """Group-testing search for a metadata eviction set.

    ``target_block`` is an attacker-owned data block whose *tree-leaf*
    caching state the attacker can sense via reload timing (fast = leaf
    cached).  The search finds a minimal subset of candidate pages whose
    accesses evict that leaf node — without ever computing a metadata
    address.
    """

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        target_block: int,
        threshold: float | None = None,
        core: int = 0,
    ) -> None:
        self.proc = proc
        self.allocator = allocator
        self.target_block = target_block
        self.core = core
        self.stats = SearchStats()
        # Reload-latency bands are address-specific (bank conflicts between
        # the data fetch and metadata fetches), so calibrate on the actual
        # target unless the caller provides a threshold.
        self.threshold = (
            threshold if threshold is not None else self._calibrate()
        )

    def _calibrate(self, samples: int = 6) -> float:
        fast, slow = [], []
        leaf_addr = self.proc.layout.node_addr_for_data(self.target_block, 0)
        for _ in range(samples):
            self._prime_target()
            self.proc.flush(self.target_block)
            self.proc.quiesce()
            fast.append(self.proc.read(self.target_block, core=self.core).latency)
            self._prime_target()
            self.proc.mee.invalidate_metadata(leaf_addr)
            self.proc.flush(self.target_block)
            self.proc.quiesce()
            slow.append(self.proc.read(self.target_block, core=self.core).latency)
        return (sum(fast) / len(fast) + sum(slow) / len(slow)) / 2

    # -- measurement primitives -------------------------------------------

    def _prime_target(self) -> None:
        """Load the target's full verification path into the metadata cache."""
        self.proc.flush(self.target_block)
        self.proc.mee.flush_metadata_cache(self.proc.cycle)
        self.proc.read(self.target_block, core=self.core)
        self.proc.flush(self.target_block)
        # Counter must miss on reload so the walk reaches the leaf node.
        counter_addr = self.proc.layout.counter_block_addr(self.target_block)
        self.proc.mee.invalidate_metadata(counter_addr)

    def _reload_is_slow(self) -> bool:
        self.proc.flush(self.target_block)
        self.proc.quiesce()
        latency = self.proc.read(self.target_block, core=self.core).latency
        return latency >= self.threshold

    def evicts(self, candidate_pages: list[int]) -> bool:
        """Does accessing this candidate set evict the target's leaf?"""
        self.stats.tests += 1
        self._prime_target()
        for frame in candidate_pages:
            addr = frame * PAGE_SIZE
            self.proc.flush(addr)
            self.proc.read(addr, core=self.core)
            self.stats.accesses += 1
        return self._reload_is_slow()

    # -- group-testing reduction --------------------------------------------

    def find_minimal_set(
        self, candidate_pages: list[int], *, max_rounds: int = 200
    ) -> list[int]:
        """Reduce a working candidate pool to a minimal eviction set.

        Classic one-out reduction: repeatedly drop a chunk and keep the
        remainder if it still evicts.  Raises if the initial pool does not
        evict the target.  For a non-raising, cycle-budgeted variant see
        :meth:`search`.
        """
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        pool = list(candidate_pages)
        if not self.evicts(pool):
            raise ValueError(
                "candidate pool does not evict the target metadata; "
                "grow the pool"
            )
        pool, _ = self._reduce(pool, max_rounds, ensure_budget(self.proc, None))
        return pool

    def _reduce(
        self, pool: list[int], max_rounds: int, budget: CycleBudget
    ) -> tuple[list[int], bool]:
        """One-out reduction; returns (pool, converged)."""
        rounds = 0
        index = 0
        chunk = max(1, len(pool) // 8)
        converged = False
        while rounds < max_rounds:
            if budget.expired:
                return pool, False
            rounds += 1
            if index >= len(pool):
                if chunk == 1:
                    converged = True
                    break
                chunk = max(1, chunk // 2)
                index = 0
                continue
            trial = pool[:index] + pool[index + chunk :]
            if trial and self.evicts(trial):
                pool = trial
            else:
                index += chunk
        return pool, converged

    def search(
        self,
        candidate_pages: list[int],
        *,
        max_rounds: int = 200,
        verify_trials: int = 3,
        budget: "CycleBudget | int | None" = None,
    ) -> SearchOutcome:
        """Budgeted search returning a structured, never-raising outcome.

        Unlike :meth:`find_minimal_set` this degrades instead of raising:
        a pool that does not evict the target, or a budget that expires
        mid-reduction, produces a :class:`SearchOutcome` with ``degraded``
        set and the reasons named.  The cycle budget guarantees the loop
        terminates even when noise keeps re-filling the metadata cache.
        """
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        if verify_trials < 0:
            raise ValueError(
                f"verify_trials must be >= 0, got {verify_trials}"
            )
        budget = ensure_budget(self.proc, budget)
        start = self.proc.cycle
        tests_before = self.stats.tests
        reasons: list[str] = []

        pool = list(candidate_pages)
        if not pool or not self.evicts(pool):
            return SearchOutcome(
                eviction_set=[],
                converged=False,
                confidence=0.0,
                tests=self.stats.tests - tests_before,
                cycles=self.proc.cycle - start,
                truncated=budget.expired,
                degraded=True,
                degraded_reasons=("pool-does-not-evict",),
            )
        pool, converged = self._reduce(pool, max_rounds, budget)
        if not converged:
            reasons.append("reduction-incomplete")

        confidence = 0.0
        if verify_trials == 0:
            reasons.append("unverified")
        elif budget.expired:
            reasons.append("unverified")
        else:
            confidence = self.verify(pool, trials=verify_trials)
            if confidence < 1.0:
                reasons.append("unreliable-eviction")
        return SearchOutcome(
            eviction_set=pool,
            converged=converged,
            confidence=confidence,
            tests=self.stats.tests - tests_before,
            cycles=self.proc.cycle - start,
            truncated=budget.expired,
            degraded=bool(reasons),
            degraded_reasons=tuple(reasons),
        )

    def verify(self, eviction_set: list[int], trials: int = 5) -> float:
        """Fraction of trials in which the set evicts the target."""
        if trials <= 0:
            raise ValueError(
                f"trials must be positive, got {trials}: verifying over "
                "zero trials would claim certainty from no evidence"
            )
        hits = sum(self.evicts(eviction_set) for _ in range(trials))
        return hits / trials
