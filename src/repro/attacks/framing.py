"""Reliable framing over the raw covert channels.

The raw MetaLeak covert channels (`CovertChannelT`, `CovertChannelC`)
transmit naked bit/symbol streams: one flipped bit under co-running
noise silently corrupts the payload, and a dropped symbol desynchronises
everything after it.  This module layers a small link protocol on top:

* **sync preambles** — each frame starts with a fixed 8-bit sync word;
  the decoder slides over the reception to re-lock after dropped or
  garbled symbols;
* **Hamming(7,4) forward error correction** — every nibble of header,
  payload and checksum travels as a 7-bit codeword, correcting any
  single bit error per codeword;
* **CRC-8 detection** — residual multi-bit corruption is detected and
  the frame discarded rather than delivered wrong;
* **sequence numbers + bounded ARQ** — frames carry a 4-bit sequence
  number; frames that fail CRC are retransmitted in later rounds, up to
  a retry budget and within a cycle budget, after which the sender gives
  up and reports a *degraded* partial payload.

:class:`FramedReport` carries both the raw-wire error rate and the
post-ECC payload accuracy plus effective goodput, so noise sweeps can
plot a "with ECC" series next to the raw channel (Figs. 11/14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.utils.watchdog import CycleBudget, ensure_budget

#: Fixed frame sync word.  Chosen for weak self-overlap so a shifted
#: reception does not alias back onto a frame start.
PREAMBLE: tuple[int, ...] = (1, 0, 1, 1, 0, 1, 0, 0)

#: Payload nibbles per frame (16 payload bits with the default 4).
DEFAULT_PAYLOAD_NIBBLES = 4

SEQ_BITS = 4
_SEQ_SPACE = 1 << SEQ_BITS


# ---------------------------------------------------------------------------
# Hamming(7,4)
# ---------------------------------------------------------------------------


def hamming74_encode(nibble: int) -> tuple[int, ...]:
    """Encode a 4-bit value into a 7-bit Hamming codeword."""
    if not 0 <= nibble < 16:
        raise ValueError(f"hamming74_encode takes a nibble (0..15), got {nibble}")
    d = [(nibble >> shift) & 1 for shift in (3, 2, 1, 0)]
    p1 = d[0] ^ d[1] ^ d[3]
    p2 = d[0] ^ d[2] ^ d[3]
    p3 = d[1] ^ d[2] ^ d[3]
    return (p1, p2, d[0], p3, d[1], d[2], d[3])


def hamming74_decode(codeword: Sequence[int]) -> tuple[int, bool]:
    """Decode a 7-bit codeword; returns ``(nibble, corrected)``.

    Any single flipped bit is located by the syndrome and corrected;
    double errors alias onto a wrong-but-valid codeword, which is why
    frames additionally carry a CRC.
    """
    if len(codeword) != 7:
        raise ValueError(f"hamming74_decode takes 7 bits, got {len(codeword)}")
    c = [bit & 1 for bit in codeword]
    s1 = c[0] ^ c[2] ^ c[4] ^ c[6]
    s2 = c[1] ^ c[2] ^ c[5] ^ c[6]
    s3 = c[3] ^ c[4] ^ c[5] ^ c[6]
    syndrome = s1 | (s2 << 1) | (s3 << 2)
    corrected = syndrome != 0
    if corrected:
        c[syndrome - 1] ^= 1
    nibble = (c[2] << 3) | (c[4] << 2) | (c[5] << 1) | c[6]
    return nibble, corrected


# ---------------------------------------------------------------------------
# CRC-8
# ---------------------------------------------------------------------------


def crc8(bits: Sequence[int], *, poly: int = 0x07, init: int = 0x00) -> int:
    """Bit-serial CRC-8 (poly ``x^8 + x^2 + x + 1`` by default)."""
    crc = init
    for bit in bits:
        crc ^= (bit & 1) << 7
        crc = ((crc << 1) ^ poly if crc & 0x80 else crc << 1) & 0xFF
    return crc


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def frame_wire_bits(payload_nibbles: int = DEFAULT_PAYLOAD_NIBBLES) -> int:
    """Wire bits per frame: preamble + 7 bits per (seq, payload, crc) nibble."""
    return len(PREAMBLE) + 7 * (1 + payload_nibbles + 2)


def frame_payload_bits(payload_nibbles: int = DEFAULT_PAYLOAD_NIBBLES) -> int:
    return 4 * payload_nibbles


def encode_frame(
    seq: int,
    payload: Sequence[int],
    *,
    payload_nibbles: int = DEFAULT_PAYLOAD_NIBBLES,
) -> list[int]:
    """Encode one frame: preamble, then Hamming-coded seq/payload/CRC."""
    capacity = frame_payload_bits(payload_nibbles)
    if len(payload) > capacity:
        raise ValueError(
            f"frame payload of {len(payload)} bits exceeds capacity {capacity}"
        )
    bits = [b & 1 for b in payload] + [0] * (capacity - len(payload))
    nibbles = [seq % _SEQ_SPACE]
    for i in range(0, capacity, 4):
        nibbles.append(
            (bits[i] << 3) | (bits[i + 1] << 2) | (bits[i + 2] << 1) | bits[i + 3]
        )
    checked_bits: list[int] = []
    for nibble in nibbles:
        checked_bits.extend((nibble >> shift) & 1 for shift in (3, 2, 1, 0))
    checksum = crc8(checked_bits)
    nibbles.append(checksum >> 4)
    nibbles.append(checksum & 0xF)

    wire = list(PREAMBLE)
    for nibble in nibbles:
        wire.extend(hamming74_encode(nibble))
    return wire


@dataclass(frozen=True)
class DecodedFrame:
    """One frame recovered from a reception."""

    seq: int
    payload: tuple[int, ...]
    crc_ok: bool
    corrected_bits: int  # single-bit errors fixed by Hamming decode
    start: int  # index of the preamble in the reception


def _find_preamble(bits: Sequence[int], start: int) -> int:
    pattern = PREAMBLE
    limit = len(bits) - len(pattern)
    for offset in range(start, limit + 1):
        if all(bits[offset + i] == pattern[i] for i in range(len(pattern))):
            return offset
    return -1


def decode_stream(
    bits: Sequence[int],
    *,
    payload_nibbles: int = DEFAULT_PAYLOAD_NIBBLES,
) -> list[DecodedFrame]:
    """Scan a reception for frames, re-syncing on each preamble.

    Dropped or corrupted symbols before or between frames are skipped by
    sliding to the next preamble match — the resync property the tests
    exercise by truncating the head of the reception.
    """
    bits = [b & 1 for b in bits]
    body_nibbles = 1 + payload_nibbles + 2
    frames: list[DecodedFrame] = []
    position = 0
    while True:
        start = _find_preamble(bits, position)
        if start < 0:
            break
        body_start = start + len(PREAMBLE)
        if body_start + 7 * body_nibbles > len(bits):
            # Partial trailing frame: maybe the preamble match was a
            # payload coincidence — slide one bit and retry.
            position = start + 1
            continue
        nibbles: list[int] = []
        corrected = 0
        for index in range(body_nibbles):
            offset = body_start + 7 * index
            nibble, fixed = hamming74_decode(bits[offset : offset + 7])
            nibbles.append(nibble)
            corrected += int(fixed)
        checked_bits: list[int] = []
        for nibble in nibbles[: 1 + payload_nibbles]:
            checked_bits.extend((nibble >> shift) & 1 for shift in (3, 2, 1, 0))
        checksum = (nibbles[-2] << 4) | nibbles[-1]
        crc_ok = crc8(checked_bits) == checksum
        payload: list[int] = []
        for nibble in nibbles[1 : 1 + payload_nibbles]:
            payload.extend((nibble >> shift) & 1 for shift in (3, 2, 1, 0))
        frames.append(
            DecodedFrame(
                seq=nibbles[0],
                payload=tuple(payload),
                crc_ok=crc_ok,
                corrected_bits=corrected,
                start=start,
            )
        )
        if crc_ok:
            position = body_start + 7 * body_nibbles
        else:
            # The frame body may itself hide a real preamble (lost sync
            # mid-frame); rescan from just past this false start.
            position = start + 1
    return frames


# ---------------------------------------------------------------------------
# Reliable channel (framing + ARQ) over a raw bit channel
# ---------------------------------------------------------------------------


class _BitChannel(Protocol):  # pragma: no cover - structural typing only
    def transmit(self, bits: Sequence[int], **kwargs: object) -> object: ...


@dataclass
class FramedReport:
    """Outcome of a framed, ECC-protected transmission."""

    payload_sent: list[int]
    payload_received: list[int]
    delivered: list[bool]  # per-frame delivery flags
    cycles: int
    raw_bits_sent: int = 0
    raw_bit_errors: int = 0
    frames_sent: int = 0
    frames_delivered: int = 0
    retransmissions: int = 0
    corrected_bits: int = 0
    crc_failures: int = 0
    rounds: int = 0
    truncated: bool = False
    degraded: bool = False
    degraded_reasons: tuple[str, ...] = ()
    confidences: list[float] = field(default_factory=list)

    @property
    def raw_ber(self) -> float:
        """Bit error rate on the wire, before any correction."""
        if self.raw_bits_sent == 0:
            raise ValueError("no raw bits were transmitted")
        return self.raw_bit_errors / self.raw_bits_sent

    @property
    def payload_accuracy(self) -> float:
        """Post-ECC payload accuracy (undelivered bits count as errors)."""
        if not self.payload_sent:
            raise ValueError("no payload bits were sent")
        matched = sum(
            1
            for sent, got in zip(self.payload_sent, self.payload_received)
            if sent == got
        )
        return matched / len(self.payload_sent)

    @property
    def goodput_bits_per_kilocycle(self) -> float:
        """Correctly delivered payload bits per 1000 cycles."""
        if self.cycles <= 0:
            return 0.0
        matched = sum(
            1
            for sent, got in zip(self.payload_sent, self.payload_received)
            if sent == got
        )
        return 1000.0 * matched / self.cycles


class ReliableChannel:
    """Framing + Hamming(7,4) + CRC-8 + bounded ARQ over a bit channel.

    ``channel`` is anything with a ``transmit(bits, ...) -> ChannelReport``
    returning received bits positionally (``CovertChannelT``, or
    ``CovertChannelC`` wrapped in :class:`BitSymbolAdapter`).  The ARQ
    feedback path (which frames failed CRC) is assumed noiseless, the
    standard covert-channel assumption of a quiet reverse channel.
    """

    def __init__(
        self,
        channel: _BitChannel,
        *,
        payload_nibbles: int = DEFAULT_PAYLOAD_NIBBLES,
    ) -> None:
        if payload_nibbles <= 0:
            raise ValueError(
                f"payload_nibbles must be positive, got {payload_nibbles}"
            )
        self.channel = channel
        self.payload_nibbles = payload_nibbles

    @property
    def _frame_bits(self) -> int:
        return frame_payload_bits(self.payload_nibbles)

    def send(
        self,
        payload: Sequence[int],
        *,
        max_retries: int = 2,
        budget: "CycleBudget | int | None" = None,
        **transmit_kwargs: object,
    ) -> FramedReport:
        """Send a payload; returns a :class:`FramedReport`.

        ``max_retries`` bounds extra ARQ rounds after the initial
        transmission.  ``budget`` (cycles) bounds the whole exchange;
        on expiry the send stops and undelivered frames stay zeroed with
        ``truncated``/``degraded`` set.  Remaining keyword arguments are
        forwarded to the underlying ``transmit`` (e.g. ``votes=3``).
        """
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        payload = [b & 1 for b in payload]
        if not payload:
            raise ValueError("cannot send an empty payload")
        proc = getattr(self.channel, "proc", None)
        if proc is None:  # adapter-wrapped channel
            proc = self.channel.channel.proc  # type: ignore[attr-defined]
        budget = ensure_budget(proc, budget)

        per_frame = self._frame_bits
        chunks = [payload[i : i + per_frame] for i in range(0, len(payload), per_frame)]
        pending = list(range(len(chunks)))
        received_chunks: dict[int, tuple[int, ...]] = {}
        chunk_confidence: dict[int, float] = {}

        report = FramedReport(
            payload_sent=list(payload),
            payload_received=[],
            delivered=[],
            cycles=0,
        )
        start_cycle = proc.cycle

        for round_index in range(max_retries + 1):
            if not pending or budget.expired:
                break
            wire: list[int] = []
            frame_of_seq: list[tuple[int, int]] = []  # (seq, chunk index)
            for chunk_index in pending:
                wire.extend(
                    encode_frame(
                        chunk_index,
                        chunks[chunk_index],
                        payload_nibbles=self.payload_nibbles,
                    )
                )
                frame_of_seq.append((chunk_index % _SEQ_SPACE, chunk_index))
            channel_report = self.channel.transmit(
                wire, budget=budget, **transmit_kwargs
            )
            received = [b & 1 for b in channel_report.received]
            report.rounds += 1
            report.frames_sent += len(pending)
            if round_index > 0:
                report.retransmissions += len(pending)
            report.raw_bits_sent += len(wire)
            report.raw_bit_errors += sum(
                1 for sent, got in zip(wire, received) if sent != got
            ) + max(0, len(wire) - len(received))
            if getattr(channel_report, "truncated", False):
                report.truncated = True

            confidences = list(getattr(channel_report, "confidences", []) or [])
            for frame in decode_stream(
                received, payload_nibbles=self.payload_nibbles
            ):
                report.corrected_bits += frame.corrected_bits
                if not frame.crc_ok:
                    report.crc_failures += 1
                    continue
                for position, (seq, chunk_index) in enumerate(frame_of_seq):
                    if seq == frame.seq and chunk_index in pending:
                        received_chunks[chunk_index] = frame.payload
                        body = frame_wire_bits(self.payload_nibbles)
                        window = confidences[frame.start : frame.start + body]
                        chunk_confidence[chunk_index] = (
                            sum(window) / len(window) if window else 1.0
                        )
                        pending.remove(chunk_index)
                        del frame_of_seq[position]
                        break

        report.cycles = proc.cycle - start_cycle
        if budget.expired and pending:
            report.truncated = True
        report.frames_delivered = len(chunks) - len(pending)
        for index, chunk in enumerate(chunks):
            delivered = index in received_chunks
            report.delivered.append(delivered)
            if delivered:
                report.payload_received.extend(
                    received_chunks[index][: len(chunk)]
                )
                report.confidences.extend(
                    [chunk_confidence.get(index, 1.0)] * len(chunk)
                )
            else:
                report.payload_received.extend([0] * len(chunk))
                report.confidences.extend([0.0] * len(chunk))

        reasons: list[str] = []
        if pending:
            reasons.append("undelivered-frames")
        if report.truncated:
            reasons.append("budget")
        report.degraded = bool(reasons)
        report.degraded_reasons = tuple(reasons)
        return report


class BitSymbolAdapter:
    """Present ``CovertChannelC``'s symbol interface as a bit channel.

    Packs ``bits_per_symbol`` bits into one counter symbol (MSB first).
    Symbols the spy failed to decode (reported as ``-1``) unpack to zero
    bits with zero confidence; the framing CRC catches the corruption
    and ARQ retransmits the affected frames.
    """

    def __init__(self, channel: object, *, bits_per_symbol: int = 6) -> None:
        max_symbol = getattr(channel, "max_symbol", None)
        if bits_per_symbol <= 0:
            raise ValueError(
                f"bits_per_symbol must be positive, got {bits_per_symbol}"
            )
        if max_symbol is not None and (1 << bits_per_symbol) - 1 > max_symbol:
            raise ValueError(
                f"{bits_per_symbol} bits per symbol exceeds the channel's "
                f"maximum symbol value {max_symbol}"
            )
        self.channel = channel
        self.bits_per_symbol = bits_per_symbol

    def transmit(self, bits: Sequence[int], **kwargs: object) -> object:
        width = self.bits_per_symbol
        bits = [b & 1 for b in bits]
        padded = bits + [0] * (-len(bits) % width)
        symbols = [
            int("".join(str(b) for b in padded[i : i + width]), 2)
            for i in range(0, len(padded), width)
        ]
        report = self.channel.transmit(symbols, **kwargs)  # type: ignore[attr-defined]
        out_bits: list[int] = []
        out_conf: list[float] = []
        symbol_conf = list(getattr(report, "confidences", []) or [])
        for index, symbol in enumerate(report.received):
            conf = symbol_conf[index] if index < len(symbol_conf) else 1.0
            if symbol is None or symbol < 0:
                out_bits.extend([0] * width)
                out_conf.extend([0.0] * width)
            else:
                out_bits.extend((symbol >> shift) & 1 for shift in range(width - 1, -1, -1))
                out_conf.extend([conf] * width)
        # Re-shape the report into the bit-channel view the framing expects.
        report.received = out_bits[: len(bits)] if len(out_bits) >= len(bits) else out_bits
        report.confidences = out_conf[: len(report.received)]
        report.sent = list(bits)
        return report
