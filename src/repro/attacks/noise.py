"""Background interference for attack-accuracy experiments.

Real machines run other workloads whose memory traffic shares the metadata
cache and DRAM banks with the attacker.  :class:`NoiseProcess` models one:
a co-running process on another core that reads its own pages at a
configurable intensity.  Its counter-block and tree-node fills randomly
pressure metadata-cache sets, occasionally evicting the attacker's target
between the victim's access and the attacker's reload — the error source
behind the paper's 90–97%% (rather than 100%%) accuracies.
"""

from __future__ import annotations

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.rng import DeterministicRng, derive_rng


class NoiseProcess:
    """A co-running process issuing random cleansed reads."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 2,
        pages: int = 128,
        reads_per_step: int = 4,
        rng: DeterministicRng | None = None,
        seed: int = 7,
    ) -> None:
        if reads_per_step < 0:
            raise ValueError("reads_per_step must be non-negative")
        if pages <= 0:
            # An empty working set would make step()'s rng.choice blow up
            # long after construction; fail at the call site instead.
            raise ValueError("pages must be positive")
        if not 0 <= core < proc.config.cores:
            raise ValueError(
                f"core {core} out of range for a {proc.config.cores}-core machine"
            )
        self.proc = proc
        self.core = core
        self.reads_per_step = reads_per_step
        self.rng = rng or derive_rng(seed, "noise")
        self._frames = allocator.alloc_many(pages, core)
        self.steps = 0
        self.reads_issued = 0

    def step(self) -> None:
        """Run one quantum of background work."""
        self.steps += 1
        for _ in range(self.reads_per_step):
            frame = self.rng.choice(self._frames)
            offset = self.rng.randrange(0, PAGE_SIZE, 64)
            addr = frame * PAGE_SIZE + offset
            self.proc.flush(addr)
            self.proc.read(addr, core=self.core)
            self.reads_issued += 1


class ConflictingNoiseProcess(NoiseProcess):
    """A co-runner whose working set conflicts with chosen metadata sets.

    A generic :class:`NoiseProcess` working set rarely lands in the one
    metadata-cache set a monitor depends on, so its interference is
    mostly queueing delay.  The worst-case neighbour is one whose
    metadata footprint *collides*: each of its accesses has a chance of
    evicting a monitored tree node between the victim's access and the
    attacker's reload, flipping observed 1-bits to 0.  ``conflict_rate``
    is the per-access probability that the neighbour's traffic sweeps a
    conflicting set (modelled with the mEvict primitive, since only the
    caching side-effect matters); the rest of the step is ordinary
    random reads.  Error intensity therefore grows smoothly with
    ``reads_per_step`` — the knob the noise sweeps turn.
    """

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        conflict_addrs: tuple[int, ...],
        conflict_rate: float = 0.05,
        **kwargs: object,
    ) -> None:
        super().__init__(proc, allocator, **kwargs)
        if not conflict_addrs:
            raise ValueError("conflict_addrs must name at least one address")
        if not 0.0 <= conflict_rate <= 1.0:
            raise ValueError(
                f"conflict_rate must be in [0, 1], got {conflict_rate}"
            )
        # Deferred import: mapping imports noise's sibling modules.
        from repro.attacks.mapping import MetadataEvictor

        self.conflict_addrs = tuple(conflict_addrs)
        self.conflict_rate = conflict_rate
        self.conflicts_issued = 0
        self._evictor = MetadataEvictor(proc, allocator, core=self.core)

    def step(self) -> None:
        self.steps += 1
        for _ in range(self.reads_per_step):
            if self.rng.random() < self.conflict_rate:
                self._evictor.evict(self.conflict_addrs)
                self.conflicts_issued += 1
                continue
            frame = self.rng.choice(self._frames)
            offset = self.rng.randrange(0, PAGE_SIZE, 64)
            addr = frame * PAGE_SIZE + offset
            self.proc.flush(addr)
            self.proc.read(addr, core=self.core)
            self.reads_issued += 1


def co_located_noise(
    channel: object,
    allocator: PageAllocator,
    *,
    reads_per_step: int,
    conflict_rate: float = 0.05,
    pages: int = 32,
    core: int = 2,
    seed: int = 7,
) -> ConflictingNoiseProcess:
    """Worst-case co-runner for a ``CovertChannelT``: its working set
    conflicts with the channel's transmission node.

    The boundary node is left alone, so frame synchronisation survives
    while payload bits degrade — exactly the regime the ECC framing
    layer is built for.
    """
    return ConflictingNoiseProcess(
        channel.proc,  # type: ignore[attr-defined]
        allocator,
        conflict_addrs=(channel.tx_monitor.node_addr,),  # type: ignore[attr-defined]
        conflict_rate=conflict_rate,
        reads_per_step=reads_per_step,
        pages=pages,
        core=core,
        seed=seed,
    )
