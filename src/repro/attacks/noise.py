"""Background interference for attack-accuracy experiments.

Real machines run other workloads whose memory traffic shares the metadata
cache and DRAM banks with the attacker.  :class:`NoiseProcess` models one:
a co-running process on another core that reads its own pages at a
configurable intensity.  Its counter-block and tree-node fills randomly
pressure metadata-cache sets, occasionally evicting the attacker's target
between the victim's access and the attacker's reload — the error source
behind the paper's 90–97%% (rather than 100%%) accuracies.
"""

from __future__ import annotations

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.utils.rng import DeterministicRng, derive_rng


class NoiseProcess:
    """A co-running process issuing random cleansed reads."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 2,
        pages: int = 128,
        reads_per_step: int = 4,
        rng: DeterministicRng | None = None,
        seed: int = 7,
    ) -> None:
        if reads_per_step < 0:
            raise ValueError("reads_per_step must be non-negative")
        if pages <= 0:
            # An empty working set would make step()'s rng.choice blow up
            # long after construction; fail at the call site instead.
            raise ValueError("pages must be positive")
        if not 0 <= core < proc.config.cores:
            raise ValueError(
                f"core {core} out of range for a {proc.config.cores}-core machine"
            )
        self.proc = proc
        self.core = core
        self.reads_per_step = reads_per_step
        self.rng = rng or derive_rng(seed, "noise")
        self._frames = allocator.alloc_many(pages, core)
        self.steps = 0
        self.reads_issued = 0

    def step(self) -> None:
        """Run one quantum of background work."""
        self.steps += 1
        for _ in range(self.reads_per_step):
            frame = self.rng.choice(self._frames)
            offset = self.rng.randrange(0, PAGE_SIZE, 64)
            addr = frame * PAGE_SIZE + offset
            self.proc.flush(addr)
            self.proc.read(addr, core=self.core)
            self.reads_issued += 1
