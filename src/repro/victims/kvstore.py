"""A persistent key-value store victim (MetaLeak-C's natural prey).

The paper's threat model points at persistent-memory applications whose
"critical sections are written back to memory immediately" — every store
reaches the memory controller, bumping encryption and tree counters with
no cache-eviction games needed.  This victim models a small PM hash table
with write-ahead logging: a ``put`` appends a log record (one write to the
log page) and updates the bucket page of the key's hash.  Observing
*which bucket pages get written* through shared tree counters leaks the
keys' hash distribution; observing the *number* of log writes leaks the
operation count — both pure MetaLeak-C write-monitoring targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.config import BLOCK_SIZE, PAGE_SIZE
from repro.crypto.prf import keyed_prf
from repro.os.process import Process


@dataclass(frozen=True)
class KvStep:
    """One persisted write performed by the store (generator payload)."""

    operation: str  # "log" | "bucket"
    bucket: int | None
    key: str


class PersistentKvStore:
    """A write-through hash table with a write-ahead log."""

    def __init__(self, process: Process, *, buckets: int = 8) -> None:
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.process = process
        self.buckets = buckets
        self.log_vaddr = process.alloc(1)
        self.bucket_vaddrs = [process.alloc(1) for _ in range(buckets)]
        self._data: dict[str, bytes] = {}
        self._log_cursor = 0
        self.puts = 0

    # -- page identity (what an attacker co-locates against) --------------

    @property
    def log_frame(self) -> int:
        return self.process.paddr(self.log_vaddr) // PAGE_SIZE

    def bucket_frame(self, bucket: int) -> int:
        return self.process.paddr(self.bucket_vaddrs[bucket]) // PAGE_SIZE

    def bucket_of(self, key: str) -> int:
        digest = keyed_prf(b"kv-bucket", key, out_len=8)
        return int.from_bytes(digest, "little") % self.buckets

    # -- operations ---------------------------------------------------------

    def put(self, key: str, value: bytes) -> Generator[KvStep, None, None]:
        """Persist one key/value pair: log append, then bucket update.

        Yields after each persisted write so stepping frameworks can probe.
        """
        self.puts += 1
        # Write-ahead log append (rotating cursor within the log page).
        log_offset = (self._log_cursor % (PAGE_SIZE // BLOCK_SIZE)) * BLOCK_SIZE
        self._log_cursor += 1
        self.process.write(self.log_vaddr + log_offset, value[:BLOCK_SIZE])
        yield KvStep(operation="log", bucket=None, key=key)
        # Bucket update: the key's hash picks the page that gets written.
        bucket = self.bucket_of(key)
        self.process.write(self.bucket_vaddrs[bucket], value[:BLOCK_SIZE])
        self._data[key] = bytes(value)
        yield KvStep(operation="bucket", bucket=bucket, key=key)

    def put_all(self, items: dict[str, bytes]) -> Generator[KvStep, None, None]:
        """Persist several pairs, yielding per write."""
        for key, value in items.items():
            yield from self.put(key, value)

    def get(self, key: str) -> bytes | None:
        """Read back a value (reads the bucket page)."""
        if key not in self._data:
            return None
        self.process.read(self.bucket_vaddrs[self.bucket_of(key)])
        return self._data[key]

    def __len__(self) -> int:
        return len(self._data)
