"""Image reconstruction from leaked zero/non-zero masks (Figure 15).

The attacker learns, per block and per zigzag position, whether the AC
coefficient was zero.  Reconstruction runs the paper's local pipeline:
starting from a blank image, the leaked entropy information guides the
generation of compressed coefficients — non-zero positions get a default
magnitude (one quantisation step, matching the smallest non-zero value),
and the inverse pipeline produces an image that retains the original's
discernible features.
"""

from __future__ import annotations

import numpy as np

from repro.victims.jpeg.dct import idct2
from repro.victims.jpeg.encoder import EncodedImage
from repro.victims.jpeg.quant import dequantize, quant_table
from repro.victims.jpeg.zigzag import inverse_zigzag


def reconstruct_from_mask(
    masks: list[list[bool]],
    shape: tuple[int, int],
    *,
    quality: int = 50,
    magnitude: float = 1.0,
    dc: list[int] | None = None,
) -> np.ndarray:
    """Rebuild an image from per-position zero masks.

    ``masks[b][k]`` is True when block ``b``'s AC coefficient ``k+1`` (in
    zigzag order) was zero.  ``dc`` may carry the (non-secret) DC terms; a
    flat mid-gray is assumed otherwise.
    """
    height, width = shape
    blocks_per_row = width // 8
    table = quant_table(quality)
    image = np.zeros(shape)
    for block_index, mask in enumerate(masks):
        sequence = np.zeros(64)
        sequence[0] = dc[block_index] if dc is not None else 0.0
        for k, is_zero in enumerate(mask, start=1):
            if not is_zero:
                sequence[k] = magnitude
        coefficients = dequantize(inverse_zigzag(sequence), table)
        pixels = idct2(coefficients) + 128.0
        by, bx = divmod(block_index, blocks_per_row)
        image[by * 8 : by * 8 + 8, bx * 8 : bx * 8 + 8] = pixels
    return np.clip(image, 0, 255)


def reconstruct_reference(encoded: EncodedImage) -> np.ndarray:
    """Full decode of the true encoding (the paper's Oracle column)."""
    height, width = encoded.shape
    blocks_per_row = width // 8
    table = quant_table(encoded.quality)
    image = np.zeros(encoded.shape)
    for block_index, ac in enumerate(encoded.ac_blocks):
        sequence = np.zeros(64)
        sequence[0] = encoded.dc[block_index]
        sequence[1:] = ac
        coefficients = dequantize(inverse_zigzag(sequence), table)
        pixels = idct2(coefficients) + 128.0
        by, bx = divmod(block_index, blocks_per_row)
        image[by * 8 : by * 8 + 8, bx * 8 : bx * 8 + 8] = pixels
    return np.clip(image, 0, 255)


def mask_accuracy(
    recovered: list[list[bool]], truth: list[list[bool]]
) -> float:
    """Fraction of zero/non-zero classifications the attacker got right —
    the paper's 'stealing accuracy'."""
    total = 0
    correct = 0
    for recovered_block, true_block in zip(recovered, truth):
        for r, t in zip(recovered_block, true_block):
            total += 1
            correct += int(r == t)
    if total == 0:
        raise ValueError("empty masks")
    return correct / total


def zero_recovery_accuracy(
    recovered: list[list[bool]], truth: list[list[bool]]
) -> float:
    """Accuracy restricted to true-zero positions (the VIII-A2 metric)."""
    total = 0
    correct = 0
    for recovered_block, true_block in zip(recovered, truth):
        for r, t in zip(recovered_block, true_block):
            if t:
                total += 1
                correct += int(r)
    if total == 0:
        raise ValueError("no zero elements in truth")
    return correct / total


def activity_map(masks: list[list[bool]], shape: tuple[int, int]) -> np.ndarray:
    """Per-block non-zero-coefficient density, upsampled to image size.

    This is the information the leak actually carries: blocks with many
    non-zero AC coefficients are the detailed/edge regions of the image.
    """
    height, width = shape
    blocks_per_row = width // 8
    out = np.zeros(shape)
    for block_index, mask in enumerate(masks):
        nonzero = sum(1 for is_zero in mask if not is_zero)
        by, bx = divmod(block_index, blocks_per_row)
        out[by * 8 : by * 8 + 8, bx * 8 : bx * 8 + 8] = nonzero
    return out


def feature_correlation(
    recovered: list[list[bool]],
    truth: list[list[bool]],
    shape: tuple[int, int],
) -> float:
    """Correlation of the leaked detail map with the ground-truth one."""
    return pixel_correlation(activity_map(recovered, shape), activity_map(truth, shape))


def pixel_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two images (a fidelity indicator)."""
    flat_a = np.asarray(a, dtype=np.float64).ravel()
    flat_b = np.asarray(b, dtype=np.float64).ravel()
    if flat_a.std() == 0 or flat_b.std() == 0:
        # Degenerate (constant) images: identical means perfect agreement
        # (e.g. an image whose blocks all carry equal detail).
        return 1.0 if np.array_equal(flat_a, flat_b) else 0.0
    return float(np.corrcoef(flat_a, flat_b)[0, 1])


def save_pgm(image: np.ndarray, path: str) -> None:
    """Write a grayscale image as a binary PGM (viewable anywhere)."""
    data = np.clip(np.asarray(image), 0, 255).astype(np.uint8)
    height, width = data.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode())
        handle.write(data.tobytes())
