"""Synthetic grayscale test images (stand-ins for the paper's inputs).

The paper reconstructs photographs; no image assets ship offline, so these
generators produce inputs with the property the attack actually exploits —
spatially varying detail (sharp gradients yield non-zero AC coefficients,
flat regions yield zero runs).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


def _checkerboard(size: int) -> np.ndarray:
    tile = size // 8
    ys, xs = np.indices((size, size))
    return np.where(((ys // tile) + (xs // tile)) % 2 == 0, 220.0, 40.0)


def _gradient(size: int) -> np.ndarray:
    ys, xs = np.indices((size, size))
    return (xs + ys) * (255.0 / (2 * size - 2))


def _circles(size: int) -> np.ndarray:
    ys, xs = np.indices((size, size))
    center = size / 2
    radius = np.hypot(ys - center, xs - center)
    return 128.0 + 100.0 * np.cos(radius / 3.5)


def _stripes(size: int) -> np.ndarray:
    ys, xs = np.indices((size, size))
    return np.where((xs // 4) % 2 == 0, 200.0, 60.0) + ys * 0.1


def _text_like(size: int) -> np.ndarray:
    """Blocky glyph-like strokes on a light background."""
    rng = derive_rng(13, "text")
    image = np.full((size, size), 235.0)
    for _ in range(size // 2):
        y = rng.randrange(2, size - 10)
        x = rng.randrange(2, size - 10)
        if rng.random() < 0.5:
            image[y : y + 1, x : x + rng.randrange(3, 9)] = 30.0
        else:
            image[y : y + rng.randrange(3, 9), x : x + 1] = 30.0
    return image


def _noise(size: int) -> np.ndarray:
    rng = derive_rng(13, "noise-image")
    flat = np.array([rng.gauss(128, 40) for _ in range(size * size)])
    return np.clip(flat.reshape(size, size), 0, 255)


_GENERATORS = {
    "checkerboard": _checkerboard,
    "gradient": _gradient,
    "circles": _circles,
    "stripes": _stripes,
    "text": _text_like,
    "noise": _noise,
}


def sample_image_names() -> list[str]:
    return sorted(_GENERATORS)


def sample_image(name: str, size: int = 64) -> np.ndarray:
    """A ``size`` x ``size`` float image in [0, 255]."""
    if size % 8 != 0:
        raise ValueError("size must be a multiple of 8")
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown image {name!r}; options: {sample_image_names()}"
        ) from None
    return generator(size).astype(np.float64)
