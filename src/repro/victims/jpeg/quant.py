"""JPEG luminance quantisation (Annex K table with quality scaling)."""

from __future__ import annotations

import numpy as np

# ITU-T T.81 Annex K.1 luminance quantisation table.
_BASE_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quant_table(quality: int = 50) -> np.ndarray:
    """The Annex-K table scaled by the usual IJG quality mapping."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    table = np.floor((_BASE_TABLE * scale + 50) / 100)
    return np.clip(table, 1, 255)


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantise one DCT coefficient block to integers."""
    return np.round(coefficients / table).astype(np.int32)


def dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Recover approximate DCT coefficients."""
    return quantized.astype(np.float64) * table
