"""8x8 type-II discrete cosine transform (the JPEG transform)."""

from __future__ import annotations

import numpy as np

BLOCK = 8


def _dct_matrix() -> np.ndarray:
    """The orthonormal 8x8 DCT-II matrix."""
    matrix = np.zeros((BLOCK, BLOCK))
    for j in range(BLOCK):
        scale = np.sqrt(1 / BLOCK) if j == 0 else np.sqrt(2 / BLOCK)
        for k in range(BLOCK):
            matrix[j, k] = scale * np.cos((2 * k + 1) * j * np.pi / (2 * BLOCK))
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def dct2(block: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of one 8x8 block."""
    if block.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {block.shape}")
    return _DCT @ block @ _DCT.T


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of one 8x8 coefficient block."""
    if coefficients.shape != (BLOCK, BLOCK):
        raise ValueError(f"expected 8x8 block, got {coefficients.shape}")
    return _IDCT @ coefficients @ _IDCT.T
