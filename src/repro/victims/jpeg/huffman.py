"""Run-length / category coding of AC coefficients (libjpeg-style).

This is the entropy stage whose access pattern Listing 1 leaks: for each
non-zero coefficient the encoder computes its bit category (``nbits``) and
emits an (run, size) symbol; zero coefficients only advance the run length
``r``.  A canonical Huffman code over the (run, size) symbols produces the
final bit count, letting tests verify real compression behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

MAX_COEF_BITS = 10  # libjpeg's out-of-range guard in Listing 1, line 10
ZRL = (15, 0)  # zero-run-length symbol: 16 zeros
EOB = (0, 0)  # end of block


def bit_category(value: int) -> int:
    """``nbits``: the number of bits needed for a coefficient magnitude."""
    return abs(int(value)).bit_length()


@dataclass(frozen=True)
class AcSymbol:
    """One (run, size) symbol plus its amplitude payload."""

    run: int
    size: int
    amplitude: int


def run_length_encode(ac_coefficients: list[int]) -> list[AcSymbol]:
    """Encode the 63 AC coefficients of one block into (run, size) symbols.

    Mirrors libjpeg's ``encode_one_block`` control flow: ``r`` counts the
    zero run, 16-zero runs emit ZRL, and a trailing zero run emits EOB.
    """
    symbols: list[AcSymbol] = []
    r = 0
    for coefficient in ac_coefficients:
        if coefficient == 0:
            r += 1
            continue
        while r > 15:
            symbols.append(AcSymbol(run=ZRL[0], size=ZRL[1], amplitude=0))
            r -= 16
        nbits = bit_category(coefficient)
        if nbits > MAX_COEF_BITS:
            raise ValueError(f"coefficient {coefficient} out of range")
        symbols.append(AcSymbol(run=r, size=nbits, amplitude=int(coefficient)))
        r = 0
    if r > 0:
        symbols.append(AcSymbol(run=EOB[0], size=EOB[1], amplitude=0))
    return symbols


def run_length_decode(symbols: list[AcSymbol]) -> list[int]:
    """Invert :func:`run_length_encode` back to 63 AC coefficients."""
    coefficients: list[int] = []
    for symbol in symbols:
        if (symbol.run, symbol.size) == EOB:
            break
        if (symbol.run, symbol.size) == ZRL:
            coefficients.extend([0] * 16)
            continue
        coefficients.extend([0] * symbol.run)
        coefficients.append(symbol.amplitude)
    coefficients.extend([0] * (63 - len(coefficients)))
    return coefficients[:63]


class HuffmanTable:
    """A canonical Huffman code built from symbol frequencies."""

    def __init__(self, frequencies: Counter) -> None:
        if not frequencies:
            raise ValueError("cannot build a Huffman table from no symbols")
        self.lengths = self._code_lengths(frequencies)
        self.codes = self._canonical_codes(self.lengths)

    @staticmethod
    def _code_lengths(frequencies: Counter) -> dict[object, int]:
        """Package-merge-free length assignment via a simple Huffman heap."""
        import heapq

        heap = [
            (count, index, [symbol])
            for index, (symbol, count) in enumerate(sorted(frequencies.items(), key=str))
        ]
        heapq.heapify(heap)
        lengths = {symbol: 0 for symbol in frequencies}
        if len(heap) == 1:
            only = next(iter(frequencies))
            return {only: 1}
        tiebreak = len(heap)
        while len(heap) > 1:
            count_a, _, symbols_a = heapq.heappop(heap)
            count_b, _, symbols_b = heapq.heappop(heap)
            for symbol in symbols_a + symbols_b:
                lengths[symbol] += 1
            heapq.heappush(
                heap, (count_a + count_b, tiebreak, symbols_a + symbols_b)
            )
            tiebreak += 1
        return lengths

    @staticmethod
    def _canonical_codes(lengths: dict[object, int]) -> dict[object, str]:
        ordered = sorted(lengths.items(), key=lambda item: (item[1], str(item[0])))
        codes: dict[object, str] = {}
        code = 0
        previous_length = 0
        for symbol, length in ordered:
            code <<= length - previous_length
            codes[symbol] = format(code, f"0{length}b")
            code += 1
            previous_length = length
        return codes

    def encoded_bits(self, symbol: object) -> int:
        return len(self.codes[symbol])


def encode_bitstream(per_block_symbols: list[list[AcSymbol]]) -> tuple[str, HuffmanTable]:
    """Huffman-code all blocks' symbols; returns (bitstring, table)."""
    frequencies: Counter = Counter()
    for symbols in per_block_symbols:
        for symbol in symbols:
            frequencies[(symbol.run, symbol.size)] += 1
    table = HuffmanTable(frequencies)
    bits: list[str] = []
    for symbols in per_block_symbols:
        for symbol in symbols:
            bits.append(table.codes[(symbol.run, symbol.size)])
            if symbol.size:
                magnitude = abs(symbol.amplitude)
                payload = format(magnitude, f"0{symbol.size}b")
                if symbol.amplitude < 0:
                    # JPEG one's-complement negative amplitude convention.
                    payload = "".join("1" if b == "0" else "0" for b in payload)
                bits.append(payload)
    return "".join(bits), table
