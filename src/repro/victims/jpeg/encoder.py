"""The libjpeg-style encoder and its machine-instrumented victim.

:class:`JpegEncoder` is the pure compression pipeline.  :class:`JpegVictim`
executes the Listing-1 gadget on a simulated secure processor: for every
``k = 1..63`` of every block it touches the ``r`` page (zero coefficient —
the run-length counter is updated) or the ``nbits`` page (non-zero — the
bit category is computed), yielding control to the stepping framework
after each iteration so an attacker can probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterator

import numpy as np

from repro.os.process import Process
from repro.victims.jpeg.dct import dct2
from repro.victims.jpeg.huffman import (
    AcSymbol,
    HuffmanTable,
    bit_category,
    encode_bitstream,
    run_length_encode,
)
from repro.victims.jpeg.quant import quant_table, quantize
from repro.victims.jpeg.zigzag import zigzag


@dataclass
class EncodedImage:
    """Complete output of the encoder (enough to decode)."""

    shape: tuple[int, int]
    quality: int
    dc: list[int]
    ac_blocks: list[list[int]] = field(repr=False)
    symbols: list[list[AcSymbol]] = field(repr=False)
    bitstream: str = field(repr=False, default="")
    table: HuffmanTable | None = field(repr=False, default=None)

    @property
    def compressed_bits(self) -> int:
        return len(self.bitstream)

    def zero_masks(self) -> list[list[bool]]:
        """Ground truth: True where the AC coefficient is zero."""
        return [[c == 0 for c in block] for block in self.ac_blocks]


def image_blocks(image: np.ndarray) -> Iterator[np.ndarray]:
    """Yield the image's 8x8 blocks in raster order."""
    height, width = image.shape
    if height % 8 or width % 8:
        raise ValueError("image dimensions must be multiples of 8")
    for by in range(0, height, 8):
        for bx in range(0, width, 8):
            yield image[by : by + 8, bx : bx + 8]


class JpegEncoder:
    """Baseline JPEG-style compression of a grayscale image."""

    def __init__(self, quality: int = 50) -> None:
        self.quality = quality
        self.table = quant_table(quality)

    def quantized_blocks(self, image: np.ndarray) -> list[np.ndarray]:
        """Level-shift, transform and quantise every 8x8 block."""
        return [
            quantize(dct2(block - 128.0), self.table)
            for block in image_blocks(np.asarray(image, dtype=np.float64))
        ]

    def encode(self, image: np.ndarray) -> EncodedImage:
        quantized = self.quantized_blocks(image)
        dc: list[int] = []
        ac_blocks: list[list[int]] = []
        symbols: list[list[AcSymbol]] = []
        for block in quantized:
            sequence = zigzag(block)
            dc.append(int(sequence[0]))
            ac = [int(v) for v in sequence[1:]]
            ac_blocks.append(ac)
            symbols.append(run_length_encode(ac))
        bitstream, table = encode_bitstream(symbols)
        return EncodedImage(
            shape=image.shape,
            quality=self.quality,
            dc=dc,
            ac_blocks=ac_blocks,
            symbols=symbols,
            bitstream=bitstream,
            table=table,
        )


@dataclass(frozen=True)
class JpegStep:
    """One leaked-loop iteration (the generator payload)."""

    block: int
    k: int
    is_zero: bool


class JpegVictim:
    """Runs ``encode_one_block`` on the secure processor (Listing 1)."""

    def __init__(self, process: Process, quality: int = 50) -> None:
        self.process = process
        self.encoder = JpegEncoder(quality)
        # `r` and `nbits` live on two separate pages "by default" (VIII-A1).
        self.r_vaddr = process.alloc(1)
        self.nbits_vaddr = process.alloc(1)
        self.encoded: EncodedImage | None = None

    @property
    def r_frame(self) -> int:
        return self.process.paddr(self.r_vaddr) // 4096

    @property
    def nbits_frame(self) -> int:
        return self.process.paddr(self.nbits_vaddr) // 4096

    def encode_one_block(
        self, ac: list[int]
    ) -> Generator[JpegStep, None, list[AcSymbol]]:
        """The Listing-1 loop with its secret-dependent page touches."""
        r = 0
        for k, coefficient in enumerate(ac, start=1):
            if coefficient == 0:
                r += 1
                self.process.write(self.r_vaddr, r.to_bytes(4, "little"))
            else:
                self.process.read(self.nbits_vaddr)
                nbits = bit_category(coefficient)
                self.process.write(self.nbits_vaddr, nbits.to_bytes(4, "little"))
                r = 0
            yield JpegStep(block=-1, k=k, is_zero=coefficient == 0)
        return run_length_encode(ac)

    def encode_image(
        self, image: np.ndarray
    ) -> Generator[JpegStep, None, EncodedImage]:
        """Encode a full image, yielding after every coefficient step."""
        quantized = self.encoder.quantized_blocks(image)
        dc: list[int] = []
        ac_blocks: list[list[int]] = []
        symbols: list[list[AcSymbol]] = []
        for block_index, block in enumerate(quantized):
            sequence = zigzag(block)
            dc.append(int(sequence[0]))
            ac = [int(v) for v in sequence[1:]]
            ac_blocks.append(ac)
            step_gen = self.encode_one_block(ac)
            while True:
                try:
                    step = next(step_gen)
                except StopIteration as stop:
                    symbols.append(stop.value)
                    break
                yield JpegStep(block=block_index, k=step.k, is_zero=step.is_zero)
        bitstream, table = encode_bitstream(symbols)
        self.encoded = EncodedImage(
            shape=image.shape,
            quality=self.encoder.quality,
            dc=dc,
            ac_blocks=ac_blocks,
            symbols=symbols,
            bitstream=bitstream,
            table=table,
        )
        return self.encoded
