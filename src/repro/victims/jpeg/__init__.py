"""A pure-Python JPEG-style encoder (the libjpeg victim of Section VIII-A).

The pipeline follows baseline JPEG for a grayscale image: 8x8 blocking,
level shift, 2-D DCT, quantisation, zigzag scan and run-length/category
coding of the AC coefficients.  ``encode_one_block`` reproduces Listing 1's
structure exactly: a ``k = 1..63`` loop that increments ``r`` for zero
coefficients and computes ``nbits`` for non-zero ones.
"""

from repro.victims.jpeg.dct import dct2, idct2
from repro.victims.jpeg.encoder import EncodedImage, JpegEncoder, JpegVictim
from repro.victims.jpeg.images import sample_image, sample_image_names
from repro.victims.jpeg.quant import quant_table, quantize, dequantize
from repro.victims.jpeg.reconstruct import (
    mask_accuracy,
    reconstruct_from_mask,
)
from repro.victims.jpeg.zigzag import ZIGZAG_ORDER, zigzag, inverse_zigzag

__all__ = [
    "dct2",
    "idct2",
    "EncodedImage",
    "JpegEncoder",
    "JpegVictim",
    "sample_image",
    "sample_image_names",
    "quant_table",
    "quantize",
    "dequantize",
    "mask_accuracy",
    "reconstruct_from_mask",
    "ZIGZAG_ORDER",
    "zigzag",
    "inverse_zigzag",
]
