"""Zigzag scan order (``jpeg_natural_order`` in libjpeg)."""

from __future__ import annotations

import numpy as np


def _zigzag_order() -> list[tuple[int, int]]:
    order = []
    for diagonal in range(15):
        positions = [
            (i, diagonal - i)
            for i in range(8)
            if 0 <= diagonal - i < 8
        ]
        if diagonal % 2 == 0:
            positions.reverse()
        order.extend(positions)
    return order


ZIGZAG_ORDER = _zigzag_order()


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block into the 64-entry zigzag sequence."""
    return np.array([block[i, j] for i, j in ZIGZAG_ORDER])


def inverse_zigzag(sequence: np.ndarray) -> np.ndarray:
    """Rebuild an 8x8 block from its zigzag sequence."""
    if len(sequence) != 64:
        raise ValueError("zigzag sequence must have 64 entries")
    block = np.zeros((8, 8), dtype=np.asarray(sequence).dtype)
    for value, (i, j) in zip(sequence, ZIGZAG_ORDER):
        block[i, j] = value
    return block
