"""mbedTLS-style private-key loading (Section VIII-B2).

RSA key loading computes the private exponent ``d = e^{-1} mod phi`` with
``phi = (p-1)(q-1)`` via a binary extended Euclidean algorithm whose inner
loop alternates two page-distinct primitives: right shifts
(``mbedtls_mpi_shift_r``) and subtractions (``mbedtls_mpi_sub_mpi``).  The
shift/sub pattern is a function of the *secret* ``phi``, and — as the works
the paper cites ([91], [93], [94]) establish — the secret is computationally
recoverable from the operation trace.  :func:`recover_secret_from_trace`
implements that recovery with 2-adic constraint propagation: every parity
decision in the trace is one congruence on ``phi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Generator

from repro.os.process import Process
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class KeyLoadStep:
    """One binary-GCD operation (generator payload).

    ``operation`` is what the attacker can hope to distinguish (the page:
    "shift" or "sub"); ``detail`` carries the which-variable ground truth
    ("shift_u", "sub_v", ...) used by the computational recovery.
    """

    operation: str
    detail: str


class KeyLoadVictim:
    """Binary extended Euclid with page-distinct shift/sub routines.

    Besides the two *code* pages, the two bignum operands ``u`` and ``v``
    live in their own heap buffers (as mbedTLS MPI limb arrays do), each
    on its own page.  A shift touches its operand's buffer; that is what
    lets an attacker attribute each shift run to ``u`` or ``v`` — and
    shift-run attribution determines the preceding subtraction's
    direction, completing the trace the computational recovery needs.
    """

    def __init__(self, process: Process) -> None:
        self.process = process
        self.shift_page_vaddr = process.alloc(1)
        self.sub_page_vaddr = process.alloc(1)
        self.u_buffer_vaddr = process.alloc(1)
        self.v_buffer_vaddr = process.alloc(1)

    @property
    def shift_frame(self) -> int:
        return self.process.paddr(self.shift_page_vaddr) // 4096

    @property
    def sub_frame(self) -> int:
        return self.process.paddr(self.sub_page_vaddr) // 4096

    @property
    def u_buffer_frame(self) -> int:
        return self.process.paddr(self.u_buffer_vaddr) // 4096

    @property
    def v_buffer_frame(self) -> int:
        return self.process.paddr(self.v_buffer_vaddr) // 4096

    def _shift(self, operand_vaddr: int) -> None:
        self.process.read(self.shift_page_vaddr)
        # Shifting is read-modify-write over the limb buffer; the read is
        # what walks the integrity tree and exposes the operand identity.
        self.process.read(operand_vaddr)
        self.process.write(operand_vaddr)

    def _sub(self) -> None:
        # A subtraction reads both operands; it does not identify its
        # written target to a page-granular observer.
        self.process.read(self.sub_page_vaddr)
        self.process.read(self.u_buffer_vaddr)
        self.process.read(self.v_buffer_vaddr)

    def mod_inverse(
        self, e: int, phi: int
    ) -> Generator[KeyLoadStep, None, int]:
        """Compute ``e^{-1} mod phi``, yielding one step per shift/sub.

        Binary extended GCD (HAC Algorithm 14.61, the structure mbedTLS's
        ``mbedtls_mpi_inv_mod`` follows): invariants ``A·e + B·phi = u``
        and ``C·e + D·phi = v``; the coefficient adjustments ride along
        inside the same shift/sub primitives.
        """
        if e <= 0 or phi <= 1:
            raise ValueError("need e > 0 and phi > 1")
        if e % 2 == 0:
            raise ValueError("public exponent must be odd (e.g. 65537)")
        if gcd(e, phi) != 1:
            raise ValueError("e and phi must be coprime")
        u, v = e, phi
        coeff_a, coeff_b, coeff_c, coeff_d = 1, 0, 0, 1
        while u != 0:
            while u % 2 == 0:
                u >>= 1
                if coeff_a % 2 == 0 and coeff_b % 2 == 0:
                    coeff_a >>= 1
                    coeff_b >>= 1
                else:
                    coeff_a = (coeff_a + phi) >> 1
                    coeff_b = (coeff_b - e) >> 1
                self._shift(self.u_buffer_vaddr)
                yield KeyLoadStep(operation="shift", detail="shift_u")
            while v % 2 == 0:
                v >>= 1
                if coeff_c % 2 == 0 and coeff_d % 2 == 0:
                    coeff_c >>= 1
                    coeff_d >>= 1
                else:
                    coeff_c = (coeff_c + phi) >> 1
                    coeff_d = (coeff_d - e) >> 1
                self._shift(self.v_buffer_vaddr)
                yield KeyLoadStep(operation="shift", detail="shift_v")
            if u >= v:
                u -= v
                coeff_a -= coeff_c
                coeff_b -= coeff_d
                self._sub()
                yield KeyLoadStep(operation="sub", detail="sub_u")
            else:
                v -= u
                coeff_c -= coeff_a
                coeff_d -= coeff_b
                self._sub()
                yield KeyLoadStep(operation="sub", detail="sub_v")
        # v now holds gcd(e, phi) = 1 with C·e + D·phi = 1.
        return coeff_c % phi


# ----------------------------------------------------------------------
# Computational recovery from the operation trace
# ----------------------------------------------------------------------


class TraceInconsistent(Exception):
    """The trace cannot have been produced by any secret value."""


class SearchExploded(Exception):
    """Attribution search exceeded its branch budget (see
    :func:`recover_secret_from_operations`): single-shift runs give the
    search no discrimination (u-v even iff v-u even), so adversarially
    shaped traces blow up exponentially."""


class _Congruences:
    """Accumulates V ≡ r (mod 2^t) knowledge from B·V ≡ c (mod 2^m)."""

    def __init__(self) -> None:
        self.residue = 0
        self.bits = 0

    def copy(self) -> "_Congruences":
        clone = _Congruences()
        clone.residue = self.residue
        clone.bits = self.bits
        return clone

    def add(self, b: int, c: int, m: int) -> None:
        if m <= 0:
            return
        c %= 1 << m
        if b == 0:
            if c != 0:
                raise TraceInconsistent("constraint 0 ≡ c with c != 0")
            return
        val = (b & -b).bit_length() - 1  # 2-adic valuation of b
        if val >= m:
            if c % (1 << m) != 0:
                raise TraceInconsistent("unsatisfiable congruence")
            return
        if c % (1 << val) != 0:
            raise TraceInconsistent("valuation mismatch")
        b_odd = b >> val
        c_reduced = c >> val
        modulus_bits = m - val
        inverse = pow(b_odd, -1, 1 << modulus_bits)
        residue = (c_reduced * inverse) % (1 << modulus_bits)
        self._merge(residue, modulus_bits)

    def _merge(self, residue: int, bits: int) -> None:
        common = min(bits, self.bits)
        if (residue ^ self.residue) & ((1 << common) - 1):
            raise TraceInconsistent("conflicting residues")
        if bits > self.bits:
            self.residue = residue
            self.bits = bits

    def known(self, bit_length: int) -> bool:
        return self.bits >= bit_length


class _Affine:
    """An exact integer of the form (a + b·V) / 2^s."""

    __slots__ = ("a", "b", "s")

    def __init__(self, a: int, b: int, s: int = 0) -> None:
        self.a, self.b, self.s = a, b, s

    def constrain_even(self, congruences: _Congruences) -> None:
        # (a + bV)/2^s even  <=>  bV ≡ -a (mod 2^{s+1})
        congruences.add(self.b, -self.a, self.s + 1)

    def constrain_odd(self, congruences: _Congruences) -> None:
        # (a + bV)/2^s odd  <=>  bV ≡ 2^s - a (mod 2^{s+1})
        congruences.add(self.b, (1 << self.s) - self.a, self.s + 1)

    def shifted(self) -> "_Affine":
        return _Affine(self.a, self.b, self.s + 1)

    def minus(self, other: "_Affine") -> "_Affine":
        s = max(self.s, other.s)
        return _Affine(
            self.a * (1 << (s - self.s)) - other.a * (1 << (s - other.s)),
            self.b * (1 << (s - self.s)) - other.b * (1 << (s - other.s)),
            s,
        )


def recover_secret_from_trace(
    details: list[str], e: int, *, max_bits: int = 8192
) -> int:
    """Recover ``phi`` from a perfect binary-GCD operation trace.

    ``details`` is the per-step which-variable trace ("shift_u",
    "shift_v", "sub_u", "sub_v").  Every step's implied parity facts are
    2-adic congruences on ``phi``; the terminal ``u == v`` equality pins
    any remaining slack.  Raises :class:`TraceInconsistent` for impossible
    traces.
    """
    u = _Affine(e, 0)
    v = _Affine(0, 1)
    congruences = _Congruences()
    for detail in details:
        if detail == "shift_u":
            u.constrain_even(congruences)
            u = u.shifted()
        elif detail == "shift_v":
            u.constrain_odd(congruences)
            v.constrain_even(congruences)
            v = v.shifted()
        elif detail == "sub_u":
            u.constrain_odd(congruences)
            v.constrain_odd(congruences)
            u = u.minus(v)
        elif detail == "sub_v":
            u.constrain_odd(congruences)
            v.constrain_odd(congruences)
            v = v.minus(u)
        else:
            raise ValueError(f"unknown trace step {detail!r}")
    # Terminal state (HAC 14.61): u == 0, an exact linear equation in V.
    if u.b != 0:
        if u.a % u.b != 0:
            raise TraceInconsistent("terminal u = 0 unsolvable")
        candidate = -u.a // u.b
        if candidate > 0:
            return candidate
    if congruences.bits == 0:
        raise TraceInconsistent("trace carries no information")
    if congruences.bits > max_bits:
        raise TraceInconsistent("secret larger than max_bits")
    return congruences.residue


def attribute_trace(
    operations: list[str], operands: list[str | None]
) -> list[str]:
    """Rebuild full ``shift_u``-style labels from attacker observations.

    ``operations[i]`` is "shift"/"sub" (from the code-page monitors);
    ``operands[i]`` is "u"/"v" for shift steps (from the operand-buffer
    monitors; subs touch both buffers so their entry is ignored).  A sub's
    direction equals the operand of the *following* shift run (``u - v``
    leaves u even), and the final sub is always ``sub_u`` (it zeroes u).
    """
    if len(operations) != len(operands):
        raise ValueError("operations and operands must align")
    details: list[str] = []
    for index, operation in enumerate(operations):
        if operation == "shift":
            operand = operands[index]
            if operand not in ("u", "v"):
                raise ValueError(f"shift step {index} lacks an operand label")
            details.append(f"shift_{operand}")
        elif operation == "sub":
            following = next(
                (
                    operands[j]
                    for j in range(index + 1, len(operations))
                    if operations[j] == "shift"
                ),
                "u",  # the final sub zeroes u
            )
            details.append(f"sub_{following}")
        else:
            raise ValueError(f"unknown operation {operation!r}")
    return details


def recover_secret_from_operations(
    operations: list[str],
    e: int,
    *,
    modulus: int | None = None,
    max_branches: int = 200_000,
) -> list[int]:
    """Recover ``phi`` candidates from the attacker-visible op stream.

    Unlike :func:`recover_secret_from_trace`, this takes only what
    MetaLeak actually measures — a flat "shift"/"sub" sequence, with no
    which-variable labels.  Attribution is reconstructed:

    * a run of shifts is entirely u-shifts or entirely v-shifts, decided
      by the *preceding* sub (``u - v`` leaves u even and v odd, so the
      following run shifts u; symmetrically for ``v - u``); the first run
      shifts v (``e`` is odd);
    * each sub's own attribution (``u >= v``?) is not observable, so the
      recovery branches on it — and the 2-adic parity constraints from
      subsequent shifts prune wrong branches almost immediately, keeping
      the search near-linear in practice.

    Returns every candidate consistent with the trace.  When the public
    RSA ``modulus`` n is supplied, candidates are filtered by the factor
    check (phi = (p-1)(q-1) ⇒ p, q are integer roots of
    ``x^2 - (n - phi + 1)·x + n``), which in the RSA setting pins the
    answer uniquely.
    """
    solutions: list[int] = []
    branches = 0

    def descend(
        index: int,
        u: _Affine,
        v: _Affine,
        congruences: _Congruences,
        shifting: str,
    ) -> None:
        nonlocal branches
        branches += 1
        if branches > max_branches:
            raise SearchExploded(f"more than {max_branches} branches")
        try:
            while index < len(operations):
                operation = operations[index]
                if operation == "shift":
                    if shifting == "u":
                        u.constrain_even(congruences)
                        u = u.shifted()
                    else:
                        u.constrain_odd(congruences)
                        v.constrain_even(congruences)
                        v = v.shifted()
                    index += 1
                elif operation == "sub":
                    u.constrain_odd(congruences)
                    v.constrain_odd(congruences)
                    # Branch: was this u -= v or v -= u?
                    descend(
                        index + 1, u.minus(v), v, congruences.copy(), "u"
                    )
                    descend(
                        index + 1, u, v.minus(u), congruences.copy(), "v"
                    )
                    return
                else:
                    raise ValueError(f"unknown operation {operation!r}")
            # Terminal state: u == 0.
            if u.b != 0:
                if u.a % u.b == 0:
                    candidate = -u.a // u.b
                    if candidate > 1:
                        solutions.append(candidate)
            elif u.a == 0 and congruences.bits > 0:
                solutions.append(congruences.residue)
        except TraceInconsistent:
            return

    descend(0, _Affine(e, 0), _Affine(0, 1), _Congruences(), "v")
    unique = sorted(set(solutions))
    if modulus is not None:
        unique = [phi for phi in unique if factor_from_phi(modulus, phi)]
    return unique


def factor_from_phi(n: int, phi: int) -> tuple[int, int] | None:
    """Recover (p, q) from the RSA modulus and a candidate phi.

    phi = (p-1)(q-1) = n - (p+q) + 1, so p and q are the integer roots of
    x^2 - s·x + n with s = n - phi + 1.  Returns None when the candidate
    is not consistent with n.
    """
    s = n - phi + 1
    discriminant = s * s - 4 * n
    if discriminant < 0:
        return None
    root = _isqrt(discriminant)
    if root * root != discriminant:
        return None
    p = (s + root) // 2
    q = (s - root) // 2
    if p * q != n or p <= 1 or q <= 1:
        return None
    return p, q


def _isqrt(value: int) -> int:
    import math

    return math.isqrt(value)


def generate_keypair_inputs(bits: int = 64, seed: int = 5) -> tuple[int, int]:
    """(e, phi) pair shaped like RSA key loading: e = 65537, phi even."""
    e, phi, _ = generate_rsa_key(bits, seed)
    return e, phi


def generate_rsa_key(bits: int = 64, seed: int = 5) -> tuple[int, int, int]:
    """(e, phi, n) with n = p*q public, as in real RSA key loading.

    p and q are random odd numbers (not certified primes — the leak and
    the recovery math only need the multiplicative structure), with a
    factor-check-friendly shape: gcd(e, phi) = 1.
    """
    rng = derive_rng(seed, "mbedtls-key")
    e = 65537
    while True:
        p = rng.getrandbits(bits // 2) | (1 << (bits // 2 - 1)) | 1
        q = rng.getrandbits(bits // 2) | (1 << (bits // 2 - 1)) | 1
        phi = (p - 1) * (q - 1)
        if p != q and phi > 1 and gcd(e, phi) == 1:
            return e, phi, p * q
