"""libgcrypt-style RSA modular exponentiation (Listing 2, Section VIII-B1).

libgcrypt 1.5.2's ``_gcry_mpi_powm`` uses square-and-multiply: every
exponent bit squares the accumulator, and a set bit additionally
multiplies.  Compiled with ``--disable-asm`` the two helpers
(``_gcry_mpih_sqr_n_basecase`` / ``_gcry_mpih_mul_karatsuba_case``) live on
separate code pages; instruction fetches into them are the leak.  The
victim models a fetch as a read of the function's page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.os.process import Process
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ModexpStep:
    """One square or multiply operation (generator payload)."""

    operation: str  # "square" | "multiply"
    bit_index: int


class RsaModexpVictim:
    """Square-and-multiply with page-distinct square/multiply routines."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.square_page_vaddr = process.alloc(1)
        self.multiply_page_vaddr = process.alloc(1)

    @property
    def square_frame(self) -> int:
        return self.process.paddr(self.square_page_vaddr) // 4096

    @property
    def multiply_frame(self) -> int:
        return self.process.paddr(self.multiply_page_vaddr) // 4096

    def _fetch_square(self) -> None:
        self.process.read(self.square_page_vaddr)

    def _fetch_multiply(self) -> None:
        self.process.read(self.multiply_page_vaddr)

    def modexp(
        self, base: int, exponent: int, modulus: int
    ) -> Generator[ModexpStep, None, int]:
        """Compute ``base**exponent % modulus``, yielding per operation.

        MSB-first left-to-right square-and-multiply, the libgcrypt 1.5.2
        structure: each iteration squares; bit=1 iterations also multiply.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        result = 1
        bits = exponent.bit_length()
        for bit_index in range(bits - 1, -1, -1):
            self._fetch_square()
            result = (result * result) % modulus
            yield ModexpStep(operation="square", bit_index=bit_index)
            if (exponent >> bit_index) & 1:
                self._fetch_multiply()
                result = (result * base) % modulus
                yield ModexpStep(operation="multiply", bit_index=bit_index)
        return result

    def modexp_batched(self, base: int, exponent: int, modulus: int) -> int:
        """Run the exponentiation submitting its fetches as one batch.

        The instruction-fetch sequence is a pure function of the
        exponent's bits, so it can be recorded up front and submitted
        through the processor's batch API — the access order (and
        therefore every simulated event) is identical to draining
        :meth:`modexp`, just without one Python call per fetch.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        batch = self.process.batch()
        result = 1
        for bit_index in range(exponent.bit_length() - 1, -1, -1):
            batch.read(self.square_page_vaddr)
            result = (result * result) % modulus
            if (exponent >> bit_index) & 1:
                batch.read(self.multiply_page_vaddr)
                result = (result * base) % modulus
        batch.run()
        return result


def recover_exponent_from_ops(operations: list[str]) -> int:
    """Rebuild the exponent from a square/multiply operation trace.

    A square followed by a multiply is a 1 bit; a square followed by
    another square (or end of trace) is a 0 bit.  The leading bit of any
    non-zero exponent is implicitly 1 (the loop starts at the MSB).
    """
    bits: list[int] = []
    index = 0
    while index < len(operations):
        operation = operations[index]
        if operation != "square":
            raise ValueError(f"malformed trace at {index}: {operation!r}")
        if index + 1 < len(operations) and operations[index + 1] == "multiply":
            bits.append(1)
            index += 2
        else:
            bits.append(0)
            index += 1
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


def generate_test_key(bits: int = 128, seed: int = 99) -> tuple[int, int, int]:
    """A (base, exponent, modulus) triple for experiments.

    Not cryptographically meaningful — the attack targets the *access
    pattern*, which depends only on the exponent's bits.
    """
    rng = derive_rng(seed, "rsa-key")
    exponent = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    modulus = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
    base = rng.getrandbits(bits // 2) | 1
    return base, exponent, modulus
