"""Victim applications for the MetaLeak case studies (Section VIII).

Each victim runs "on" a :class:`~repro.proc.SecureProcessor` through a
:class:`~repro.os.Process` / :class:`~repro.sgx.Enclave`, placing its
secret-dependent variables (or function code) on distinct pages so the
paper's leak gadgets are reproduced faithfully:

* :mod:`repro.victims.jpeg` — a libjpeg-style encoder whose
  ``encode_one_block`` loop touches the ``r`` page for zero coefficients
  and the ``nbits`` page for non-zero ones (Listing 1);
* :mod:`repro.victims.rsa` — libgcrypt-style square-and-multiply modular
  exponentiation with the two functions on separate code pages;
* :mod:`repro.victims.mbedtls` — mbedTLS-style private-key loading whose
  modular inversion alternates page-distinct shift and subtract routines.
"""

from repro.victims.jpeg.encoder import JpegVictim
from repro.victims.mbedtls import KeyLoadVictim, recover_secret_from_trace
from repro.victims.rsa import RsaModexpVictim, recover_exponent_from_ops

__all__ = [
    "JpegVictim",
    "KeyLoadVictim",
    "recover_secret_from_trace",
    "RsaModexpVictim",
    "recover_exponent_from_ops",
]
