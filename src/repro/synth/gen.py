"""Seeded random program generator (the fuzzer's front end).

Programs are drawn from :func:`~repro.utils.rng.derive_rng`-seeded
randomness, so generation is a pure function of ``(seed, GenConfig)``:
the fuzz driver, the service's ``synth`` job kind, and the bench
scenario all regenerate identical programs from the same seed, which is
what lets generated programs cache in the campaign DB like any other
task.

The op mix is biased toward the shapes that reach the metadata path:
flush-then-read sequences force counter fetches and tree walks
(MetaLeak-T territory), and cleansed writes plus drains exercise the
memory-controller write queue (MetaLeak-C territory).  Every program is
guaranteed at least one secret-guarded op — a program with no guards is
constant by construction and can never trip the paired-secret oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.synth.ir import (
    LINES_PER_PAGE,
    MAX_COUNT,
    MAX_OPS,
    MAX_PAGES,
    MAX_STRIDE,
    Guard,
    Op,
    OpKind,
    Program,
    ProgramError,
    validate_program,
)
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class GenConfig:
    """Generator knobs (see docs/synth.md for the tuning rationale)."""

    max_pages: int = 4
    min_ops: int = 6
    max_ops: int = 24
    p_guard: float = 0.35        # per-op probability of a secret guard
    p_cleanse: float = 0.5       # per-program write-through threat model
    max_count: int = 8           # repetitions per op
    max_stride: int = 4          # line stride per op
    # Relative op-kind weights (READ, WRITE, FLUSH, EVICT, DRAIN).
    weights: tuple[float, float, float, float, float] = (4, 3, 2, 1, 1)

    def validate(self) -> "GenConfig":
        if not 1 <= self.max_pages <= MAX_PAGES:
            raise ProgramError(
                f"max_pages must be in [1, {MAX_PAGES}], got {self.max_pages}"
            )
        if not 1 <= self.min_ops <= self.max_ops <= MAX_OPS:
            raise ProgramError(
                f"need 1 <= min_ops <= max_ops <= {MAX_OPS}, got "
                f"[{self.min_ops}, {self.max_ops}]"
            )
        if not 1 <= self.max_count <= MAX_COUNT:
            raise ProgramError(
                f"max_count must be in [1, {MAX_COUNT}], got {self.max_count}"
            )
        if not 1 <= self.max_stride <= MAX_STRIDE:
            raise ProgramError(
                f"max_stride must be in [1, {MAX_STRIDE}], "
                f"got {self.max_stride}"
            )
        if not 0.0 <= self.p_guard <= 1.0 or not 0.0 <= self.p_cleanse <= 1.0:
            raise ProgramError("p_guard and p_cleanse must be in [0, 1]")
        if len(self.weights) != 5 or any(w < 0 for w in self.weights) or \
                sum(self.weights) <= 0:
            raise ProgramError(
                "weights must be 5 non-negative numbers with a positive sum"
            )
        return self


_KINDS = (OpKind.READ, OpKind.WRITE, OpKind.FLUSH, OpKind.EVICT, OpKind.DRAIN)


def generate_program(seed: int, config: GenConfig | None = None) -> Program:
    """Draw one valid program from ``seed`` (deterministic)."""
    cfg = (config or GenConfig()).validate()
    rng = derive_rng(seed, "synth-gen")
    pages = rng.randint(1, cfg.max_pages)
    n_ops = rng.randint(cfg.min_ops, cfg.max_ops)
    ops = []
    for _ in range(n_ops):
        kind = rng.choices(_KINDS, weights=cfg.weights)[0]
        guard = Guard.ALWAYS
        if rng.random() < cfg.p_guard:
            guard = Guard.IF_ONE if rng.random() < 0.5 else Guard.IF_ZERO
        ops.append(
            Op(
                kind=kind,
                guard=guard,
                page=rng.randrange(pages),
                offset=rng.randrange(LINES_PER_PAGE),
                count=rng.randint(1, cfg.max_count),
                stride=rng.randint(1, cfg.max_stride),
            )
        )
    if all(op.guard is Guard.ALWAYS for op in ops):
        # An unguarded program is constant-time by construction; force
        # one secret-dependent op so the draw can at least participate.
        index = rng.randrange(len(ops))
        ops[index] = replace(ops[index], guard=Guard.IF_ONE)
    program = Program(
        pages=pages,
        ops=tuple(ops),
        cleanse=rng.random() < cfg.p_cleanse,
    )
    return validate_program(program)


def generate_batch(
    seed: int, count: int, config: GenConfig | None = None
) -> list[tuple[int, Program]]:
    """``count`` programs at consecutive generator seeds from ``seed``."""
    if count < 1:
        raise ProgramError(f"batch count must be positive, got {count}")
    return [(seed + i, generate_program(seed + i, config))
            for i in range(count)]
