"""Delta-debugging witness minimizer.

Any leaking program the fuzzer finds is noise until it is small enough
to read; the minimizer shrinks it to a *witness* — a minimal program
that still trips the paired-secret oracle on the target channel family
— using classic ddmin over the op sequence followed by per-op field
shrinking (count -> 1, stride -> 1, guards cleared where possible,
page pool and cleanse mode reduced).

The invariant is absolute: **every candidate reduction re-runs the
oracle**, and a candidate replaces the current program only if it still
leaks the target.  The final witness is therefore leaking by
construction (it is the last accepted candidate), and minimizing a
program that does not leak the target raises
:class:`MinimizationError` instead of fabricating a witness.

Witnesses serialise to a small reproducible JSON document (program +
machine + flagged channels + provenance) that is checked into the repo
as a regression fixture and re-verified by ``repro synth verify``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace
from typing import Callable

from repro.synth.ir import (
    SCHEMA_VERSION,
    Guard,
    Program,
    program_from_dict,
    program_to_dict,
    validate_program,
)
from repro.synth.runner import (
    SynthResult,
    evaluate_program,
    resolve_target,
)
from repro.utils.provenance import git_rev as _git_rev


class MinimizationError(ValueError):
    """The input program does not leak the requested target."""


@dataclass(frozen=True)
class MinimizeResult:
    """A minimization run's outcome: the witness plus its provenance."""

    witness: Program
    target: str
    preset: str
    defense: str
    channels: tuple[tuple[str, str], ...]  # flagged channels of the witness
    initial_ops: int
    final_ops: int
    oracle_calls: int
    budget_exhausted: bool


class _Oracle:
    """Counting wrapper around the leak oracle, scoped to one target."""

    def __init__(
        self,
        *,
        preset: str,
        defense: str,
        alpha: float,
        components: frozenset[str],
        max_calls: int,
    ) -> None:
        self.preset = preset
        self.defense = defense
        self.alpha = alpha
        self.components = components
        self.max_calls = max_calls
        self.calls = 0
        self.last: SynthResult | None = None

    @property
    def exhausted(self) -> bool:
        return self.calls >= self.max_calls

    def leaks(self, program: Program) -> bool:
        """One oracle query; False (no reduction) once the budget is gone."""
        if self.exhausted:
            return False
        self.calls += 1
        result = evaluate_program(
            program=program, preset=self.preset, defense=self.defense,
            alpha=self.alpha,
        )
        if result.hits(self.components):
            self.last = result
            return True
        return False


def _split(ops: tuple, n: int) -> list[tuple]:
    """``ops`` into ``n`` near-equal contiguous chunks (ddmin partition)."""
    size, rem = divmod(len(ops), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            chunks.append(ops[start:end])
        start = end
    return chunks


def _ddmin_ops(program: Program, oracle: _Oracle) -> Program:
    """Classic ddmin over the op sequence (complement reduction)."""
    current = program
    n = 2
    while len(current.ops) >= 2 and not oracle.exhausted:
        chunks = _split(current.ops, min(n, len(current.ops)))
        reduced = False
        for index in range(len(chunks)):
            complement = tuple(
                op for j, chunk in enumerate(chunks) if j != index
                for op in chunk
            )
            if not complement:
                continue
            candidate = replace(current, ops=complement)
            if oracle.leaks(candidate):
                current = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(current.ops):
                break
            n = min(len(current.ops), n * 2)
    return current


def _shrink_fields(program: Program, oracle: _Oracle) -> Program:
    """Per-op and whole-program simplifications, cheapest-first."""
    current = program
    for index in range(len(current.ops)):
        op = current.ops[index]
        candidates = []
        if op.count > 1:
            candidates.append(replace(op, count=1))
        if op.stride > 1:
            candidates.append(replace(op, stride=1))
        if op.offset > 0:
            candidates.append(replace(op, offset=0))
        if op.guard is not Guard.ALWAYS:
            candidates.append(replace(op, guard=Guard.ALWAYS))
        for simplified in candidates:
            if oracle.exhausted:
                return current
            ops = list(current.ops)
            ops[index] = simplified
            candidate = replace(current, ops=tuple(ops))
            if oracle.leaks(candidate):
                current = candidate
                op = simplified
    # Shrink the page pool to what the ops actually reference.
    used = max((op.page for op in current.ops), default=0) + 1
    if used < current.pages and not oracle.exhausted:
        candidate = replace(current, pages=used)
        if oracle.leaks(candidate):
            current = candidate
    if current.cleanse and not oracle.exhausted:
        candidate = replace(current, cleanse=False)
        if oracle.leaks(candidate):
            current = candidate
    return current


def minimize_program(
    program: Program,
    *,
    target: str = "metadata",
    preset: str = "sct",
    defense: str = "none",
    alpha: float = 0.01,
    max_oracle_calls: int = 400,
    progress: Callable[[str], None] | None = None,
) -> MinimizeResult:
    """Shrink ``program`` to a minimal witness that still leaks ``target``.

    Raises :class:`MinimizationError` when the input does not leak the
    target to begin with — a witness must be a reduction of an observed
    leak, never an invention.
    """
    validate_program(program)
    if max_oracle_calls < 2:
        raise ValueError(
            f"max_oracle_calls must be >= 2, got {max_oracle_calls}"
        )
    components = resolve_target(target)
    oracle = _Oracle(
        preset=preset, defense=defense, alpha=alpha,
        components=components, max_calls=max_oracle_calls,
    )
    if not oracle.leaks(program):
        raise MinimizationError(
            f"program does not leak target {target!r} on "
            f"preset={preset} defense={defense}; nothing to minimize"
        )
    if progress is not None:
        progress(f"input leaks {target}: {len(program.ops)} op(s)")
    current = _ddmin_ops(program, oracle)
    if progress is not None:
        progress(f"ddmin: {len(program.ops)} -> {len(current.ops)} op(s) "
                 f"({oracle.calls} oracle calls)")
    current = _shrink_fields(current, oracle)
    if progress is not None:
        progress(f"field shrink done: {len(current.ops)} op(s) "
                 f"({oracle.calls} oracle calls)")
    # Final re-check: the witness the caller gets is verified as-is.
    final = evaluate_program(
        program=current, preset=preset, defense=defense, alpha=alpha
    )
    oracle.calls += 1
    if not final.hits(components):  # pragma: no cover - invariant guard
        raise MinimizationError(
            "minimizer invariant violated: accepted witness stopped leaking"
        )
    return MinimizeResult(
        witness=current,
        target=target,
        preset=preset,
        defense=defense,
        channels=final.channels,
        initial_ops=len(program.ops),
        final_ops=len(current.ops),
        oracle_calls=oracle.calls,
        budget_exhausted=oracle.exhausted,
    )


# -- witness files ---------------------------------------------------------


def witness_to_dict(result: MinimizeResult) -> dict[str, object]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "synth-witness",
        "target": result.target,
        "preset": result.preset,
        "defense": result.defense,
        "channels": [list(pair) for pair in result.channels],
        "program": program_to_dict(result.witness),
        "provenance": {
            "initial_ops": result.initial_ops,
            "final_ops": result.final_ops,
            "oracle_calls": result.oracle_calls,
            "budget_exhausted": result.budget_exhausted,
            "git_rev": _git_rev(),
        },
    }


def write_witness(
    result: MinimizeResult, path: str | pathlib.Path
) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(witness_to_dict(result), indent=2, sort_keys=True) + "\n"
    )
    return out


@dataclass(frozen=True)
class Witness:
    """A loaded witness file, ready for re-verification."""

    target: str
    preset: str
    defense: str
    program: Program
    channels: tuple[tuple[str, str], ...]

    def verify(self, *, alpha: float = 0.01) -> SynthResult:
        """Re-run the oracle; raises MinimizationError if it went stale."""
        result = evaluate_program(
            program=self.program, preset=self.preset, defense=self.defense,
            alpha=alpha,
        )
        if not result.hits(resolve_target(self.target)):
            raise MinimizationError(
                f"witness no longer leaks target {self.target!r} on "
                f"preset={self.preset} defense={self.defense}"
            )
        return result


def load_witness(path: str | pathlib.Path) -> Witness:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("kind") != "synth-witness":
        raise ValueError(f"{path}: not a synth witness file")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported witness schema "
            f"{data.get('schema_version')!r} (want {SCHEMA_VERSION})"
        )
    resolve_target(str(data["target"]))
    return Witness(
        target=str(data["target"]),
        preset=str(data["preset"]),
        defense=str(data["defense"]),
        program=program_from_dict(data["program"]),
        channels=tuple(
            (str(c), str(k)) for c, k in data.get("channels", [])
        ),
    )
