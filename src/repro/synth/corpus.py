"""Persistent corpus of leaking programs (sqlite, WAL).

The corpus is the fuzzer's long-term memory: every leaking program a
fuzz batch discovers is upserted here with its flagged channels, so

* coverage accumulates across batches, machines, and service jobs —
  the per-(component, kind) stats answer "which metadata channels have
  we synthesized an attack for, and on which preset/defense?";
* the minimizer has a pool to pick witnesses from (smallest program
  hitting a target first);
* CI can upload the corpus DB as an artifact and diff coverage between
  revisions.

Rows are keyed by the program's canonical JSON hashed together with the
machine (preset/defense), so re-discovering the same program is an
upsert, not a duplicate.  Like the campaign DB, writes favour
durability over throughput: one transaction per upsert, WAL mode.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time

from repro.synth.ir import Program, program_from_json, program_to_json
from repro.synth.runner import SynthResult

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS programs (
    key TEXT PRIMARY KEY,
    preset TEXT NOT NULL,
    defense TEXT NOT NULL,
    gen_seed INTEGER NOT NULL,
    ops INTEGER NOT NULL,
    metadata_leaky INTEGER NOT NULL,
    channels TEXT NOT NULL,
    program TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_programs_machine
    ON programs (preset, defense);
"""


def corpus_key(program: Program, preset: str, defense: str) -> str:
    """Stable identity of (program content, machine)."""
    material = "\x1f".join((program_to_json(program), preset, defense))
    return hashlib.blake2b(material.encode(), digest_size=16).hexdigest()


class CorpusEntry:
    """One stored leaking program (decoded row)."""

    __slots__ = ("key", "preset", "defense", "gen_seed", "ops",
                 "metadata_leaky", "channels", "program", "created")

    def __init__(self, row: sqlite3.Row) -> None:
        self.key: str = row["key"]
        self.preset: str = row["preset"]
        self.defense: str = row["defense"]
        self.gen_seed: int = row["gen_seed"]
        self.ops: int = row["ops"]
        self.metadata_leaky: bool = bool(row["metadata_leaky"])
        self.channels: tuple[tuple[str, str], ...] = tuple(
            (str(c), str(k)) for c, k in json.loads(row["channels"])
        )
        self.program: Program = program_from_json(row["program"])
        self.created: float = row["created"]

    def hits(self, components: frozenset[str]) -> bool:
        if not components:
            return True
        return any(c in components for c, _ in self.channels)


class Corpus:
    """Sqlite-backed store of leaking programs and evaluation tallies."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    # -- writes ------------------------------------------------------------

    def add(self, result: SynthResult) -> bool:
        """Record one leaking result; returns True if the row was new.

        Non-leaking results only bump the evaluation tally — the corpus
        stores attacks, not the whole search history.
        """
        self._bump("evaluated_total")
        if not result.leaky:
            return False
        key = corpus_key(result.program, result.preset, result.defense)
        existed = self._conn.execute(
            "SELECT 1 FROM programs WHERE key = ?", (key,)
        ).fetchone()
        self._conn.execute(
            "INSERT OR REPLACE INTO programs "
            "(key, preset, defense, gen_seed, ops, metadata_leaky, "
            " channels, program, created) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                result.preset,
                result.defense,
                result.gen_seed,
                len(result.program.ops),
                int(result.metadata_leaky),
                json.dumps([list(pair) for pair in result.channels]),
                program_to_json(result.program),
                time.time(),
            ),
        )
        self._conn.commit()
        return existed is None

    def _bump(self, key: str, by: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "value = CAST(CAST(value AS INTEGER) + excluded.value AS TEXT)",
            (key, str(by)),
        )
        self._conn.commit()

    # -- reads -------------------------------------------------------------

    @property
    def evaluated_total(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'evaluated_total'"
        ).fetchone()
        return int(row["value"]) if row is not None else 0

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM programs").fetchone()
        return int(row["n"])

    def entries(
        self,
        *,
        preset: str | None = None,
        defense: str | None = None,
    ) -> list[CorpusEntry]:
        """All stored programs, smallest first (minimizer-friendly)."""
        sql = "SELECT * FROM programs"
        clauses, params = [], []
        if preset is not None:
            clauses.append("preset = ?")
            params.append(preset)
        if defense is not None:
            clauses.append("defense = ?")
            params.append(defense)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY ops ASC, created ASC"
        return [CorpusEntry(row)
                for row in self._conn.execute(sql, tuple(params))]

    def best_for(
        self,
        components: frozenset[str],
        *,
        preset: str | None = None,
        defense: str | None = None,
    ) -> CorpusEntry | None:
        """Smallest stored program whose channels hit ``components``."""
        for entry in self.entries(preset=preset, defense=defense):
            if entry.hits(components):
                return entry
        return None

    def coverage(
        self,
        *,
        preset: str | None = None,
        defense: str | None = None,
    ) -> dict[tuple[str, str], int]:
        """Programs per flagged (component, kind) channel."""
        tally: dict[tuple[str, str], int] = {}
        for entry in self.entries(preset=preset, defense=defense):
            for channel in entry.channels:
                tally[channel] = tally.get(channel, 0) + 1
        return tally

    def summary_lines(self) -> list[str]:
        lines = [
            f"corpus: {len(self)} leaking program(s) from "
            f"{self.evaluated_total} evaluated ({self.path})"
        ]
        coverage = self.coverage()
        for (component, kind) in sorted(coverage):
            lines.append(
                f"  {component:<10} {kind:<18} {coverage[(component, kind)]:>4}"
            )
        return lines

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Corpus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
