"""IR -> leakcheck bridge: compile and evaluate synthesized programs.

``evaluate_program`` is the fuzzer's oracle and a module-level,
campaign-resolvable callable: its kwargs (a :class:`Program` dataclass
plus plain scalars) encode through the campaign payload codec, so
generated programs hash into stable campaign config hashes, cache in
the campaign DB, and journal through the service exactly like the
hand-written figure/leakcheck tasks.

Classification is per (component, kind): a program *leaks* if the
paired-secret detector flags any kind at all, and it hits a *metadata
channel* if a flagged kind belongs to the metadata path (``mee`` /
``tree`` / ``memctrl`` / ``dram`` / ``crypto``) rather than just the
data caches.  The two paper attacks appear as named targets:

* ``metaleak_t`` — flagged ``mee``/``tree`` kinds (counter fetches,
  tree walks, node loads);
* ``metaleak_c`` — flagged ``memctrl``/``dram`` kinds (write-queue
  enqueues/drains, bank addresses of serviced writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.config import (
    BLOCK_SIZE,
    MIB,
    PAGE_SIZE,
    SecureProcessorConfig,
    preset_config,
)
from repro.leakcheck.detector import LeakReport, run_leakcheck
from repro.leakcheck.victims import VictimSpec
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor
from repro.synth.ir import (
    Guard,
    OpKind,
    Program,
    op_lines,
    validate_program,
)

#: Components that make up the metadata path; a leak confined to the
#: other components (core caches, proc) is a classical data channel.
METADATA_COMPONENTS = frozenset({"mee", "tree", "memctrl", "dram", "crypto"})

#: Named channel targets the minimizer and CI gate on.  Each maps to the
#: trace components whose flagged kinds count as a hit.
TARGETS: dict[str, frozenset[str]] = {
    "metaleak_t": frozenset({"mee", "tree"}),
    "metaleak_c": frozenset({"memctrl", "dram"}),
    "metadata": METADATA_COMPONENTS,
    "any": frozenset(),  # empty = any flagged kind counts
}

#: Defense knobs applied on top of a preset (Section IX mitigations).
DEFENSES = ("none", "isolated_trees", "split_llc")


def target_names() -> list[str]:
    return sorted(TARGETS)


def resolve_target(name: str) -> frozenset[str]:
    components = TARGETS.get(name)
    if components is None:
        raise ValueError(
            f"unknown synth target {name!r}; choose from {target_names()}"
        )
    return components


def synth_config(
    preset: str = "sct", defense: str = "none", **overrides: object
) -> SecureProcessorConfig:
    """The machine a synthesized program runs on.

    Functional crypto is off (the oracle reads event streams, not
    plaintexts) and the timer is jitter-free so the paired runs are
    exactly reproducible; the protected size is scaled down because a
    synth program's footprint is at most ``MAX_PAGES`` pages.
    """
    if defense not in DEFENSES:
        raise ValueError(
            f"unknown synth defense {defense!r}; choose from {list(DEFENSES)}"
        )
    base: dict[str, object] = {
        "functional_crypto": False,
        "timer_jitter_sigma": 0.0,
    }
    if preset != "sgx":
        base["protected_size"] = 64 * MIB
    if defense == "isolated_trees":
        base["isolated_trees"] = True
    elif defense == "split_llc":
        base["sockets"] = 2
    base.update(overrides)
    return preset_config(preset, **base)


def _execute(proc: SecureProcessor, program: Program, secret: object) -> None:
    """Run one side of the paired experiment (``secret`` is the bit).

    The whole program is a pure function of the bit (guards are resolved
    at record time), so it compiles to one access batch; under the
    oracle's tracer this executes the scalar reference path, keeping
    event streams identical to per-op execution.
    """
    bit = int(secret) & 1  # type: ignore[call-overload]
    allocator = PageAllocator(
        proc.layout.data_size // PAGE_SIZE, cores=proc.config.cores
    )
    process = Process(
        proc, allocator, core=0, cleanse=program.cleanse, name="synth"
    )
    base = process.alloc(program.pages)
    batch = process.batch()
    for op in program.ops:
        if op.guard is Guard.IF_ONE and bit != 1:
            continue
        if op.guard is Guard.IF_ZERO and bit != 0:
            continue
        if op.kind is OpKind.DRAIN:
            batch.drain()
            continue
        for line in op_lines(program, op):
            vaddr = base + line * BLOCK_SIZE
            if op.kind is OpKind.READ:
                batch.read(vaddr)
            elif op.kind is OpKind.WRITE:
                batch.write(vaddr, b"\x5a")
            else:  # FLUSH / EVICT
                batch.flush(vaddr)
    batch.drain()
    batch.run()


def compile_program(program: Program, *, name: str = "synth") -> VictimSpec:
    """A :class:`VictimSpec` whose paired secrets are the bits 0 and 1."""
    validate_program(program)

    def _secrets(seed: int) -> tuple[int, int]:
        del seed  # the IR's secret space is exactly one bit
        return 0, 1

    def _run(proc: SecureProcessor, secret: object) -> None:
        _execute(proc, program, secret)

    return VictimSpec(
        name=name,
        description=program.describe(),
        secrets=_secrets,
        run=_run,
    )


@dataclass(frozen=True)
class SynthResult:
    """The oracle's verdict for one generated program.

    Carries the program itself so a corpus (or a cached campaign row)
    is self-contained: any stored result can be re-run or minimized
    without the generator seed that produced it.
    """

    program: Program
    preset: str
    defense: str
    alpha: float
    gen_seed: int
    leaky: bool
    metadata_leaky: bool
    channels: tuple[tuple[str, str], ...]  # flagged (component, kind)
    events: int

    def hits(self, components: frozenset[str]) -> bool:
        """Does any flagged kind land in ``components`` (empty = any)?"""
        if not self.leaky:
            return False
        if not components:
            return True
        return any(component in components for component, _ in self.channels)

    def hit_targets(self) -> tuple[str, ...]:
        """Named targets this program's flagged channels satisfy."""
        return tuple(
            name for name in target_names()
            if TARGETS[name] and self.hits(TARGETS[name])
        )


def classify_report(report: LeakReport) -> tuple[tuple[str, str], ...]:
    """The flagged (component, kind) channels of one leak report."""
    return tuple(
        (finding.component, finding.kind)
        for finding in report.flagged_findings
    )


def evaluate_program(
    *,
    program: Program,
    preset: str = "sct",
    defense: str = "none",
    alpha: float = 0.01,
    gen_seed: int = -1,
    capacity: int = 1 << 18,
) -> SynthResult:
    """Run the paired-secret oracle on one program and classify it."""
    config = synth_config(preset, defense)
    spec = compile_program(program)
    with obs.start_span(
        "oracle.evaluate", kind="oracle.evaluate",
        attrs={"preset": preset, "defense": defense, "gen_seed": gen_seed},
    ) as span:
        report = run_leakcheck(
            spec, seed=0, alpha=alpha, capacity=capacity, config=config
        )
        channels = classify_report(report)
        span.set("leaky", report.leaky)
    return SynthResult(
        program=program,
        preset=preset,
        defense=defense,
        alpha=alpha,
        gen_seed=gen_seed,
        leaky=report.leaky,
        metadata_leaky=any(
            component in METADATA_COMPONENTS for component, _ in channels
        ),
        channels=channels,
        events=report.events_a + report.events_b,
    )
