"""Attack-synthesis fuzzer with witness minimization (``repro.synth``).

AMuLeT-style automated leak discovery on top of the existing stack: a
seeded generator emits random attacker/victim access-pattern programs
in a small declarative IR, the campaign engine fans them out to the
``repro.leakcheck`` paired-secret oracle at scale, leaking programs
accumulate in a persistent corpus with per-(component, kind) channel
coverage, and a delta-debugging minimizer reduces any find to a small
machine-checkable witness.  See docs/synth.md.
"""

from repro.synth.corpus import Corpus, CorpusEntry, corpus_key
from repro.synth.fuzz import FuzzReport, build_fuzz_tasks, run_fuzz, task_name
from repro.synth.gen import GenConfig, generate_batch, generate_program
from repro.synth.ir import (
    Guard,
    Op,
    OpKind,
    Program,
    ProgramError,
    format_program,
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
    strip_guards,
    validate_program,
)
from repro.synth.minimize import (
    MinimizationError,
    MinimizeResult,
    Witness,
    load_witness,
    minimize_program,
    witness_to_dict,
    write_witness,
)
from repro.synth.runner import (
    DEFENSES,
    METADATA_COMPONENTS,
    TARGETS,
    SynthResult,
    compile_program,
    evaluate_program,
    resolve_target,
    synth_config,
    target_names,
)

__all__ = [
    "DEFENSES",
    "METADATA_COMPONENTS",
    "TARGETS",
    "Corpus",
    "CorpusEntry",
    "FuzzReport",
    "GenConfig",
    "Guard",
    "MinimizationError",
    "MinimizeResult",
    "Op",
    "OpKind",
    "Program",
    "ProgramError",
    "SynthResult",
    "Witness",
    "build_fuzz_tasks",
    "compile_program",
    "corpus_key",
    "evaluate_program",
    "format_program",
    "generate_batch",
    "generate_program",
    "load_witness",
    "minimize_program",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
    "resolve_target",
    "run_fuzz",
    "strip_guards",
    "synth_config",
    "target_names",
    "task_name",
    "validate_program",
    "witness_to_dict",
    "write_witness",
]
