"""Campaign-scale fuzz driver: fan generated programs through the oracle.

One fuzz batch is ``budget`` generated programs evaluated as campaign
tasks: crash-isolated across ``--jobs`` workers, retried with backoff,
cached by config hash (a re-run of the same seed range is served from
the campaign DB without executing), and folded into the persistent
corpus as results land.  The driver itself stays deterministic — task
identity is the generated program, and generation is a pure function of
the seed — so a serial batch and a sharded batch discover the same
programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.engine import CampaignEngine, CampaignTask
from repro.runner.core import TaskRecord
from repro.synth.corpus import Corpus
from repro.synth.gen import GenConfig, generate_batch
from repro.synth.ir import Program
from repro.synth.runner import (
    DEFENSES,
    TARGETS,
    SynthResult,
    evaluate_program,
    target_names,
)


def task_name(preset: str, defense: str, gen_seed: int) -> str:
    """Campaign task name shared by CLI, service, and bench callers."""
    return f"synth_{preset}_{defense}_g{gen_seed}"


def build_fuzz_tasks(
    *,
    preset: str = "sct",
    defense: str = "none",
    budget: int = 32,
    seed: int = 0,
    alpha: float = 0.01,
    gen: GenConfig | None = None,
) -> list[CampaignTask]:
    """The campaign tasks of one fuzz batch (deterministic in ``seed``)."""
    if defense not in DEFENSES:
        raise ValueError(
            f"unknown synth defense {defense!r}; choose from {list(DEFENSES)}"
        )
    return [
        CampaignTask(
            name=task_name(preset, defense, gen_seed),
            fn=evaluate_program,
            kwargs={
                "program": program,
                "preset": preset,
                "defense": defense,
                "alpha": alpha,
                "gen_seed": gen_seed,
            },
        )
        for gen_seed, program in generate_batch(seed, budget, gen)
    ]


@dataclass
class FuzzReport:
    """Outcome of one fuzz batch."""

    preset: str
    defense: str
    seed: int
    budget: int
    evaluated: int = 0
    failed: int = 0
    leaky: int = 0
    metadata_leaky: int = 0
    new_in_corpus: int = 0
    # "component/kind" -> leaking-program count, batch-local.
    coverage: dict[str, int] = field(default_factory=dict)
    results: list[SynthResult] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def target_hits(self, target: str) -> int:
        components = TARGETS[target]
        return sum(
            1 for result in self.results if result.hits(components)
        )

    def summary_lines(self) -> list[str]:
        lines = [
            f"synth: preset={self.preset} defense={self.defense} "
            f"seed={self.seed} budget={self.budget} -> "
            f"{self.leaky} leaky ({self.metadata_leaky} metadata) / "
            f"{self.evaluated} evaluated, {self.failed} failed, "
            f"{self.new_in_corpus} new in corpus"
        ]
        for name in target_names():
            if not TARGETS[name]:
                continue
            hits = self.target_hits(name)
            marker = "HIT " if hits else "miss"
            lines.append(f"  target {name:<12} {marker} ({hits} program(s))")
        for channel in sorted(self.coverage):
            lines.append(f"  channel {channel:<28} {self.coverage[channel]:>4}")
        return lines


def run_fuzz(
    *,
    preset: str = "sct",
    defense: str = "none",
    budget: int = 32,
    seed: int = 0,
    alpha: float = 0.01,
    gen: GenConfig | None = None,
    engine: CampaignEngine | None = None,
    corpus: Corpus | None = None,
    on_record: Callable[[TaskRecord], None] | None = None,
) -> FuzzReport:
    """Run one fuzz batch through the campaign engine and classify it."""
    if budget < 1:
        raise ValueError(f"fuzz budget must be positive, got {budget}")
    tasks = build_fuzz_tasks(
        preset=preset, defense=defense, budget=budget, seed=seed,
        alpha=alpha, gen=gen,
    )
    if engine is None:
        engine = CampaignEngine(jobs=1)
    report = FuzzReport(
        preset=preset, defense=defense, seed=seed, budget=budget
    )
    batch = engine.run(tasks, on_record=on_record)
    for record in batch.records:
        if not record.ok or not isinstance(record.result, SynthResult):
            report.failed += 1
            report.errors.append(f"{record.name}: {record.status}: "
                                 f"{record.error}")
            continue
        result = record.result
        report.evaluated += 1
        report.results.append(result)
        if corpus is not None:
            if corpus.add(result):
                report.new_in_corpus += 1
        if not result.leaky:
            continue
        report.leaky += 1
        if result.metadata_leaky:
            report.metadata_leaky += 1
        for component, kind in result.channels:
            key = f"{component}/{kind}"
            report.coverage[key] = report.coverage.get(key, 0) + 1
    return report
