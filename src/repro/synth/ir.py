"""Declarative access-pattern IR for synthesized attacker/victim programs.

A :class:`Program` is a tiny straight-line program over a private pool of
``pages`` mapped pages: a sequence of :class:`Op` records (reads, writes,
flushes, contiguous evictions, write-queue drains), each optionally
guarded on the paired-secret bit.  The IR is deliberately small and
declarative so that

* a program is *data* — it round-trips through the campaign payload
  codec (enums, tuples, nested dataclasses), hashes into a stable
  campaign config hash, and serialises to human-readable JSON for the
  corpus and witness files;
* compilation to a :class:`~repro.leakcheck.victims.VictimSpec` is
  deterministic: the same program always performs the same accesses for
  a given secret bit, so the leakcheck oracle's paired-run discipline
  holds (public work identical, divergence only behind guards);
* the delta-debugging minimizer can shrink a program structurally
  (drop ops, reduce counts/strides, clear guards) without ever leaving
  the language.

Addresses are line-granular: op ``i`` of a ``READ page=p offset=o
count=c stride=s`` accesses line ``(p * lines_per_page + o + i*s) mod
span`` of the program's page span, so every generated or shrunk program
stays inside its mapped footprint by construction.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace

from repro.config import BLOCK_SIZE, PAGE_SIZE

#: Cache lines per mapped page (address arithmetic unit of the IR).
LINES_PER_PAGE = PAGE_SIZE // BLOCK_SIZE

#: Hard caps keeping any program laptop-fast and the minimizer bounded.
MAX_PAGES = 16
MAX_OPS = 64
MAX_COUNT = 64
MAX_STRIDE = LINES_PER_PAGE

#: Witness/corpus JSON schema version.
SCHEMA_VERSION = 1


class OpKind(enum.Enum):
    """What one op does to the memory system."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"          # strided clflush: builds metadata-miss paths
    EVICT = "evict"          # contiguous flush run from (page, offset)
    DRAIN = "drain"          # force the MC write queue to service


class Guard(enum.Enum):
    """When an op executes, as a function of the paired-secret bit."""

    ALWAYS = "always"
    IF_ONE = "if_one"
    IF_ZERO = "if_zero"


@dataclass(frozen=True)
class Op:
    """One guarded access-pattern operation."""

    kind: OpKind
    guard: Guard = Guard.ALWAYS
    page: int = 0
    offset: int = 0
    count: int = 1
    stride: int = 1


@dataclass(frozen=True)
class Program:
    """A synthesized victim program: a page pool plus guarded ops.

    ``cleanse`` selects the Section-III write-through threat model (every
    access reaches the LLC/memory controller), which is what exposes the
    MetaLeak-C write-path kinds; with it off, writes coalesce in the data
    caches and the read-path (MetaLeak-T) kinds dominate.
    """

    pages: int
    ops: tuple[Op, ...]
    cleanse: bool = False

    @property
    def span_lines(self) -> int:
        return self.pages * LINES_PER_PAGE

    @property
    def guarded_ops(self) -> int:
        return sum(1 for op in self.ops if op.guard is not Guard.ALWAYS)

    def describe(self) -> str:
        mode = "cleanse" if self.cleanse else "cached"
        return (
            f"synth program: {len(self.ops)} op(s) over {self.pages} "
            f"page(s) [{mode}], {self.guarded_ops} secret-guarded"
        )


class ProgramError(ValueError):
    """A structurally invalid IR program."""


def validate_program(program: Program) -> Program:
    """Check structural invariants; returns the program for chaining."""
    if not 1 <= program.pages <= MAX_PAGES:
        raise ProgramError(
            f"program pages must be in [1, {MAX_PAGES}], got {program.pages}"
        )
    if not program.ops:
        raise ProgramError("program has no ops")
    if len(program.ops) > MAX_OPS:
        raise ProgramError(
            f"program has {len(program.ops)} ops (max {MAX_OPS})"
        )
    for index, op in enumerate(program.ops):
        if not isinstance(op.kind, OpKind) or not isinstance(op.guard, Guard):
            raise ProgramError(f"op {index}: kind/guard must be IR enums")
        if not 0 <= op.page < program.pages:
            raise ProgramError(
                f"op {index}: page {op.page} outside pool of {program.pages}"
            )
        if not 0 <= op.offset < LINES_PER_PAGE:
            raise ProgramError(
                f"op {index}: offset {op.offset} outside page "
                f"({LINES_PER_PAGE} lines)"
            )
        if not 1 <= op.count <= MAX_COUNT:
            raise ProgramError(
                f"op {index}: count must be in [1, {MAX_COUNT}], got {op.count}"
            )
        if not 1 <= op.stride <= MAX_STRIDE:
            raise ProgramError(
                f"op {index}: stride must be in [1, {MAX_STRIDE}], "
                f"got {op.stride}"
            )
    return program


# -- line/address arithmetic (shared by executor and docs examples) --------


def op_lines(program: Program, op: Op) -> list[int]:
    """The line indices (within the program span) an op touches, in order."""
    if op.kind is OpKind.DRAIN:
        return []
    base = op.page * LINES_PER_PAGE + op.offset
    step = 1 if op.kind is OpKind.EVICT else op.stride
    return [(base + i * step) % program.span_lines for i in range(op.count)]


# -- human-readable JSON (corpus rows, witness files) ----------------------


def op_to_dict(op: Op) -> dict[str, object]:
    return {
        "kind": op.kind.value,
        "guard": op.guard.value,
        "page": op.page,
        "offset": op.offset,
        "count": op.count,
        "stride": op.stride,
    }


def op_from_dict(data: dict[str, object]) -> Op:
    return Op(
        kind=OpKind(data["kind"]),
        guard=Guard(data.get("guard", Guard.ALWAYS.value)),
        page=int(data.get("page", 0)),
        offset=int(data.get("offset", 0)),
        count=int(data.get("count", 1)),
        stride=int(data.get("stride", 1)),
    )


def program_to_dict(program: Program) -> dict[str, object]:
    return {
        "pages": program.pages,
        "cleanse": program.cleanse,
        "ops": [op_to_dict(op) for op in program.ops],
    }


def program_from_dict(data: dict[str, object]) -> Program:
    ops = data.get("ops")
    if not isinstance(ops, list):
        raise ProgramError("program JSON needs an 'ops' list")
    program = Program(
        pages=int(data.get("pages", 1)),
        cleanse=bool(data.get("cleanse", False)),
        ops=tuple(op_from_dict(item) for item in ops),
    )
    return validate_program(program)


def program_to_json(program: Program) -> str:
    """Canonical (byte-stable) JSON text of one program."""
    return json.dumps(
        program_to_dict(program), sort_keys=True, separators=(",", ":")
    )


def program_from_json(text: str) -> Program:
    return program_from_dict(json.loads(text))


def format_program(program: Program) -> str:
    """Assembly-style listing, one op per line (CLI / witness review)."""
    lines = [program.describe()]
    for index, op in enumerate(program.ops):
        guard = "" if op.guard is Guard.ALWAYS else f" [{op.guard.value}]"
        if op.kind is OpKind.DRAIN:
            lines.append(f"  {index:>2}: drain{guard}")
            continue
        lines.append(
            f"  {index:>2}: {op.kind.value:<5} page={op.page} "
            f"off={op.offset} x{op.count} stride={op.stride}{guard}"
        )
    return "\n".join(lines)


def strip_guards(program: Program) -> Program:
    """The same program with every guard cleared (its public skeleton)."""
    return replace(
        program,
        ops=tuple(replace(op, guard=Guard.ALWAYS) for op in program.ops),
    )


__all__ = [
    "LINES_PER_PAGE",
    "MAX_COUNT",
    "MAX_OPS",
    "MAX_PAGES",
    "MAX_STRIDE",
    "SCHEMA_VERSION",
    "Guard",
    "Op",
    "OpKind",
    "Program",
    "ProgramError",
    "format_program",
    "op_from_dict",
    "op_lines",
    "op_to_dict",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
    "strip_guards",
    "validate_program",
]
