"""SGX-Step style single stepping of enclave execution ([25]).

Victim programs are written as generators that ``yield`` at each
architectural step of interest (e.g., one loop iteration of a crypto
routine).  The controller models the attacker's APIC timer: after every
``interval`` victim steps it fires an "interrupt" and runs the attacker's
probe callback.  This provides the attack synchronisation that Sections
VI-B and VIII assume ("we interrupt enclave execution every 500 cycles to
ensure mEvict+mReload is performed at each required victim iteration").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, TypeVar

StepPayload = TypeVar("StepPayload")

Probe = Callable[[int, object], None]
"""(step_number, payload_yielded_by_victim) -> None"""


@dataclass
class StepTrace:
    """Record of one stepped execution."""

    steps: int = 0
    interrupts: int = 0
    payloads: list[object] = field(default_factory=list)


class SgxStep:
    """Drives a victim generator with attacker interrupts between steps."""

    def __init__(self, *, interval: int = 1) -> None:
        if interval < 1:
            raise ValueError("interrupt interval must be >= 1")
        self.interval = interval
        self.trace = StepTrace()

    def run(
        self,
        victim: Generator[StepPayload, None, object] | Iterable[StepPayload],
        probe: Probe | None = None,
        *,
        before_step: Probe | None = None,
    ) -> object:
        """Execute the victim to completion under stepping control.

        ``before_step`` fires ahead of each stepped region (the attacker's
        mEvict setup); ``probe`` fires at the interrupt after it (the
        attacker's mReload measurement).  Returns the victim's return value
        when it is a generator, else None.
        """
        iterator = iter(victim)
        result = None
        while True:
            if before_step is not None and self.trace.steps % self.interval == 0:
                before_step(self.trace.steps, None)
            try:
                payload = next(iterator)
            except StopIteration as stop:
                result = getattr(stop, "value", None)
                break
            self.trace.steps += 1
            self.trace.payloads.append(payload)
            if self.trace.steps % self.interval == 0:
                self.trace.interrupts += 1
                if probe is not None:
                    probe(self.trace.steps, payload)
        return result
