"""SGX machine model: EPC, enclaves, and SGX-Step style execution control.

Models the commercially-relevant configuration of Section VIII-B: the MEE
maintains an 8-ary 4-level counter tree (SIT) with 56-bit monolithic
counters over the Enclave Page Cache, the OS is attacker-controlled (frame
placement, interrupt-driven single stepping), and the latency profile is
the slower one of Figure 7.
"""

from repro.sgx.enclave import Enclave
from repro.sgx.machine import SgxMachine
from repro.sgx.sgx_step import SgxStep

__all__ = ["Enclave", "SgxMachine", "SgxStep"]
