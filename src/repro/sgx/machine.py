"""Convenience wrapper assembling the full SGX attack environment."""

from __future__ import annotations

from repro.config import SecureProcessorConfig
from repro.os.page_alloc import PageAllocator
from repro.proc.processor import SecureProcessor
from repro.sgx.enclave import Enclave


class SgxMachine:
    """An SGX system: one processor, an EPC allocator, enclaves on demand.

    The allocator hands out EPC frames; because the OS is attacker-
    controlled, callers may pin any enclave page to any free frame via
    :meth:`Enclave.load_page_at_frame` to achieve SIT-node co-location.
    """

    def __init__(self, config: SecureProcessorConfig | None = None) -> None:
        self.config = config or SecureProcessorConfig.sgx_default()
        self.proc = SecureProcessor(self.config)
        self.allocator = PageAllocator(
            self.proc.layout.data_size // 4096, cores=self.config.cores
        )
        self.enclaves: list[Enclave] = []

    def create_enclave(self, *, core: int = 0, name: str | None = None) -> Enclave:
        enclave = Enclave(
            self.proc,
            self.allocator,
            core=core,
            name=name or f"enclave{len(self.enclaves)}",
        )
        self.enclaves.append(enclave)
        return enclave

    def pages_sharing_tree_node(self, frame: int, level: int) -> range:
        """EPC frames sharing an integrity-tree node block with ``frame``
        at ``level`` — the Section VIII-B sharing-set formula."""
        return self.proc.layout.pages_sharing_node(frame, level)
