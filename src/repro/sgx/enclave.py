"""Enclaves: processes whose EPC frame placement the (malicious) OS picks.

SGX protects enclave memory contents but leaves page-to-frame assignment to
the untrusted OS.  The paper's attacker uses that to create integrity-tree
co-location at a chosen level: it simply maps the victim's sensitive pages
into EPC frames that share a SIT node block with attacker frames
(Section VIII-B, "Attack Setup").
"""

from __future__ import annotations

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.os.process import Process
from repro.proc.processor import SecureProcessor


class Enclave(Process):
    """An SGX enclave: cleansed accesses inside attacker-scheduled frames.

    Enclave code runs with ``cleanse=True`` — the privileged attacker can
    interrupt at will (SGX-Step) and cleanse caches across AEX events, so
    the victim's accesses of interest reach the memory controller, matching
    the Section III threat model.
    """

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        name: str = "enclave",
    ) -> None:
        super().__init__(proc, allocator, core=core, cleanse=True, name=name)

    def load_page_at_frame(self, frame: int, vpage: int | None = None) -> int:
        """OS-controlled EADD: back a new enclave page with ``frame``.

        Returns the virtual address of the mapped page.
        """
        vpage = self.map_page(vpage=vpage, frame=frame)
        return vpage * PAGE_SIZE

    def frame_of_vaddr(self, vaddr: int) -> int:
        return self.address_space.frame_of(vaddr)
