"""Minimal OS model: physical page allocation and process address spaces.

The attacks need two OS-level capabilities the paper leans on:

* the **per-core free-page list** behaviour of Linux that lets an attacker
  steer which physical frame a victim allocation receives (Section
  VIII-A1's page-colocation technique, after [58], [90]);
* simple virtual address spaces so victim programs can place variables on
  chosen pages without knowing physical layout.
"""

from repro.os.page_alloc import PageAllocator
from repro.os.process import AddressSpace, Process

__all__ = ["PageAllocator", "AddressSpace", "Process"]
