"""Physical page allocator with per-core LIFO free lists.

Linux's per-CPU page caches hand a freshly freed frame back to the next
allocation from the same core.  The paper's attacks exploit exactly this to
co-locate victim data with attacker-chosen frames: the attacker frees a
crafted frame on the victim's core immediately before the victim allocates
(Section VIII-A1).  :meth:`stage_for_next_alloc` models that primitive.
"""

from __future__ import annotations

from repro.config import PAGE_SIZE


class PageAllocator:
    """Tracks frames of a protected region; LIFO per-core free lists."""

    def __init__(self, total_pages: int, cores: int = 4) -> None:
        if total_pages <= 0 or cores <= 0:
            raise ValueError("total_pages and cores must be positive")
        self.total_pages = total_pages
        self.cores = cores
        self._free_lists: list[list[int]] = [[] for _ in range(cores)]
        self._allocated: set[int] = set()
        self._next_fresh = 0

    # ------------------------------------------------------------------

    def alloc(self, core: int = 0) -> int:
        """Allocate one frame for ``core`` (per-core LIFO, else fresh)."""
        free_list = self._free_lists[core]
        while free_list:
            frame = free_list.pop()
            if frame not in self._allocated:
                self._allocated.add(frame)
                return frame
        while self._next_fresh < self.total_pages:
            frame = self._next_fresh
            self._next_fresh += 1
            if frame not in self._allocated:
                self._allocated.add(frame)
                return frame
        # Fall back to stealing from any other core's free list.
        for other in range(self.cores):
            while self._free_lists[other]:
                frame = self._free_lists[other].pop()
                if frame not in self._allocated:
                    self._allocated.add(frame)
                    return frame
        raise MemoryError("out of physical pages")

    def alloc_many(self, count: int, core: int = 0) -> list[int]:
        return [self.alloc(core) for _ in range(count)]

    def alloc_specific(self, frame: int) -> int:
        """Claim one specific frame (privileged / OS-assisted placement).

        Under the SGX threat model the attacker controls the OS and can
        assign any EPC frame; under the unprivileged model the same effect
        is achieved through free-list massaging, which this shortcuts.
        """
        self._check_frame(frame)
        if frame in self._allocated:
            raise ValueError(f"frame {frame} already allocated")
        self._allocated.add(frame)
        return frame

    def free(self, frame: int, core: int = 0) -> None:
        """Return a frame to ``core``'s free list (LIFO head)."""
        self._check_frame(frame)
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.discard(frame)
        self._free_lists[core].append(frame)

    def stage_for_next_alloc(self, frame: int, core: int) -> None:
        """Attacker primitive: make ``frame`` the next frame ``core`` gets.

        Models freeing a crafted page on the victim's core right before the
        victim allocates (the per-core free-list attack of [58], [90]).
        """
        self._check_frame(frame)
        if frame in self._allocated:
            self._allocated.discard(frame)
        elif frame in self._free_lists[core]:
            self._free_lists[core].remove(frame)
        self._free_lists[core].append(frame)

    # ------------------------------------------------------------------

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

    def frame_addr(self, frame: int) -> int:
        self._check_frame(frame)
        return frame * PAGE_SIZE

    def _check_frame(self, frame: int) -> None:
        if not 0 <= frame < self.total_pages:
            raise ValueError(
                f"frame {frame} out of range (0..{self.total_pages - 1})"
            )
