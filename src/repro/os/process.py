"""Process and address-space abstractions over the secure processor.

A :class:`Process` owns an :class:`AddressSpace` (virtual-page -> physical-
frame map) and issues reads/writes on a fixed core.  Victim programs are
written against this interface so the same code runs on any machine
configuration (SCT / HT / SGX presets).

The ``cleanse`` flag models the threat-model assumption of Section III that
the victim's accesses of interest reach the LLC/memory controller (cache
cleansing between security-domain switches, or persistent-memory style
write-through): when set, every access is followed by a flush of the line.
"""

from __future__ import annotations

from repro.config import PAGE_SIZE
from repro.os.page_alloc import PageAllocator
from repro.proc.batch import AccessBatch, BatchResult
from repro.proc.processor import AccessResult, SecureProcessor


class AddressSpace:
    """A sparse virtual -> physical page map."""

    def __init__(self, allocator: PageAllocator, core: int = 0) -> None:
        self.allocator = allocator
        self.core = core
        self._map: dict[int, int] = {}
        self._next_vpage = 0x100  # arbitrary non-zero base

    def map_page(self, vpage: int | None = None, frame: int | None = None) -> int:
        """Map a virtual page; returns the virtual page number.

        ``frame`` pins a specific physical frame (attacker/OS-controlled
        placement); otherwise the per-core allocator decides.
        """
        if vpage is None:
            vpage = self._next_vpage
            self._next_vpage += 1
        if vpage in self._map:
            raise ValueError(f"virtual page {vpage:#x} already mapped")
        if frame is None:
            frame = self.allocator.alloc(self.core)
        else:
            frame = self.allocator.alloc_specific(frame)
        self._map[vpage] = frame
        return vpage

    def alloc(self, pages: int = 1) -> int:
        """Map ``pages`` consecutive virtual pages; returns base vaddr."""
        base = self._next_vpage
        for i in range(pages):
            self.map_page(base + i)
        self._next_vpage = base + pages
        return base * PAGE_SIZE

    def translate(self, vaddr: int) -> int:
        vpage, offset = divmod(vaddr, PAGE_SIZE)
        frame = self._map.get(vpage)
        if frame is None:
            raise KeyError(f"virtual address {vaddr:#x} not mapped")
        return frame * PAGE_SIZE + offset

    def frame_of(self, vaddr: int) -> int:
        return self.translate(vaddr) // PAGE_SIZE

    def mapped_pages(self) -> dict[int, int]:
        return dict(self._map)


class Process:
    """A software context: address space + core + cleansing policy."""

    def __init__(
        self,
        proc: SecureProcessor,
        allocator: PageAllocator,
        *,
        core: int = 0,
        cleanse: bool = False,
        name: str = "proc",
    ) -> None:
        self.proc = proc
        self.address_space = AddressSpace(allocator, core)
        self.core = core
        self.cleanse = cleanse
        self.name = name

    def alloc(self, pages: int = 1) -> int:
        return self.address_space.alloc(pages)

    def map_page(self, vpage: int | None = None, frame: int | None = None) -> int:
        return self.address_space.map_page(vpage, frame)

    def read(self, vaddr: int) -> AccessResult:
        paddr = self.address_space.translate(vaddr)
        result = self.proc.read(paddr, core=self.core)
        if self.cleanse:
            self.proc.flush(paddr)
        return result

    def write(self, vaddr: int, data: bytes | None = None) -> AccessResult:
        paddr = self.address_space.translate(vaddr)
        if self.cleanse:
            # Cleansed/persistent writes go straight to the MC.
            return self.proc.write_through(paddr, data, core=self.core)
        return self.proc.write(paddr, data, core=self.core)

    def flush(self, vaddr: int) -> None:
        self.proc.flush(self.address_space.translate(vaddr))

    def paddr(self, vaddr: int) -> int:
        return self.address_space.translate(vaddr)

    def batch(self) -> "ProcessBatch":
        """Start recording a batched access sequence for this process."""
        return ProcessBatch(self)


class ProcessBatch:
    """Batched counterpart of the :class:`Process` access methods.

    Records the same operation sequence the scalar calls would issue —
    translation happens at record time, and the process's ``cleanse``
    policy expands each access into its access+flush (or write-through)
    form — then submits everything through ``SecureProcessor.run_batch``
    in one call.  ``run()`` returns the :class:`BatchResult`.
    """

    __slots__ = ("process", "batch")

    def __init__(self, process: Process) -> None:
        self.process = process
        self.batch = AccessBatch()

    def __len__(self) -> int:
        return len(self.batch)

    def read(self, vaddr: int) -> "ProcessBatch":
        process = self.process
        paddr = process.address_space.translate(vaddr)
        self.batch.read(paddr, core=process.core)
        if process.cleanse:
            self.batch.flush(paddr)
        return self

    def write(self, vaddr: int, data: bytes | None = None) -> "ProcessBatch":
        process = self.process
        paddr = process.address_space.translate(vaddr)
        if process.cleanse:
            self.batch.write_through(paddr, data, core=process.core)
        else:
            self.batch.write(paddr, data, core=process.core)
        return self

    def flush(self, vaddr: int) -> "ProcessBatch":
        self.batch.flush(self.process.address_space.translate(vaddr))
        return self

    def drain(self) -> "ProcessBatch":
        self.batch.drain()
        return self

    def run(self) -> BatchResult:
        return self.process.proc.run_batch(self.batch)
