"""Statistics helpers for latency traces and attack-accuracy reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a latency sample."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float

    def __str__(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.0f} p25={self.p25:.0f} "
            f"med={self.median:.0f} p75={self.p75:.0f} max={self.maximum:.0f} "
            f"mean={self.mean:.1f}"
        )


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already-sorted sample."""
    if not sorted_values:
        raise ValueError("cannot take percentile of an empty sample")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return float(sorted_values[low] * (1 - weight) + sorted_values[high] * weight)


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Summarize a sample of latencies (or any scalar observations)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    return DistributionSummary(
        count=len(data),
        minimum=data[0],
        p25=_percentile(data, 0.25),
        median=_percentile(data, 0.50),
        p75=_percentile(data, 0.75),
        maximum=data[-1],
        mean=sum(data) / len(data),
    )


def accuracy(predicted: Sequence[object], actual: Sequence[object]) -> float:
    """Fraction of positions where ``predicted`` matches ``actual``.

    The sequences are compared positionally over the shorter length;
    missing trailing predictions count as errors, matching how the paper
    scores truncated covert-channel receptions.
    """
    if not actual:
        raise ValueError(
            "accuracy over an empty reference sequence is undefined: "
            "nothing was sent, so there is nothing to score against"
        )
    matched = sum(1 for p, a in zip(predicted, actual) if p == a)
    return matched / len(actual)


def bit_error_rate(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """1 - accuracy, for bit sequences.

    Raises the same :class:`ValueError` as :func:`accuracy` when ``actual``
    is empty — a BER over zero transmitted bits is meaningless, and
    silently returning 0 or 1 would misreport a channel as perfect/broken.
    """
    return 1.0 - accuracy(predicted, actual)


def edit_distance(a: Sequence[object], b: Sequence[object]) -> int:
    """Levenshtein distance (insert/delete/substitute each cost 1)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (item_a != item_b),
                )
            )
        previous = current
    return previous[-1]


def aligned_accuracy(predicted: Sequence[object], actual: Sequence[object]) -> float:
    """Alignment-tolerant accuracy: 1 - edit_distance / len(actual).

    The right score for recovered secret streams (exponent bits, operation
    sequences) where one misclassification inserts or deletes a symbol: a
    single local error should cost one symbol, not desynchronise the whole
    positional comparison.
    """
    if not actual:
        raise ValueError("actual sequence must be non-empty")
    distance = edit_distance(predicted, actual)
    return max(0.0, 1.0 - distance / len(actual))


def hamming_accuracy(predicted: int, actual: int, bits: int) -> float:
    """Bitwise accuracy between two ``bits``-wide integers."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    differing = bin((predicted ^ actual) & ((1 << bits) - 1)).count("1")
    return 1.0 - differing / bits


@dataclass(frozen=True)
class KsResult:
    """Two-sample Kolmogorov-Smirnov test outcome."""

    statistic: float
    pvalue: float
    n_a: int
    n_b: int


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test with the asymptotic Kolmogorov p-value.

    The statistic is the supremum distance between the two empirical CDFs;
    the p-value uses the standard Smirnov approximation (the same formula
    Numerical Recipes and scipy's ``mode='asymp'`` use), which is accurate
    for the sample sizes the leakage detector works with (dozens+) and
    conservative below that.
    """
    xs = sorted(float(v) for v in a)
    ys = sorted(float(v) for v in b)
    if not xs or not ys:
        raise ValueError("both samples must be non-empty")
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n and j < m:
        if xs[i] < ys[j]:
            i += 1
        elif ys[j] < xs[i]:
            j += 1
        else:
            # Tied value: step both CDFs past every copy before comparing,
            # otherwise ties manufacture a spurious gap.
            tied = xs[i]
            while i < n and xs[i] == tied:
                i += 1
            while j < m and ys[j] == tied:
                j += 1
        d = max(d, abs(i / n - j / m))

    en = math.sqrt(n * m / (n + m))
    lam = (en + 0.12 + 0.11 / en) * d
    if lam <= 0:
        pvalue = 1.0
    else:
        # Alternating series; terms decay like exp(-2 k^2 lam^2).
        total = 0.0
        sign = 1.0
        for k in range(1, 101):
            term = sign * 2.0 * math.exp(-2.0 * (k * lam) ** 2)
            total += term
            if abs(term) < 1e-10:
                break
            sign = -sign
        pvalue = min(1.0, max(0.0, total))
    return KsResult(statistic=d, pvalue=pvalue, n_a=n, n_b=m)


def otsu_threshold(values: Sequence[float], bins: int = 128) -> float:
    """Find a threshold separating a bimodal latency sample.

    Classic Otsu's method over a histogram: choose the cut that maximizes
    between-class variance.  Used by the attack calibration step to split
    "metadata hit" from "metadata miss" latency bands without manual tuning.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot threshold an empty sample")
    low, high = data[0], data[-1]
    if low == high:
        raise ValueError(
            f"cannot threshold a degenerate sample: all {len(data)} values "
            f"equal {low} (one latency band, nothing to separate)"
        )
    width = (high - low) / bins
    histogram = [0] * bins
    for value in data:
        index = min(int((value - low) / width), bins - 1)
        histogram[index] += 1

    total = len(data)
    total_weighted = sum(i * count for i, count in enumerate(histogram))
    best_threshold = low
    best_variance = -1.0
    background_count = 0
    background_weighted = 0.0
    for i, count in enumerate(histogram):
        background_count += count
        if background_count == 0:
            continue
        foreground_count = total - background_count
        if foreground_count == 0:
            break
        background_weighted += i * count
        mean_background = background_weighted / background_count
        mean_foreground = (total_weighted - background_weighted) / foreground_count
        variance = (
            background_count
            * foreground_count
            * (mean_background - mean_foreground) ** 2
        )
        if variance > best_variance:
            best_variance = variance
            best_threshold = low + (i + 1) * width
    return best_threshold
