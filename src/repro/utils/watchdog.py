"""Cycle-budget watchdogs for attack loops that must never livelock.

Noise can keep re-evicting the state an attack loop is waiting on: an
eviction-set reduction that never converges, an mOverflow scan whose
overflow tell is drowned out, an ARQ loop retransmitting forever.  Every
such loop in the attack layer accepts a :class:`CycleBudget` and aborts
with a *partial, honestly-flagged* result when the budget runs out,
instead of spinning or raising from deep inside the pipeline.

The budget is denominated in simulated processor cycles (``proc.cycle``),
the only clock the attacker model has, so budgets are deterministic and
seed-reproducible like everything else in the simulator.
"""

from __future__ import annotations

from typing import Protocol


class _CycleSource(Protocol):
    @property
    def cycle(self) -> int: ...  # pragma: no cover - structural typing only


class BudgetExceeded(RuntimeError):
    """Raised by :meth:`CycleBudget.check` when the budget ran dry."""


class CycleBudget:
    """A watchdog over simulated cycles, started at construction time.

    Loops poll :attr:`expired` (graceful abort) or call :meth:`check`
    (raising abort, for callers that prefer exceptions).  A ``None``
    budget is represented by :meth:`unlimited`, which never expires, so
    call sites need no ``if budget is not None`` branching.
    """

    def __init__(self, proc: _CycleSource, max_cycles: int) -> None:
        if max_cycles <= 0:
            raise ValueError(
                f"cycle budget must be positive, got {max_cycles}"
            )
        self._proc = proc
        self.max_cycles = int(max_cycles)
        self.start_cycle = proc.cycle

    @classmethod
    def unlimited(cls, proc: _CycleSource) -> "CycleBudget":
        budget = cls.__new__(cls)
        budget._proc = proc
        budget.max_cycles = 0  # sentinel: never expires
        budget.start_cycle = proc.cycle
        return budget

    @property
    def unbounded(self) -> bool:
        return self.max_cycles == 0

    @property
    def used(self) -> int:
        return self._proc.cycle - self.start_cycle

    @property
    def remaining(self) -> int:
        if self.unbounded:
            return 2**63
        return max(0, self.max_cycles - self.used)

    @property
    def expired(self) -> bool:
        return not self.unbounded and self.used >= self.max_cycles

    def check(self, context: str = "attack loop") -> None:
        if self.expired:
            raise BudgetExceeded(
                f"{context}: cycle budget exhausted "
                f"({self.used} used of {self.max_cycles})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.unbounded:
            return f"CycleBudget(unlimited, used={self.used})"
        return f"CycleBudget(max={self.max_cycles}, used={self.used})"


def ensure_budget(
    proc: _CycleSource, budget: "CycleBudget | int | None"
) -> CycleBudget:
    """Normalise a budget argument: int -> new budget, None -> unlimited."""
    if budget is None:
        return CycleBudget.unlimited(proc)
    if isinstance(budget, CycleBudget):
        return budget
    return CycleBudget(proc, int(budget))
