"""Provenance helpers shared by bench results and the campaign DB.

Both subsystems stamp persisted measurements with the git revision they
were produced under, so a cached or baseline result can never be
silently compared against — or served for — a different code version.
"""

from __future__ import annotations

import pathlib
import subprocess


def git_rev() -> str:
    """The repository HEAD revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"
