"""Provenance helpers shared by bench results and the campaign DB.

Both subsystems stamp persisted measurements with the git revision they
were produced under, so a cached or baseline result can never be
silently compared against — or served for — a different code version.

The revision is memoised after the first successful read: long-running
consumers (the leakcheck service constructs one campaign engine per
job) would otherwise fork a ``git`` subprocess on every task, and the
revision cannot change under a running process anyway.
"""

from __future__ import annotations

import pathlib
import subprocess

_cached_rev: str | None = None


def git_rev(*, refresh: bool = False) -> str:
    """The repository HEAD revision, or ``"unknown"`` outside a checkout."""
    global _cached_rev
    if _cached_rev is not None and not refresh:
        return _cached_rev
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except OSError:
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    _cached_rev = out.stdout.strip()
    return _cached_rev
