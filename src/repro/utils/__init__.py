"""Shared low-level utilities: bit manipulation, deterministic RNG, statistics.

These helpers are substrate-neutral: nothing in here knows about caches,
metadata or attacks.  Higher layers (``repro.mem``, ``repro.secmem``,
``repro.attacks``) build on them.
"""

from repro.utils.bitops import (
    align_down,
    align_up,
    bit_length_of,
    extract_bits,
    is_power_of_two,
    log2_exact,
    mask,
)
from repro.utils.rng import DeterministicRng, derive_rng
from repro.utils.stats import (
    DistributionSummary,
    accuracy,
    bit_error_rate,
    hamming_accuracy,
    otsu_threshold,
    summarize,
)

__all__ = [
    "align_down",
    "align_up",
    "bit_length_of",
    "extract_bits",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "DeterministicRng",
    "derive_rng",
    "DistributionSummary",
    "accuracy",
    "bit_error_rate",
    "hamming_accuracy",
    "otsu_threshold",
    "summarize",
]
