"""Deterministic random-number plumbing.

Every stochastic component in the simulator (replacement tie-breaks, noise
processes, randomized caches, workload generators) draws from a
:class:`DeterministicRng` derived from a single experiment seed, so that any
experiment is exactly reproducible from its seed while distinct components
remain statistically independent.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng(random.Random):
    """A ``random.Random`` that remembers the seed material it was built from.

    Subclassing keeps the full stdlib API (``randrange``, ``shuffle``,
    ``gauss``, ...) available while letting us derive labelled child
    generators via :func:`derive_rng`.
    """

    def __init__(self, seed_material: bytes) -> None:
        self._seed_material = bytes(seed_material)
        super().__init__(int.from_bytes(hashlib.blake2b(self._seed_material).digest()[:16], "little"))

    @property
    def seed_material(self) -> bytes:
        """The bytes this generator was seeded from."""
        return self._seed_material

    def child(self, label: str) -> "DeterministicRng":
        """Derive an independent child generator identified by ``label``."""
        return DeterministicRng(self._seed_material + b"/" + label.encode())


def derive_rng(seed: int | str | bytes, *labels: str) -> DeterministicRng:
    """Build a :class:`DeterministicRng` from a root seed plus a label path.

    >>> a = derive_rng(42, "noise")
    >>> b = derive_rng(42, "noise")
    >>> a.random() == b.random()
    True
    """
    if isinstance(seed, int):
        material = seed.to_bytes(16, "little", signed=True)
    elif isinstance(seed, str):
        material = seed.encode()
    else:
        material = bytes(seed)
    rng = DeterministicRng(material)
    for label in labels:
        rng = rng.child(label)
    return rng
