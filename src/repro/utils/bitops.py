"""Bit-manipulation helpers used throughout the address/metadata layers."""

from __future__ import annotations


def mask(bits: int) -> int:
    """Return an integer with the low ``bits`` bits set.

    >>> mask(3)
    7
    >>> mask(0)
    0
    """
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return (1 << bits) - 1


def extract_bits(value: int, low: int, count: int) -> int:
    """Extract ``count`` bits of ``value`` starting at bit position ``low``.

    >>> extract_bits(0b101100, 2, 3)
    3
    """
    if low < 0 or count < 0:
        raise ValueError("bit positions must be non-negative")
    return (value >> low) & mask(count)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of ``value``, requiring it to be an exact power of two.

    Address decomposition (set index / block offset extraction) relies on
    power-of-two geometry; a non-power-of-two is a configuration error.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def bit_length_of(value: int) -> int:
    """Number of bits needed to represent ``value`` (0 needs 1 bit here)."""
    return max(1, value.bit_length())
