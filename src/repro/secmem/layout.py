"""Physical layout of protected data and its security metadata.

The protected region occupies physical addresses ``[0, protected_size)``.
Above it live, in order: the encryption-counter region (one 64-byte counter
block per counter group), the MAC region, and one region per integrity-tree
level.  Every metadata structure is addressable memory — that is the whole
point of the paper: metadata accesses contend for the metadata cache and
DRAM just like data accesses, and their addresses are *derivable from the
data address*, which is what lets an attacker construct eviction sets for
tree nodes it can never name directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    BLOCK_SIZE,
    PAGE_SIZE,
    CounterScheme,
    SecureProcessorConfig,
)
from repro.mem.block import block_address, block_index
from repro.utils.bitops import align_up

# Counters per 64-byte counter block, by scheme.  Split counters pack one
# page's worth (64-bit major + 64 x 7-bit minors = 64 bytes); monolithic
# 56-bit counters pack eight per block (GC stores per-block snapshots of the
# global counter at the same density).
_BLOCKS_PER_COUNTER_BLOCK = {
    CounterScheme.SPLIT: PAGE_SIZE // BLOCK_SIZE,
    CounterScheme.MONOLITHIC: 8,
    CounterScheme.GLOBAL: 8,
}


@dataclass(frozen=True)
class LevelGeometry:
    """One integrity-tree level's node-block region."""

    level: int
    arity: int
    node_count: int
    base: int

    @property
    def size(self) -> int:
        return self.node_count * BLOCK_SIZE


class MetadataLayout:
    """Address arithmetic between data blocks, counters and tree nodes."""

    def __init__(self, config: SecureProcessorConfig) -> None:
        self.config = config
        self.data_base = 0
        self.data_size = config.protected_size
        if self.data_size % PAGE_SIZE != 0:
            raise ValueError("protected size must be page-aligned")

        self.blocks_per_counter_block = _BLOCKS_PER_COUNTER_BLOCK[
            config.counters.scheme
        ]
        self.num_data_blocks = self.data_size // BLOCK_SIZE
        self.num_counter_blocks = -(-self.num_data_blocks // self.blocks_per_counter_block)

        # Region bases are staggered by a per-region block offset.  Without
        # it, every region base would be congruent mod the metadata-cache
        # set count (regions are large and page-aligned), making the whole
        # verification path of low-index pages alias into one cache set —
        # a pathology real memory maps do not have.
        stagger = 0

        def place(cursor: int, size: int) -> tuple[int, int]:
            nonlocal stagger
            stagger += 37
            base = align_up(cursor, PAGE_SIZE) + stagger * BLOCK_SIZE
            return base, align_up(base + size, PAGE_SIZE)

        self.counter_base, cursor = place(
            self.data_base + self.data_size, self.num_counter_blocks * BLOCK_SIZE
        )
        self.mac_base, cursor = place(cursor, self.num_data_blocks * 8)

        self.levels: list[LevelGeometry] = []
        covered = self.num_counter_blocks
        for level, arity in enumerate(config.tree.arities):
            node_count = max(1, -(-covered // arity))
            base, cursor = place(cursor, node_count * BLOCK_SIZE)
            self.levels.append(
                LevelGeometry(level=level, arity=arity, node_count=node_count, base=base)
            )
            covered = node_count
        self.root_entries = self.levels[-1].node_count
        self.total_size = cursor
        # Memoised verification paths: counter-block index -> tuple of
        # (level, node index, node block address) for every off-chip tree
        # node on the path.  The path is a pure function of the layout, so
        # it is computed once per counter block and shared by the tree
        # walk, the batch tables and the attack address arithmetic.
        self._paths: dict[int, tuple[tuple[int, int, int], ...]] = {}

    # ------------------------------------------------------------------
    # Region predicates
    # ------------------------------------------------------------------

    def is_protected_data(self, addr: int) -> bool:
        return self.data_base <= addr < self.data_base + self.data_size

    def is_counter_addr(self, addr: int) -> bool:
        return (
            self.counter_base
            <= addr
            < self.counter_base + self.num_counter_blocks * BLOCK_SIZE
        )

    def is_tree_addr(self, addr: int) -> bool:
        return any(
            geometry.base <= addr < geometry.base + geometry.size
            for geometry in self.levels
        )

    def is_metadata(self, addr: int) -> bool:
        return addr >= self.counter_base and addr < self.total_size

    # ------------------------------------------------------------------
    # Counter mapping
    # ------------------------------------------------------------------

    def counter_block_index(self, data_addr: int) -> int:
        """Counter-block index covering the data block at ``data_addr``."""
        if not self.is_protected_data(data_addr):
            raise ValueError(f"address {data_addr:#x} outside protected region")
        return block_index(data_addr) // self.blocks_per_counter_block

    def counter_slot(self, data_addr: int) -> int:
        """Index of this data block's counter within its counter block."""
        return block_index(data_addr) % self.blocks_per_counter_block

    def counter_block_addr(self, data_addr: int) -> int:
        return self.counter_base + self.counter_block_index(data_addr) * BLOCK_SIZE

    def counter_block_addr_of_index(self, cb_index: int) -> int:
        return self.counter_base + cb_index * BLOCK_SIZE

    def counter_block_index_of_addr(self, counter_addr: int) -> int:
        return (block_address(counter_addr) - self.counter_base) // BLOCK_SIZE

    def data_blocks_of_counter_block(self, cb_index: int) -> range:
        """Data-block indices covered by counter block ``cb_index``."""
        first = cb_index * self.blocks_per_counter_block
        return range(first, min(first + self.blocks_per_counter_block, self.num_data_blocks))

    def mac_addr(self, data_addr: int) -> int:
        """Address of the MAC word for a data block (8 bytes each)."""
        return self.mac_base + block_index(data_addr) * 8

    # ------------------------------------------------------------------
    # Tree mapping
    # ------------------------------------------------------------------

    def node_index(self, level: int, cb_index: int) -> int:
        """Index of the level-``level`` tree node block on a counter block's
        verification path."""
        index = cb_index
        for geometry in self.levels[: level + 1]:
            index //= geometry.arity
        return index

    def node_addr(self, level: int, index: int) -> int:
        geometry = self.levels[level]
        if not 0 <= index < geometry.node_count:
            raise ValueError(
                f"node index {index} out of range for level {level} "
                f"({geometry.node_count} nodes)"
            )
        return geometry.base + index * BLOCK_SIZE

    def path_of(self, cb_index: int) -> tuple[tuple[int, int, int], ...]:
        """Verification path of counter block ``cb_index``, memoised.

        Returns ``((level, node_index, node_addr), ...)`` for every
        off-chip tree level, leaf level first — the precomputed
        ``decompose`` table the MEE walk and the batch API iterate.
        """
        path = self._paths.get(cb_index)
        if path is None:
            nodes = []
            index = cb_index
            for geometry in self.levels:
                index //= geometry.arity
                nodes.append(
                    (geometry.level, index, geometry.base + index * BLOCK_SIZE)
                )
            path = tuple(nodes)
            self._paths[cb_index] = path
        return path

    def node_addr_for_data(self, data_addr: int, level: int) -> int:
        """Address of the tree node covering ``data_addr`` at ``level``."""
        return self.node_addr(level, self.node_index(level, self.counter_block_index(data_addr)))

    def node_of_addr(self, tree_addr: int) -> tuple[int, int]:
        """Reverse-map a tree-region address to its (level, index)."""
        block = block_address(tree_addr)
        for geometry in self.levels:
            if geometry.base <= block < geometry.base + geometry.size:
                return geometry.level, (block - geometry.base) // BLOCK_SIZE
        raise ValueError(f"address {tree_addr:#x} is not in a tree region")

    def parent_of(self, level: int, index: int) -> tuple[int, int] | None:
        """(level, index) of the parent node block, or None for root level."""
        if level + 1 >= len(self.levels):
            return None
        return level + 1, index // self.levels[level + 1].arity

    def child_slot(self, level: int, index: int) -> int:
        """Position of node (level, index) within its parent's children."""
        if level + 1 >= len(self.levels):
            return index  # slot within the on-chip root array
        return index % self.levels[level + 1].arity

    def children_of(self, level: int, index: int) -> range:
        """Child indices of node (level, index) at level-1 (level 0's
        children are counter-block indices)."""
        arity = self.levels[level].arity
        if level == 0:
            upper = self.num_counter_blocks
        else:
            upper = self.levels[level - 1].node_count
        first = index * arity
        return range(first, min(first + arity, upper))

    def counter_blocks_under_node(self, level: int, index: int) -> range:
        """Counter-block indices in the subtree rooted at (level, index)."""
        span = 1
        for geometry in self.levels[: level + 1]:
            span *= geometry.arity
        first = index * span
        return range(first, min(first + span, self.num_counter_blocks))

    def data_pages_under_node(self, level: int, index: int) -> range:
        """Physical page numbers whose data is covered by (level, index)."""
        cbs = self.counter_blocks_under_node(level, index)
        blocks_per_cb = self.blocks_per_counter_block
        first_block = cbs.start * blocks_per_cb
        last_block = cbs.stop * blocks_per_cb
        pages = PAGE_SIZE // BLOCK_SIZE
        return range(first_block // pages, -(-last_block // pages))

    def pages_sharing_node(self, page: int, level: int) -> range:
        """Pages that share an integrity-tree node block with ``page`` at
        ``level`` — the sharing-set formula of Section VIII-B."""
        data_addr = page * PAGE_SIZE
        index = self.node_index(level, self.counter_block_index(data_addr))
        return self.data_pages_under_node(level, index)

    def describe(self) -> str:
        """Human-readable region map (used by examples and docs)."""
        lines = [
            f"protected data : [{self.data_base:#x}, {self.data_base + self.data_size:#x})",
            f"counter blocks : {self.num_counter_blocks} @ {self.counter_base:#x}",
            f"MAC region     : @ {self.mac_base:#x}",
        ]
        for geometry in self.levels:
            lines.append(
                f"tree L{geometry.level:<2}       : {geometry.node_count} node blocks "
                f"(arity {geometry.arity}) @ {geometry.base:#x}"
            )
        lines.append(f"on-chip roots  : {self.root_entries}")
        return "\n".join(lines)
